"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (offline boxes); all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
