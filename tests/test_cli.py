"""Tests for the command-line experiment runner."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.command == "fig5"
        assert args.lookups == 3000
        assert args.dimensions == [3, 4, 5, 6, 7, 8]

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "7", "fig13"])
        assert args.seed == 7

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig_crash_defaults(self):
        args = build_parser().parse_args(["fig-crash"])
        assert args.command == "fig-crash"
        assert args.lookups == 2000
        assert args.crash_prob == [0.1, 0.3, 0.5]
        assert args.msg_loss == 0.05
        assert args.retry_budget == 8
        assert args.dimension == 8

    def test_maint_defaults(self):
        args = build_parser().parse_args(["maint"])
        assert args.population == 1024
        assert args.events == 200
        assert args.lookups == 1000


class TestCommands:
    def run(self, argv, capsys):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_fig5_small(self, capsys):
        out = self.run(
            ["fig5", "--lookups", "100", "--dimensions", "3"], capsys
        )
        assert "Fig. 5" in out
        assert "cycloid" in out and "viceroy" in out

    def test_fig6_small(self, capsys):
        out = self.run(
            ["fig6", "--lookups", "100", "--dimensions", "3"], capsys
        )
        assert "Fig. 6" in out

    def test_fig7_small(self, capsys):
        out = self.run(
            ["fig7", "--lookups", "100", "--dimensions", "4"], capsys
        )
        assert "ascending" in out and "de_bruijn" in out

    def test_fig8_small(self, capsys):
        out = self.run(
            ["fig8", "--nodes", "200", "--keys", "2000"], capsys
        )
        assert "key distribution" in out

    def test_fig10(self, capsys):
        out = self.run(["fig10", "--lookups-per-node", "1"], capsys)
        assert "query load" in out

    def test_fig11_small(self, capsys):
        out = self.run(
            ["fig11", "--lookups", "200", "--probabilities", "0.2"], capsys
        )
        assert "Table 4" in out

    def test_fig12_small(self, capsys):
        out = self.run(
            [
                "fig12",
                "--rates", "0.1",
                "--duration", "60",
                "--population", "100",
            ],
            capsys,
        )
        assert "Table 5" in out

    def test_fig13_small(self, capsys):
        out = self.run(["fig13", "--lookups", "100"], capsys)
        assert "sparsity" in out

    def test_fig14_small(self, capsys):
        out = self.run(["fig14", "--lookups", "100"], capsys)
        assert "Koorde" in out

    def test_table1(self, capsys):
        out = self.run(["table1"], capsys)
        assert "7-entry Cycloid" in out
        assert "CCC" in out

    def test_fig_crash_small(self, capsys):
        out = self.run(
            [
                "fig-crash",
                "--dimension", "3",
                "--lookups", "40",
                "--crash-prob", "0.3",
            ],
            capsys,
        )
        assert "Crash resilience" in out
        assert "graceful" in out and "crash+retry" in out
        assert "pastry" in out and "can" in out

    def test_maint_small(self, capsys):
        out = self.run(
            [
                "maint",
                "--population", "64",
                "--events", "8",
                "--lookups", "30",
            ],
            capsys,
        )
        assert "Maintenance fan-out" in out
        assert "probe" in out


class TestTrace:
    def test_trace_writes_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "hops.jsonl"
        assert main(
            [
                "--trace", str(trace),
                "fig5", "--lookups", "50", "--dimensions", "3",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "Fig. 5" in captured.out
        assert "hop events" in captured.err
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert set(event) == {
                "lookup", "hop", "node", "phase", "timeouts"
            }

    def test_trace_rejected_for_untraceable_command(self, capsys, tmp_path):
        trace = tmp_path / "hops.jsonl"
        assert main(["--trace", str(trace), "table1"]) == 2
        assert "--trace is not supported" in capsys.readouterr().err

    def test_trace_accepted_for_churn(self, capsys, tmp_path):
        trace = tmp_path / "churn.jsonl"
        assert main(
            [
                "--trace", str(trace),
                "fig12",
                "--rates", "0.1",
                "--duration", "30",
                "--population", "64",
            ]
        ) == 0
        assert "hop events" in capsys.readouterr().err
        assert trace.read_text().splitlines()

    def test_trace_tags_fault_probes(self, capsys, tmp_path):
        trace = tmp_path / "crash.jsonl"
        assert main(
            [
                "--trace", str(trace),
                "fig-crash",
                "--dimension", "3",
                "--lookups", "40",
                "--crash-prob", "0.3",
            ]
        ) == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert events
        base = {"lookup", "hop", "node", "phase", "timeouts"}
        for event in events:
            assert set(event) in (base, base | {"kind"})
        # failed probes are tagged; plain hops keep the untagged format
        kinds = {e["kind"] for e in events if "kind" in e}
        assert "timeout" in kinds
        assert kinds <= {"timeout", "retry"}


class TestWorkers:
    def run(self, argv, capsys):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_workers_flag_on_every_figure_command(self):
        parser = build_parser()
        for command in (
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig-crash", "maint",
        ):
            args = parser.parse_args([command, "--workers", "3"])
            assert args.workers == 3
            assert parser.parse_args([command]).workers == 1

    def test_fig5_output_is_worker_invariant(self, capsys):
        base = ["fig5", "--lookups", "160", "--dimensions", "3", "4"]
        serial = self.run(base + ["--workers", "1"], capsys)
        parallel = self.run(base + ["--workers", "2"], capsys)
        assert serial == parallel

    def test_fig8_output_is_worker_invariant(self, capsys):
        base = ["fig8", "--nodes", "120", "--keys", "2000"]
        serial = self.run(base + ["--workers", "1"], capsys)
        parallel = self.run(base + ["--workers", "2"], capsys)
        assert serial == parallel


class TestBench:
    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.dimension == 8
        assert args.lookups == 2000
        assert args.workers == 4
        assert args.output == "BENCH_parallel.json"

    def test_bench_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--dimension", "4",
                    "--lookups", "120",
                    "--shard-size", "30",
                    "--workers", "2",
                    "--protocols", "cycloid", "chord",
                    "--output", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Parallel lookup bench" in out
        report = json.loads(out_path.read_text())
        assert report["config"]["workers"] == 2
        assert report["config"]["cpus"] >= 1
        assert report["all_match"] is True
        assert [c["protocol"] for c in report["cells"]] == [
            "cycloid", "chord",
        ]
        for cell in report["cells"]:
            assert cell["digest_match"] is True
            assert cell["serial_seconds"] > 0
            assert cell["parallel_seconds"] > 0
            assert len(cell["digest"]) == 64

    def test_bench_rejects_single_worker(self):
        with pytest.raises(ValueError):
            main(["bench", "--workers", "1", "--lookups", "40"])


class TestServeLoadgenParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.protocol == "cycloid"
        assert args.dimension == 4
        assert args.nodes is None
        assert args.servers == 4
        assert args.cluster_file is None
        assert args.lifetime is None

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.command == "loadgen"
        assert args.clients == 64
        assert args.lookups == 256
        assert args.puts == 32
        assert args.timeout == 5.0
        assert args.retry_budget == 8
        assert args.output == "BENCH_net.json"
        assert args.cluster_file is None

    def test_loadgen_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--protocol", "gnutella"])

    def test_console_script_entry_point_is_declared(self):
        # The `repro` command installed by pip must point at this main.
        import pathlib

        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        text = pyproject.read_text(encoding="utf-8")
        assert "[project.scripts]" in text
        assert 'repro = "repro.cli:main"' in text


class TestServeLoadgenCommands:
    def test_serve_with_lifetime_exits_cleanly(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        assert (
            main(
                [
                    "serve",
                    "--protocol", "cycloid",
                    "--dimension", "3",
                    "--servers", "2",
                    "--cluster-file", str(spec_path),
                    "--lifetime", "0.1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serving 24 cycloid nodes on 2 servers" in out
        spec = json.loads(spec_path.read_text())
        assert spec["schema"] == "repro/cluster-spec/v1"
        assert len(spec["directory"]) == 24

    def test_loadgen_writes_digest_checked_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_net.json"
        assert (
            main(
                [
                    "loadgen",
                    "--protocol", "cycloid",
                    "--dimension", "3",
                    "--servers", "2",
                    "--clients", "8",
                    "--lookups", "20",
                    "--puts", "4",
                    "--output", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "loadgen — cycloid, 8 clients" in out
        assert "match" in out
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro/net-bench/v1"
        assert report["ops"]["failures"] == 0
        assert report["digest"]["match"] is True

    def test_loadgen_trace_writes_live_hop_lines(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        trace_path = tmp_path / "live.jsonl"
        assert (
            main(
                [
                    "--trace", str(trace_path),
                    "loadgen",
                    "--protocol", "chord",
                    "--nodes", "16",
                    "--servers", "2",
                    "--clients", "4",
                    "--lookups", "10",
                    "--puts", "2",
                    "--output", str(out_path),
                ]
            )
            == 0
        )
        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert lines
        for line in lines:
            assert "rpc" in line and "latency_ms" in line

    def test_loadgen_rejects_missing_cluster_file(self, capsys, tmp_path):
        assert (
            main(
                ["loadgen", "--cluster-file", str(tmp_path / "absent.json")]
            )
            == 2
        )
        assert "cannot load cluster spec" in capsys.readouterr().err


class TestChurnstormCli:
    def test_churnstorm_defaults(self):
        args = build_parser().parse_args(["churnstorm"])
        assert args.command == "churnstorm"
        assert args.replicas == 2
        assert args.rate == 200.0
        assert args.ops == 400
        assert args.clients == 8
        assert args.kills == 3
        assert args.no_rejoin is False
        assert args.timeout == 5.0
        assert args.retry_budget == 8
        assert args.output == "BENCH_net.json"

    def test_churnstorm_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["churnstorm", "--protocol", "gnutella"]
            )

    def test_churnstorm_writes_survival_checked_report(
        self, capsys, tmp_path
    ):
        out_path = tmp_path / "BENCH_net.json"
        assert (
            main(
                [
                    "churnstorm",
                    "--protocol", "cycloid",
                    "--dimension", "3",
                    "--servers", "2",
                    "--replicas", "2",
                    "--ops", "60",
                    "--rate", "300",
                    "--kills", "2",
                    "--output", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "churnstorm — cycloid, replicas=2, 2 kills" in out
        assert "survival rate" in out
        report = json.loads(out_path.read_text())
        assert report["mode"] == "open-churn"
        assert report["churn"]["lost_acked_keys"] == 0
        assert report["churn"]["survival_rate"] == 1.0
