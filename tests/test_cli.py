"""Tests for the command-line experiment runner."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.command == "fig5"
        assert args.lookups == 3000
        assert args.dimensions == [3, 4, 5, 6, 7, 8]

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "7", "fig13"])
        assert args.seed == 7

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    def run(self, argv, capsys):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_fig5_small(self, capsys):
        out = self.run(
            ["fig5", "--lookups", "100", "--dimensions", "3"], capsys
        )
        assert "Fig. 5" in out
        assert "cycloid" in out and "viceroy" in out

    def test_fig6_small(self, capsys):
        out = self.run(
            ["fig6", "--lookups", "100", "--dimensions", "3"], capsys
        )
        assert "Fig. 6" in out

    def test_fig7_small(self, capsys):
        out = self.run(
            ["fig7", "--lookups", "100", "--dimensions", "4"], capsys
        )
        assert "ascending" in out and "de_bruijn" in out

    def test_fig8_small(self, capsys):
        out = self.run(
            ["fig8", "--nodes", "200", "--keys", "2000"], capsys
        )
        assert "key distribution" in out

    def test_fig10(self, capsys):
        out = self.run(["fig10", "--lookups-per-node", "1"], capsys)
        assert "query load" in out

    def test_fig11_small(self, capsys):
        out = self.run(
            ["fig11", "--lookups", "200", "--probabilities", "0.2"], capsys
        )
        assert "Table 4" in out

    def test_fig12_small(self, capsys):
        out = self.run(
            [
                "fig12",
                "--rates", "0.1",
                "--duration", "60",
                "--population", "100",
            ],
            capsys,
        )
        assert "Table 5" in out

    def test_fig13_small(self, capsys):
        out = self.run(["fig13", "--lookups", "100"], capsys)
        assert "sparsity" in out

    def test_fig14_small(self, capsys):
        out = self.run(["fig14", "--lookups", "100"], capsys)
        assert "Koorde" in out

    def test_table1(self, capsys):
        out = self.run(["table1"], capsys)
        assert "7-entry Cycloid" in out
        assert "CCC" in out


class TestTrace:
    def test_trace_writes_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "hops.jsonl"
        assert main(
            [
                "--trace", str(trace),
                "fig5", "--lookups", "50", "--dimensions", "3",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "Fig. 5" in captured.out
        assert "hop events" in captured.err
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert set(event) == {
                "lookup", "hop", "node", "phase", "timeouts"
            }

    def test_trace_rejected_for_untraceable_command(self, capsys, tmp_path):
        trace = tmp_path / "hops.jsonl"
        assert main(["--trace", str(trace), "table1"]) == 2
        assert "--trace is not supported" in capsys.readouterr().err
