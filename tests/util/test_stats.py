"""Unit tests for repro.util.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    DistributionSummary,
    PhaseBreakdown,
    mean,
    percentile,
    summarize,
)


class TestMean:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_values(self):
        assert mean([1, 2, 3, 4]) == 2.5


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([7], 1) == 7
        assert percentile([7], 99) == 7

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == 50

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_bounded_by_min_max(self, data):
        for q in (1, 50, 99):
            value = percentile(data, q)
            assert min(data) <= value <= max(data)

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=50))
    def test_monotone_in_q(self, data):
        assert percentile(data, 1) <= percentile(data, 50) <= percentile(data, 99)


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_fields(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.mean == 3.0
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.count == 5
        assert summary.p1 <= summary.p99

    def test_as_row_format(self):
        summary = DistributionSummary(2.36, 0, 11, 0, 12, 100)
        assert summary.as_row() == "2.36 (0, 11)"

    def test_spread(self):
        summary = summarize([0, 10])
        assert summary.spread == summary.p99 - summary.p1 > 0


class TestPhaseBreakdown:
    def test_empty(self):
        breakdown = PhaseBreakdown()
        assert breakdown.total_hops == 0
        assert breakdown.fraction("ascending") == 0.0
        assert breakdown.mean_hops("ascending") == 0.0

    def test_record_accumulates(self):
        breakdown = PhaseBreakdown()
        breakdown.record({"ascending": 1, "descending": 3})
        breakdown.record({"descending": 2, "traverse": 2})
        assert breakdown.lookups == 2
        assert breakdown.total_hops == 8
        assert breakdown.totals == {
            "ascending": 1,
            "descending": 5,
            "traverse": 2,
        }

    def test_fractions_sum_to_one(self):
        breakdown = PhaseBreakdown()
        breakdown.record({"a": 3, "b": 1})
        fractions = breakdown.fractions()
        assert fractions["a"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_mean_hops_per_lookup(self):
        breakdown = PhaseBreakdown()
        breakdown.record({"a": 4})
        breakdown.record({"a": 2})
        assert breakdown.mean_hops("a") == 3.0

    def test_phases_sorted(self):
        breakdown = PhaseBreakdown()
        breakdown.record({"zeta": 1, "alpha": 1})
        assert breakdown.phases() == ["alpha", "zeta"]
