"""Unit tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bit_at,
    circular_distance,
    clockwise_distance,
    counterclockwise_distance,
    flip_bit,
    from_bits,
    msdb,
    shares_prefix_above,
    to_bits,
)


class TestBitAt:
    def test_low_bit(self):
        assert bit_at(0b1011, 0) == 1
        assert bit_at(0b1010, 0) == 0

    def test_high_bit(self):
        assert bit_at(0b1000, 3) == 1
        assert bit_at(0b0111, 3) == 0


class TestFlipBit:
    def test_flip_sets(self):
        assert flip_bit(0b1000, 1) == 0b1010

    def test_flip_clears(self):
        assert flip_bit(0b1010, 1) == 0b1000

    def test_double_flip_identity(self):
        assert flip_bit(flip_bit(0b1101, 2), 2) == 0b1101


class TestMsdb:
    def test_equal_values(self):
        assert msdb(42, 42) == -1

    def test_differs_at_top(self):
        assert msdb(0b0100, 0b1111) == 3

    def test_differs_at_bottom(self):
        assert msdb(0b0110, 0b0111) == 0

    def test_paper_example(self):
        # §3.2: MSDB of (0,0100) with destination (2,1111) is 3.
        assert msdb(0b0100, 0b1111) == 3

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_symmetry(self, a, b):
        assert msdb(a, b) == msdb(b, a)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_agrees_above(self, a, b):
        position = msdb(a, b)
        if position >= 0:
            assert (a >> (position + 1)) == (b >> (position + 1))
            assert bit_at(a, position) != bit_at(b, position)


class TestSharesPrefixAbove:
    def test_share(self):
        assert shares_prefix_above(0b1100, 0b1111, 1)

    def test_differ(self):
        assert not shares_prefix_above(0b1100, 0b0111, 1)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 7))
    def test_equivalent_to_msdb(self, a, b, position):
        assert shares_prefix_above(a, b, position) == (msdb(a, b) <= position)


class TestBitsRoundTrip:
    def test_to_bits_msb_first(self):
        assert to_bits(0b1010, 4) == [1, 0, 1, 0]

    def test_to_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            to_bits(16, 4)

    def test_from_bits_rejects_non_bit(self):
        with pytest.raises(ValueError):
            from_bits([0, 2])

    @given(st.integers(0, 2**12 - 1))
    def test_round_trip(self, value):
        assert from_bits(to_bits(value, 12)) == value


class TestCircularDistances:
    def test_clockwise(self):
        assert clockwise_distance(250, 5, 256) == 11

    def test_counterclockwise(self):
        assert counterclockwise_distance(5, 250, 256) == 11

    def test_circular_picks_shorter(self):
        assert circular_distance(250, 5, 256) == 11
        assert circular_distance(5, 250, 256) == 11

    def test_zero_distance(self):
        assert circular_distance(9, 9, 16) == 0

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            clockwise_distance(0, 1, 0)

    @given(
        st.integers(0, 255), st.integers(0, 255)
    )
    def test_circular_symmetric(self, a, b):
        assert circular_distance(a, b, 256) == circular_distance(b, a, 256)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cw_plus_ccw_is_modulus(self, a, b):
        if a != b:
            cw = clockwise_distance(a, b, 256)
            ccw = counterclockwise_distance(a, b, 256)
            assert cw + ccw == 256

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_circular_bounded_by_half(self, a, b):
        assert circular_distance(a, b, 256) <= 128
