"""Unit tests for repro.util.rng."""

import pytest

from repro.util.rng import derive_rng, make_rng, sample_pairs, shard_rng


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestDeriveRng:
    def test_streams_are_independent(self):
        root = make_rng(3)
        a = derive_rng(root, 1)
        b = derive_rng(root, 2)
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_derivation_is_reproducible(self):
        values_one = derive_rng(make_rng(3), 5).random()
        values_two = derive_rng(make_rng(3), 5).random()
        assert values_one == values_two

    def test_sibling_stream_unaffected_by_consumption(self):
        # Drawing many values from stream 1 must not change stream 2,
        # as long as streams are derived before consumption.
        root = make_rng(3)
        a = derive_rng(root, 1)
        b = derive_rng(root, 2)
        expected = make_rng(3)
        a2 = derive_rng(expected, 1)
        b2 = derive_rng(expected, 2)
        for _ in range(100):
            a.random()
        assert b.random() == b2.random()
        del a2


class TestShardRng:
    def test_matches_manual_derivation(self):
        # shard_rng is the canonical (seed, shard) stream: exactly
        # derive_rng over a fresh root, never a partially consumed one.
        assert (
            shard_rng(42, 3).random()
            == derive_rng(make_rng(42), 3).random()
        )

    def test_deterministic(self):
        assert [shard_rng(7, 2).random() for _ in range(3)] == [
            shard_rng(7, 2).random() for _ in range(3)
        ]

    def test_shards_are_independent_streams(self):
        streams = [
            tuple(shard_rng(11, shard).random() for _ in range(4))
            for shard in range(6)
        ]
        assert len(set(streams)) == len(streams)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            shard_rng(0, -1)


class TestSamplePairs:
    def test_count(self, rng):
        pairs = list(sample_pairs(["a", "b", "c"], 10, rng))
        assert len(pairs) == 10
        assert all(s in "abc" and t in "abc" for s, t in pairs)

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            list(sample_pairs([], 1, rng))

    def test_uniform_coverage(self, rng):
        population = list(range(10))
        seen = set()
        for s, t in sample_pairs(population, 500, rng):
            seen.add(s)
            seen.add(t)
        assert seen == set(population)
