"""Property tests for the shard planner and the shard merge.

Three properties carry the parallel engine's correctness argument:

* :func:`repro.sim.parallel.plan_shards` is an exact partition — every
  global lookup index (which identifies one (source, key) draw) lands
  in exactly one shard, so no shard boundary ever splits a pair.
* :func:`repro.sim.parallel.merge_shards` is invariant under the order
  shard results arrive in — any permutation yields bit-identical
  records, digests and mean/p1/p99 summaries.
* :meth:`repro.dht.metrics.LookupStats.merge` is associative, so the
  merged statistics do not depend on how partial results are grouped.
"""

from __future__ import annotations

from functools import partial

from hypothesis import given, settings, strategies as st

from repro.dht.metrics import LookupStats
from repro.experiments.registry import build_complete_network
from repro.sim.parallel import (
    execute_shard,
    merge_shards,
    plan_shards,
    plain_setup,
    ShardTask,
)
from repro.util.stats import summarize

counts = st.integers(min_value=0, max_value=5000)
shard_sizes = st.integers(min_value=1, max_value=700)


class TestPlanShards:
    @given(count=counts, shard_size=shard_sizes)
    def test_exact_partition(self, count, shard_size):
        """Offsets tile [0, count): no gap, no overlap, no split pair."""
        specs = plan_shards(count, shard_size)
        covered = []
        for spec in specs:
            covered.extend(range(spec.offset, spec.offset + spec.count))
        assert covered == list(range(count))

    @given(count=counts, shard_size=shard_sizes)
    def test_balanced_and_bounded(self, count, shard_size):
        specs = plan_shards(count, shard_size)
        if count == 0:
            assert specs == []
            return
        sizes = [spec.count for spec in specs]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) <= shard_size
        assert max(sizes) - min(sizes) <= 1
        assert [spec.index for spec in specs] == list(range(len(specs)))

    @given(count=counts, shard_size=shard_sizes)
    def test_pure_function(self, count, shard_size):
        assert plan_shards(count, shard_size) == plan_shards(
            count, shard_size
        )


def _real_shard_results():
    """Shard results from one real cell (computed once, module scope)."""
    setup = partial(
        plain_setup, build_complete_network, "cycloid", 4, seed=42
    )
    return [
        execute_shard(ShardTask(setup=setup, spec=spec, seed=7))
        for spec in plan_shards(96, 16)
    ]


SHARD_RESULTS = _real_shard_results()


def _hop_summary(stats: LookupStats):
    return summarize([float(r.hops) for r in stats.records])


class TestMergeOrderInvariance:
    @settings(deadline=None, max_examples=30)
    @given(order=st.permutations(list(range(len(SHARD_RESULTS)))))
    def test_any_arrival_order_merges_identically(self, order):
        canonical = merge_shards(SHARD_RESULTS)
        shuffled = merge_shards([SHARD_RESULTS[i] for i in order])
        assert shuffled.stats.digest() == canonical.stats.digest()
        assert shuffled.stats.records == canonical.stats.records
        assert shuffled.query_counts == canonical.query_counts
        reference = _hop_summary(canonical.stats)
        permuted = _hop_summary(shuffled.stats)
        assert permuted.mean == reference.mean
        assert permuted.p1 == reference.p1
        assert permuted.p99 == reference.p99


class TestMergeAssociativity:
    @settings(deadline=None, max_examples=30)
    @given(split=st.integers(min_value=1, max_value=len(SHARD_RESULTS) - 1))
    def test_grouping_does_not_matter(self, split):
        """merge(merge(A), merge(B)) == merge(A + B) for any split."""
        parts = []
        for result in SHARD_RESULTS:
            stats = LookupStats()
            stats.extend(result.records)
            parts.append(stats)
        grouped = LookupStats.merged(
            [LookupStats.merged(parts[:split]), LookupStats.merged(parts[split:])]
        )
        flat = LookupStats.merged(parts)
        assert grouped.digest() == flat.digest()
        assert grouped.records == flat.records
