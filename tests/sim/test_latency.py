"""Property and unit tests for the seeded link delay model (§S25).

Three properties carry the latency model's correctness argument:

* **Symmetry** — ``delay_ms(a, b) == delay_ms(b, a)`` exactly (not
  within a tolerance): every term is keyed on sorted stringified
  names, so both orders hash the identical key tuples.
* **Non-negativity and the self-delay zero** — a delay is never
  negative, and is zero iff both names stringify equally.
* **Shard invariance** — ``for_shard(k)`` returns a model whose every
  delay is bit-identical to the unsharded model's, for any worker
  split; this is what makes sharded runs reproducible at any worker
  count.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.sim.latency import LatencyModel, stable_unit

node_names = st.one_of(
    st.text(min_size=0, max_size=12),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.tuples(st.integers(0, 255), st.integers(0, 255)),
)
seeds = st.integers(min_value=-(2**31), max_value=2**31)
models = st.builds(
    LatencyModel,
    seed=seeds,
    regions=st.integers(min_value=1, max_value=12),
    intra_ms=st.floats(0.0, 50.0, allow_nan=False),
    inter_min_ms=st.floats(0.0, 100.0, allow_nan=False),
    inter_max_ms=st.floats(100.0, 500.0, allow_nan=False),
    jitter_ms=st.floats(0.0, 50.0, allow_nan=False),
)


class TestStableUnit:
    @given(seed=seeds, part=node_names)
    def test_unit_interval(self, seed, part):
        value = stable_unit(seed, part)
        assert 0.0 <= value < 1.0

    def test_independent_of_hash_randomisation(self):
        # blake2b over repr, not hash(): the exact value is pinned so a
        # regression to PYTHONHASHSEED-dependent hashing cannot hide.
        assert stable_unit(0, "probe") == stable_unit(0, "probe")
        assert stable_unit(0, "probe") != stable_unit(1, "probe")
        assert stable_unit(0, "a", 1) != stable_unit(0, "a", 2)


class TestDelayProperties:
    @given(model=models, a=node_names, b=node_names)
    def test_symmetry(self, model, a, b):
        assert model.delay_ms(a, b) == model.delay_ms(b, a)

    @given(model=models, a=node_names, b=node_names)
    def test_non_negative_and_zero_iff_same(self, model, a, b):
        delay = model.delay_ms(a, b)
        assert delay >= 0.0
        if str(a) == str(b):
            assert delay == 0.0
        else:
            # Distinct endpoints always pay at least the lower of the
            # two regional floors (same-region pairs pay intra_ms,
            # cross-region pairs at least inter_min_ms).
            assert delay >= min(model.intra_ms, model.inter_min_ms)

    @given(
        model=models,
        a=node_names,
        b=node_names,
        shard=st.integers(min_value=0, max_value=64),
    )
    def test_for_shard_is_bit_identical(self, model, a, b, shard):
        """Any worker split sees the identical pure-function model."""
        assert model.for_shard(shard).delay_ms(a, b) == model.delay_ms(a, b)

    @given(model=models, a=node_names, b=node_names)
    def test_seed_determinism_across_reconstruction(self, model, a, b):
        """An independently constructed model (same config) agrees —
        the property the live cluster and the sim lean on."""
        rebuilt = LatencyModel.from_config(model.to_config())
        assert rebuilt == model
        assert rebuilt.delay_ms(a, b) == model.delay_ms(a, b)

    @given(model=models, name=node_names)
    def test_region_in_range(self, model, name):
        assert 0 <= model.region_of(name) < model.regions


class TestSlowNodes:
    """Heterogeneous capacities (§S27): per-node slowdown multipliers."""

    @given(model=models, name=node_names)
    def test_slowdown_values(self, model, name):
        # Homogeneous by default: nobody is slow, multiplier is 1.
        assert model.slowdown(name) == 1.0
        assert not model.is_slow(name)

    @given(
        model=models,
        a=node_names,
        b=node_names,
        fraction=st.floats(0.01, 1.0, allow_nan=False),
        multiplier=st.floats(1.0, 16.0, allow_nan=False),
    )
    def test_slow_links_scale_by_slower_endpoint(
        self, model, a, b, fraction, multiplier
    ):
        slow = LatencyModel.from_config(
            {
                **model.to_config(),
                "slow_fraction": fraction,
                "slow_multiplier": multiplier,
            }
        )
        expected = model.delay_ms(a, b) * max(
            slow.slowdown(a), slow.slowdown(b)
        )
        assert slow.delay_ms(a, b) == pytest.approx(expected)

    @given(model=models, a=node_names, b=node_names)
    def test_zero_fraction_is_bit_exact(self, model, a, b):
        """slow_fraction=0 must not even multiply by 1.0 — delays stay
        bit-identical to the pre-S27 homogeneous model."""
        explicit = LatencyModel.from_config(
            {**model.to_config(), "slow_fraction": 0.0}
        )
        assert explicit.delay_ms(a, b) == model.delay_ms(a, b)

    @given(
        name=node_names,
        shard=st.integers(min_value=0, max_value=64),
    )
    def test_for_shard_preserves_slow_set(self, name, shard):
        model = LatencyModel(seed=3, slow_fraction=0.3, slow_multiplier=8.0)
        assert model.for_shard(shard).is_slow(name) == model.is_slow(name)

    def test_membership_is_seeded_and_proportional(self):
        model = LatencyModel(seed=11, slow_fraction=0.25)
        names = [f"n{i}" for i in range(2000)]
        slow = [name for name in names if model.is_slow(name)]
        assert slow == [
            name
            for name in names
            if LatencyModel(seed=11, slow_fraction=0.25).is_slow(name)
        ]
        assert 0.18 < len(slow) / len(names) < 0.32

    def test_slow_config_roundtrip(self):
        model = LatencyModel(seed=9, slow_fraction=0.1, slow_multiplier=6.0)
        clone = LatencyModel.from_config(model.to_config())
        assert clone == model
        assert clone.slowdown("n3") == model.slowdown("n3")

    def test_legacy_config_defaults_to_homogeneous(self):
        """Configs written before S27 lack the slow fields and must
        round-trip to the bit-identical homogeneous model."""
        config = LatencyModel(seed=4).to_config()
        del config["slow_fraction"], config["slow_multiplier"]
        model = LatencyModel.from_config(config)
        assert model == LatencyModel(seed=4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slow_fraction": -0.1},
            {"slow_fraction": 1.5},
            {"slow_multiplier": 0.5},
        ],
    )
    def test_rejects_bad_slow_config(self, kwargs):
        with pytest.raises(ValueError):
            LatencyModel(seed=1, **kwargs)


class TestValidation:
    def test_seed_is_mandatory(self):
        with pytest.raises(TypeError):
            LatencyModel()  # noqa: seed has no default

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            LatencyModel(seed="7")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"regions": 0},
            {"intra_ms": -1.0},
            {"jitter_ms": -0.5},
            {"inter_min_ms": -1.0},
            {"inter_min_ms": 50.0, "inter_max_ms": 10.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            LatencyModel(seed=1, **kwargs)

    def test_for_shard_rejects_negative_index(self):
        with pytest.raises(ValueError):
            LatencyModel(seed=1).for_shard(-1)


class TestTransport:
    def test_pickle_roundtrip_preserves_delays(self):
        """Pool workers get the model by pickle; delays must survive."""
        model = LatencyModel(seed=21, regions=3, jitter_ms=2.5)
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model
        for pair in [("a", "b"), ("n07", "n1912"), (1, 2)]:
            assert clone.delay_ms(*pair) == model.delay_ms(*pair)

    def test_config_roundtrip(self):
        model = LatencyModel(
            seed=5,
            regions=6,
            intra_ms=1.0,
            inter_min_ms=10.0,
            inter_max_ms=20.0,
            jitter_ms=0.0,
        )
        assert LatencyModel.from_config(model.to_config()) == model
