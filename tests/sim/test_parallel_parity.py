"""Serial/parallel parity: ``workers=1`` and ``workers=4`` bit-agree.

The contract of :func:`repro.sim.parallel.run_sharded_lookups` is that
the merged run is a pure function of ``(setup, count, seed, shard_size,
keys, retry_budget)`` and ``workers`` only chooses the fan-out.  These
tests pin that for every registered overlay at two (n, d) scales, and —
the hard case — with an enabled :class:`~repro.sim.faults.FaultPlan`,
where per-shard loss streams and lazy route repair would expose any
cross-shard state leak.

``GOLDEN_DIGESTS`` re-baselines the sharded workload stream once: the
digests were captured from this implementation and must never drift
again, whatever the worker count.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.dht.metrics import LookupStats
from repro.experiments.registry import ALL_PROTOCOLS, build_complete_network
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.parallel import plain_setup, run_sharded_lookups

#: Small enough to stay fast, large enough for four non-trivial shards.
LOOKUPS = 120
SHARD_SIZE = 30
SEED = 42


def _setup(protocol: str, dimension: int):
    return partial(
        plain_setup, build_complete_network, protocol, dimension, seed=SEED
    )


def _fault_setup(protocol: str, dimension: int, plan: FaultPlan):
    network = build_complete_network(protocol, dimension, seed=SEED)
    injector = FaultInjector(plan)
    injector.crash_nodes(network)
    network.route_repairs = 0
    return network, injector


FAULT_PLAN = FaultPlan(seed=SEED + 30, crash_probability=0.3, message_loss=0.05)


def _assert_runs_equal(serial, parallel):
    assert serial.stats.digest() == parallel.stats.digest()
    assert serial.stats.records == parallel.stats.records
    assert serial.query_counts == parallel.query_counts
    assert serial.route_repairs == parallel.route_repairs
    assert serial.dropped_messages == parallel.dropped_messages
    assert serial.crashed == parallel.crashed
    assert serial.population == parallel.population
    assert serial.shards == parallel.shards == 4


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("dimension", [4, 5])
def test_parallel_matches_serial(protocol, dimension):
    serial = run_sharded_lookups(
        _setup(protocol, dimension),
        LOOKUPS,
        SEED + dimension,
        workers=1,
        shard_size=SHARD_SIZE,
    )
    parallel = run_sharded_lookups(
        _setup(protocol, dimension),
        LOOKUPS,
        SEED + dimension,
        workers=4,
        shard_size=SHARD_SIZE,
    )
    _assert_runs_equal(serial, parallel)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_parallel_matches_serial_under_faults(protocol):
    """The fault path: crashes, message loss, retries, lazy repair."""
    setup = partial(_fault_setup, protocol, 4, FAULT_PLAN)
    serial = run_sharded_lookups(
        setup,
        LOOKUPS,
        SEED,
        workers=1,
        shard_size=SHARD_SIZE,
        retry_budget=6,
    )
    parallel = run_sharded_lookups(
        setup,
        LOOKUPS,
        SEED,
        workers=4,
        shard_size=SHARD_SIZE,
        retry_budget=6,
    )
    _assert_runs_equal(serial, parallel)
    assert serial.crashed > 0  # the plan actually fired


def _assert_same_merged(a, b):
    assert a.stats.digest() == b.stats.digest()
    assert a.stats.records == b.stats.records
    assert a.query_counts == b.query_counts
    assert a.route_repairs == b.route_repairs
    assert a.dropped_messages == b.dropped_messages
    assert a.crashed == b.crashed
    assert a.population == b.population


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_snapshot_distribution_matches_rebuild(protocol, workers):
    """§S21: build-once snapshot distribution is bit-identical to the
    per-shard rebuild path at every worker count."""
    rebuild = run_sharded_lookups(
        _setup(protocol, 4),
        LOOKUPS,
        SEED + 4,
        workers=workers,
        shard_size=SHARD_SIZE,
        distribution="rebuild",
    )
    snapshot = run_sharded_lookups(
        _setup(protocol, 4),
        LOOKUPS,
        SEED + 4,
        workers=workers,
        shard_size=SHARD_SIZE,
        distribution="snapshot",
    )
    _assert_same_merged(rebuild, snapshot)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_snapshot_distribution_matches_rebuild_under_faults(
    protocol, workers
):
    """§S21 under an active FaultPlan: the injector is reattached from
    the plan seed on every restored copy, so crashes, loss streams and
    lazy repair must replay identically."""
    setup = partial(_fault_setup, protocol, 4, FAULT_PLAN)
    rebuild = run_sharded_lookups(
        setup,
        LOOKUPS,
        SEED,
        workers=workers,
        shard_size=SHARD_SIZE,
        retry_budget=6,
        distribution="rebuild",
    )
    snapshot = run_sharded_lookups(
        setup,
        LOOKUPS,
        SEED,
        workers=workers,
        shard_size=SHARD_SIZE,
        retry_budget=6,
        distribution="snapshot",
    )
    _assert_same_merged(rebuild, snapshot)
    assert rebuild.crashed > 0  # the plan actually fired


#: Golden digests of the sharded workload stream (captured once from
#: this implementation — the one deliberate re-baseline of the parallel
#: engine PR).  Any change to shard planning, stream derivation or
#: record layout shows up here at workers=1, before parity even runs.
GOLDEN_DIGESTS = {
    "cycloid": "3ef7e62637a20f615e5dbb4734a0ebe692046af7982c2bd3708d606e4eef9850",
    "chord": "228dd842026b2f862f46d168bd61f50502008d0a776b85f82fd907cb0d8c33d6",
    "koorde": "6debb00630e8b1e1050045c6933dec471983a42a7ede8b8e6bb3346c1b069bbf",
}


@pytest.mark.parametrize("protocol", sorted(GOLDEN_DIGESTS))
def test_golden_digest(protocol):
    merged = run_sharded_lookups(
        _setup(protocol, 4),
        LOOKUPS,
        SEED + 4,
        workers=1,
        shard_size=SHARD_SIZE,
    )
    assert merged.stats.digest() == GOLDEN_DIGESTS[protocol]


class TestDigest:
    def test_empty_digest_is_stable(self):
        assert LookupStats().digest() == LookupStats().digest()

    def test_merge_order_changes_digest(self):
        serial = run_sharded_lookups(
            _setup("cycloid", 4),
            LOOKUPS,
            SEED,
            workers=1,
            shard_size=SHARD_SIZE,
        )
        reversed_stats = LookupStats()
        reversed_stats.extend(list(reversed(serial.stats.records)))
        assert serial.stats.digest() != reversed_stats.digest()
