"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.chord import ChordNetwork
from repro.sim.faults import FaultInjector, FaultPlan


def _network(count=48, seed=11):
    return ChordNetwork.with_random_ids(count, 8, seed=seed)


# ----------------------------------------------------------------------
# FaultPlan validation
# ----------------------------------------------------------------------


def test_plan_seed_is_mandatory():
    with pytest.raises(TypeError):
        FaultPlan()  # no unseeded fallback anywhere in the fault path


def test_plan_seed_must_be_int():
    with pytest.raises(TypeError):
        FaultPlan(seed=1.5)


@pytest.mark.parametrize(
    "field", ["crash_probability", "message_loss", "flaky_fraction", "flaky_loss"]
)
@pytest.mark.parametrize("value", [-0.1, 1.1])
def test_plan_rejects_out_of_range_probabilities(field, value):
    with pytest.raises(ValueError):
        FaultPlan(seed=0, **{field: value})


def test_plan_active_iff_any_fault_enabled():
    assert not FaultPlan(seed=0).active
    # flaky_loss alone is inert: it only applies to nodes that
    # mark_flaky selected, and flaky_fraction 0 selects none.
    assert not FaultPlan(seed=0, flaky_loss=0.9).active
    assert FaultPlan(seed=0, crash_probability=0.1).active
    assert FaultPlan(seed=0, message_loss=0.1).active
    assert FaultPlan(seed=0, flaky_fraction=0.1).active


# ----------------------------------------------------------------------
# crashes
# ----------------------------------------------------------------------


def test_crash_nodes_is_ungraceful_and_deterministic():
    plan = FaultPlan(seed=7, crash_probability=0.3)
    first, second = _network(), _network()
    crashed_first = FaultInjector(plan).crash_nodes(first)
    crashed_second = FaultInjector(plan).crash_nodes(second)
    assert crashed_first == crashed_second > 0
    assert {n.name for n in first.live_nodes()} == {
        n.name for n in second.live_nodes()
    }
    # Ungraceful: survivors still hold stale pointers at the victims.
    stale = sum(
        1
        for node in first.live_nodes()
        for finger in node.fingers
        if finger is not None and not finger.alive
    )
    assert stale > 0


def test_crash_nodes_keeps_at_least_one_node():
    network = _network(count=8)
    injector = FaultInjector(FaultPlan(seed=3, crash_probability=1.0))
    crashed = injector.crash_nodes(network)
    assert network.size == 1
    assert crashed == 7
    assert injector.crashed == 7


# ----------------------------------------------------------------------
# message loss and flaky nodes
# ----------------------------------------------------------------------


def test_delivered_draws_nothing_when_loss_disabled():
    network = _network()
    a, b = network.live_nodes()[:2]
    injector = FaultInjector(FaultPlan(seed=5))
    state = injector._loss_rng.getstate()
    assert all(injector.delivered(a, b) for _ in range(50))
    assert injector._loss_rng.getstate() == state
    assert injector.dropped == 0


def test_delivered_drops_with_seeded_loss():
    network = _network()
    a, b = network.live_nodes()[:2]
    plan = FaultPlan(seed=5, message_loss=0.5)
    first = FaultInjector(plan)
    outcomes = [first.delivered(a, b) for _ in range(200)]
    assert 40 < outcomes.count(False) < 160  # ~100 expected
    assert first.dropped == outcomes.count(False)
    replay = FaultInjector(plan)
    assert [replay.delivered(a, b) for _ in range(200)] == outcomes


def test_flaky_nodes_use_their_own_loss_rate():
    network = _network()
    plan = FaultPlan(seed=9, flaky_fraction=0.25, flaky_loss=1.0)
    injector = FaultInjector(plan)
    marked = injector.mark_flaky(network)
    assert 0 < marked < network.size
    assert len(injector.flaky_nodes) == marked
    flaky = next(
        n for n in network.live_nodes() if n.name in injector.flaky_nodes
    )
    steady = next(
        n for n in network.live_nodes() if n.name not in injector.flaky_nodes
    )
    # flaky_loss=1.0 drops everything inbound to a flaky node, while
    # message_loss=0 keeps every other link perfect.
    assert not injector.delivered(steady, flaky)
    assert injector.delivered(flaky, steady)


# ----------------------------------------------------------------------
# per-shard injectors
# ----------------------------------------------------------------------


def test_for_shard_zero_is_bit_identical_to_parent():
    network = _network()
    a, b = network.live_nodes()[:2]
    plan = FaultPlan(seed=5, message_loss=0.5)
    parent = FaultInjector(plan)
    child = FaultInjector(plan).for_shard(0)
    assert [parent.delivered(a, b) for _ in range(100)] == [
        child.delivered(a, b) for _ in range(100)
    ]


def test_for_shard_derives_independent_loss_streams():
    network = _network()
    a, b = network.live_nodes()[:2]
    plan = FaultPlan(seed=5, message_loss=0.5)
    streams = []
    for shard in range(4):
        injector = FaultInjector(plan).for_shard(shard)
        streams.append(tuple(injector.delivered(a, b) for _ in range(64)))
    assert len(set(streams)) == len(streams)


def test_for_shard_is_reproducible():
    network = _network()
    a, b = network.live_nodes()[:2]
    plan = FaultPlan(seed=8, message_loss=0.4)
    first = FaultInjector(plan).for_shard(3)
    second = FaultInjector(plan).for_shard(3)
    assert [first.delivered(a, b) for _ in range(100)] == [
        second.delivered(a, b) for _ in range(100)
    ]


def test_for_shard_preserves_flaky_marks():
    network = _network()
    plan = FaultPlan(seed=9, flaky_fraction=0.25, flaky_loss=1.0)
    parent = FaultInjector(plan)
    parent.mark_flaky(network)
    child = parent.for_shard(2)
    assert child.flaky_nodes == parent.flaky_nodes
    flaky = next(
        n for n in network.live_nodes() if n.name in parent.flaky_nodes
    )
    steady = next(
        n for n in network.live_nodes() if n.name not in parent.flaky_nodes
    )
    assert not child.delivered(steady, flaky)


def test_for_shard_starts_with_fresh_drop_counter():
    plan = FaultPlan(seed=5, message_loss=1.0)
    network = _network()
    a, b = network.live_nodes()[:2]
    parent = FaultInjector(plan)
    assert not parent.delivered(a, b)
    child = parent.for_shard(1)
    assert child.dropped == 0


def test_for_shard_rejects_negative_index():
    with pytest.raises(ValueError):
        FaultInjector(FaultPlan(seed=1)).for_shard(-1)
