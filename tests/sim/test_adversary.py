"""Unit and parity tests for the adversary subsystem (§S27).

The load-bearing claims:

* an :class:`AdversaryPlan` is pure seeded configuration — validation,
  pickle/config round-trips, ``for_shard`` identity;
* infiltration and poisoning are bit-deterministic: two applications of
  one plan to identically-built overlays produce identical attacked
  topologies, and hence identical lookup records;
* a **disabled** plan is a strict no-op — existing overlay results stay
  bit-exact (the golden parity bar of the acceptance criteria);
* the trace-observer interception metric equals the path-based one, and
  the columnar kernel reproduces poisoned-topology routing
  bit-identically;
* sharded runs over an attacked overlay are worker-count invariant.
"""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro.experiments.adversary import build_adversary_network
from repro.sim.adversary import (
    Adversary,
    AdversaryPlan,
    InterceptionTracer,
    attacker_name,
    capture_fraction,
    interception_rate,
)
from repro.sim.parallel import plain_setup, run_sharded_lookups
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng

POPULATION = 128
SEED = 17
PROTOCOLS = ("cycloid", "cycloid-11", "chord", "koorde")


def build(protocol: str):
    """The sparse overlay the adversary experiment attacks, sans plan."""
    return build_adversary_network(
        protocol, POPULATION, SEED, AdversaryPlan(seed=SEED)
    )


def routes(network, count=60, seed=7):
    rng = make_rng(seed)
    records = network.lookup_many(list(lookup_workload(network, count, rng)))
    return [(r.hops, r.success, tuple(r.path)) for r in records]


class TestAdversaryPlan:
    def test_seed_is_mandatory(self):
        with pytest.raises(TypeError):
            AdversaryPlan()  # noqa: seed has no default

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            AdversaryPlan(seed="7")

    @pytest.mark.parametrize(
        "kwargs",
        [{"sybils": -1}, {"eclipse_fraction": -0.1}, {"eclipse_fraction": 1.5}],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            AdversaryPlan(seed=1, **kwargs)

    def test_active(self):
        assert not AdversaryPlan(seed=1).active
        assert AdversaryPlan(seed=1, sybils=1).active
        assert AdversaryPlan(seed=1, eclipse_fraction=0.1).active

    def test_config_roundtrip(self):
        plan = AdversaryPlan(
            seed=5, sybils=9, target_key="k", eclipse_fraction=0.25
        )
        assert AdversaryPlan.from_config(plan.to_config()) == plan

    def test_config_defaults(self):
        assert AdversaryPlan.from_config({"seed": 3}) == AdversaryPlan(seed=3)

    def test_pickle_roundtrip(self):
        plan = AdversaryPlan(seed=2, sybils=4, eclipse_fraction=0.5)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_for_shard_identity(self):
        plan = AdversaryPlan(seed=1, sybils=3)
        for shard in (0, 1, 7):
            assert plan.for_shard(shard) is plan

    def test_for_shard_rejects_negative_index(self):
        with pytest.raises(ValueError):
            AdversaryPlan(seed=1).for_shard(-1)

    def test_attacker_names(self):
        plan = AdversaryPlan(seed=1, sybils=3)
        assert plan.attacker_names() == {"evil-0", "evil-1", "evil-2"}
        assert attacker_name(0) == "evil-0"


class TestInfiltration:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_inserts_requested_sybils(self, protocol):
        network = build(protocol)
        before = network.size
        adversary = Adversary(
            AdversaryPlan(seed=SEED, sybils=10, target_key="victim-key")
        )
        adversary.apply(network)
        assert adversary.inserted == 10
        assert network.size == before + 10
        assert len(adversary.attacker_names) == 10

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_deterministic_placement(self, protocol):
        plan = AdversaryPlan(seed=SEED, sybils=8, target_key="victim-key")
        ids = []
        for _ in range(2):
            network = build(protocol)
            Adversary(plan).apply(network)
            ids.append(
                sorted(
                    (str(n.name), str(n.node_id))
                    for n in network.live_nodes()
                    if str(n.name).startswith("evil-")
                )
            )
        assert ids[0] == ids[1]

    def test_cycloid_cluster_surrounds_target_cycle(self):
        network = build("cycloid")
        plan = AdversaryPlan(seed=SEED, sybils=6, target_key="victim-key")
        Adversary(plan).apply(network)
        target = network.key_id("victim-key")
        cubicals = [
            n.id.cubical
            for n in network.live_nodes()
            if str(n.name).startswith("evil-")
        ]
        # Crafted ids cluster on the target's cycle and its immediate
        # cubical neighbourhood, never across the id space.
        modulus = 1 << network.dimension
        for cubical in cubicals:
            distance = min(
                (cubical - target.cubical) % modulus,
                (target.cubical - cubical) % modulus,
            )
            assert distance <= 6

    def test_ring_cluster_walls_off_the_arc(self):
        network = build("chord")
        plan = AdversaryPlan(seed=SEED, sybils=6, target_key="victim-key")
        Adversary(plan).apply(network)
        target = network.key_id("victim-key")
        space = 1 << network.bits
        offsets = sorted(
            (n.node_id - target) % space
            for n in network.live_nodes()
            if str(n.name).startswith("evil-")
        )
        # The first free ids clockwise from the key: a tight arc, with
        # gaps only where honest nodes already sat.
        assert offsets[-1] < 6 + POPULATION  # far tighter than the space
        assert offsets[0] >= 0

    def test_unsupported_overlay_raises(self):
        from repro.experiments.registry import build_sized_network

        network = build_sized_network("viceroy", 64, seed=1)
        with pytest.raises(ValueError, match="Viceroy"):
            Adversary(AdversaryPlan(seed=1, sybils=2)).infiltrate(network)


class TestPoison:
    def test_ground_truth_stays_honest_cycloid(self):
        network = build("cycloid")
        adversary = Adversary(
            AdversaryPlan(seed=SEED, sybils=5, eclipse_fraction=1.0)
        )
        adversary.infiltrate(network)
        inside = {
            str(n.name): (
                [str(x.name) for x in n.inside_left],
                [str(x.name) for x in n.inside_right],
            )
            for n in network.live_nodes()
        }
        adversary.poison(network)
        after = {
            str(n.name): (
                [str(x.name) for x in n.inside_left],
                [str(x.name) for x in n.inside_right],
            )
            for n in network.live_nodes()
        }
        assert inside == after  # inside leaf sets are never rewired
        network.check_invariants()

    def test_chord_fingers_rewired_successors_honest(self):
        network = build("chord")
        adversary = Adversary(
            AdversaryPlan(seed=SEED, sybils=5, eclipse_fraction=1.0)
        )
        adversary.infiltrate(network)
        succs = {
            str(n.name): [str(s.name) for s in n.successors]
            for n in network.live_nodes()
        }
        preds = {
            str(n.name): str(n.predecessor.name)
            for n in network.live_nodes()
            if n.predecessor is not None
        }
        adversary.poison(network)
        attackers = set(adversary.attacker_names)
        for node in network.live_nodes():
            name = str(node.name)
            if name in attackers:
                continue
            assert all(
                str(f.name) in attackers
                for f in node.fingers
                if f is not None
            )
            assert [str(s.name) for s in node.successors] == succs[name]
            assert str(node.predecessor.name) == preds[name]

    def test_koorde_debruijn_rewired(self):
        network = build("koorde")
        adversary = Adversary(
            AdversaryPlan(seed=SEED, sybils=5, eclipse_fraction=1.0)
        )
        adversary.apply(network)
        attackers = set(adversary.attacker_names)
        for node in network.live_nodes():
            if str(node.name) in attackers:
                continue
            assert str(node.debruijn.name) in attackers
            assert all(
                str(b.name) in attackers for b in node.debruijn_backups
            )

    def test_victim_selection_is_seeded_fraction(self):
        network = build("cycloid")
        adversary = Adversary(
            AdversaryPlan(seed=SEED, sybils=4, eclipse_fraction=0.3)
        )
        adversary.apply(network)
        assert 0.18 < adversary.victims / POPULATION < 0.45

    def test_poison_without_attackers_is_noop(self):
        network = build("chord")
        adversary = Adversary(
            AdversaryPlan(seed=SEED, eclipse_fraction=0.5)
        )
        assert adversary.poison(network) == 0

    def test_ownership_unchanged_by_poison_alone(self):
        """Eclipse rewires routing hints only: with sybils already in,
        poisoning must not move a single key's ground-truth owner."""
        network = build("koorde")
        adversary = Adversary(
            AdversaryPlan(seed=SEED, sybils=5, eclipse_fraction=0.8)
        )
        adversary.infiltrate(network)
        keys = [f"own-{i}" for i in range(64)]
        owners = [
            str(network.owner_of_id(network.key_id(k)).name) for k in keys
        ]
        adversary.poison(network)
        network.invalidate_owner_cache()
        assert owners == [
            str(network.owner_of_id(network.key_id(k)).name) for k in keys
        ]


class TestGoldenParity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_disabled_plan_is_bit_exact(self, protocol):
        """The acceptance bar: an inactive AdversaryPlan leaves every
        existing overlay result bit-identical to no adversary at all."""
        honest = build(protocol)
        attacked = build(protocol)
        adversary = Adversary(AdversaryPlan(seed=99))
        adversary.apply(attacked)
        assert adversary.inserted == 0
        assert adversary.poisoned_entries == 0
        assert routes(honest) == routes(attacked)

    @pytest.mark.parametrize("protocol", ("cycloid", "chord"))
    def test_active_plan_changes_routing(self, protocol):
        honest = build(protocol)
        attacked = build(protocol)
        Adversary(
            AdversaryPlan(seed=SEED, sybils=8, eclipse_fraction=0.4)
        ).apply(attacked)
        assert routes(honest) != routes(attacked)


class TestMetrics:
    def test_capture_fraction_bounds_and_determinism(self):
        network = build("chord")
        adversary = Adversary(AdversaryPlan(seed=SEED, sybils=12))
        adversary.apply(network)
        a = capture_fraction(network, adversary.attacker_names, probes=256)
        b = capture_fraction(network, adversary.attacker_names, probes=256)
        assert a == b
        assert 0.0 < a < 1.0

    def test_capture_fraction_empty_attackers(self):
        network = build("chord")
        assert capture_fraction(network, [], probes=16) == 0.0

    def test_capture_fraction_rejects_bad_probes(self):
        network = build("chord")
        with pytest.raises(ValueError):
            capture_fraction(network, ["evil-0"], probes=0)

    def test_interception_rate_counts_path_crossings(self):
        from repro.dht.metrics import LookupRecord

        records = [
            LookupRecord(hops=2, success=True, path=["a", "evil-0", "b"]),
            LookupRecord(hops=1, success=True, path=["a", "b"]),
            # An attacker *source* is not an interception.
            LookupRecord(hops=1, success=True, path=["evil-0", "b"]),
        ]
        assert interception_rate(records, ["evil-0"]) == pytest.approx(1 / 3)
        assert interception_rate([], ["evil-0"]) == 0.0
        assert interception_rate(records, []) == 0.0

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_tracer_equals_path_metric(self, protocol):
        network = build(protocol)
        adversary = Adversary(
            AdversaryPlan(seed=SEED, sybils=8, eclipse_fraction=0.3)
        )
        adversary.apply(network)
        tracer = InterceptionTracer(adversary.attacker_names)
        rng = make_rng(31)
        records = network.lookup_many(
            list(lookup_workload(network, 80, rng)), observer=tracer
        )
        assert tracer.lookups == 80
        assert tracer.rate == pytest.approx(
            interception_rate(records, adversary.attacker_names)
        )

    def test_tracer_empty(self):
        assert InterceptionTracer(["evil-0"]).rate == 0.0


class TestBackendAndWorkerParity:
    @pytest.mark.parametrize("protocol", ("cycloid", "chord", "koorde"))
    def test_columnar_kernel_matches_on_poisoned_network(self, protocol):
        network = build(protocol)
        Adversary(
            AdversaryPlan(seed=SEED, sybils=8, eclipse_fraction=0.4)
        ).apply(network)
        pairs = list(lookup_workload(network, 80, make_rng(5)))
        obj = network.lookup_many(pairs)
        col = network.lookup_many(pairs, backend="columnar")
        assert [(r.hops, r.success, r.path) for r in obj] == [
            (r.hops, r.success, r.path) for r in col
        ]

    def test_sharded_run_worker_invariant(self):
        plan = AdversaryPlan(
            seed=SEED, sybils=8, target_key="victim-key", eclipse_fraction=0.3
        )
        setup = partial(
            plain_setup, build_adversary_network, "cycloid", POPULATION,
            SEED, plan,
        )
        digests = {
            run_sharded_lookups(
                setup, 120, SEED + 1, workers=workers, shard_size=40
            ).stats.digest()
            for workers in (1, 2)
        }
        assert len(digests) == 1

    def test_snapshot_and_rebuild_agree(self):
        plan = AdversaryPlan(seed=SEED, sybils=6, eclipse_fraction=0.2)
        setup = partial(
            plain_setup, build_adversary_network, "chord", POPULATION,
            SEED, plan,
        )
        digests = {
            run_sharded_lookups(
                setup, 90, 3, workers=1, shard_size=30,
                distribution=distribution,
            ).stats.digest()
            for distribution in ("snapshot", "rebuild")
        }
        assert len(digests) == 1
