"""The one-shot oversubscription warning of the sharded runner."""

import warnings
from functools import partial

import pytest

import repro.sim.parallel as parallel
from repro.experiments.registry import build_complete_network
from repro.sim.parallel import plain_setup, run_sharded_lookups


@pytest.fixture(autouse=True)
def reset_latch(monkeypatch):
    monkeypatch.setattr(parallel, "_oversubscribed_warned", False)


def test_warns_once_when_workers_exceed_cpus(monkeypatch):
    monkeypatch.setattr(parallel, "available_workers", lambda: 1)
    with pytest.warns(UserWarning, match="oversubscription"):
        parallel._warn_if_oversubscribed(8)
    # Latched: the second misconfigured call stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        parallel._warn_if_oversubscribed(8)


def test_silent_within_the_cpu_budget(monkeypatch):
    monkeypatch.setattr(parallel, "available_workers", lambda: 4)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        parallel._warn_if_oversubscribed(4)
        parallel._warn_if_oversubscribed(1)
    assert parallel._oversubscribed_warned is False


def test_run_sharded_lookups_surfaces_the_warning(monkeypatch):
    """The integration path: a sharded run with too many workers warns
    (and still produces its results — the run stays correct)."""
    monkeypatch.setattr(parallel, "available_workers", lambda: 1)
    setup = partial(
        plain_setup, build_complete_network, "cycloid", 3, seed=1
    )
    with pytest.warns(UserWarning, match="exceeds the 1 usable CPU"):
        merged = run_sharded_lookups(setup, 12, 5, workers=2)
    assert merged.stats.records
