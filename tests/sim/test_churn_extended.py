"""Churn-driver integration with the extended protocols (Pastry, CAN)."""

from repro.can import CanNetwork
from repro.pastry import PastryNetwork
from repro.sim.churn import ChurnConfig, run_churn_simulation


class TestPastryUnderChurn:
    def test_no_failures_with_stabilization(self):
        network = PastryNetwork.with_random_ids(150, seed=1)
        result = run_churn_simulation(
            network,
            ChurnConfig(join_leave_rate=0.3, duration=250, seed=2),
        )
        assert result.failures == 0
        assert result.joins > 0 and result.leaves > 0
        assert result.final_size == 150 + result.joins - result.leaves

    def test_timeouts_small(self):
        network = PastryNetwork.with_random_ids(150, seed=3)
        result = run_churn_simulation(
            network,
            ChurnConfig(join_leave_rate=0.2, duration=250, seed=4),
        )
        assert result.stats.timeout_summary().mean < 0.5


class TestCanUnderChurn:
    def test_no_failures_with_stabilization(self):
        network = CanNetwork.with_random_zones(80, seed=5)
        network.stabilize()
        result = run_churn_simulation(
            network,
            ChurnConfig(join_leave_rate=0.2, duration=200, seed=6),
        )
        assert result.failures == 0
        network.check_invariants()

    def test_partition_survives_churn(self):
        network = CanNetwork.with_random_zones(60, seed=7)
        network.stabilize()
        run_churn_simulation(
            network,
            ChurnConfig(join_leave_rate=0.4, duration=150, seed=8),
        )
        network.stabilize()
        network.check_invariants()
