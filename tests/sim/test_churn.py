"""Integration tests for the churn simulation driver."""

import pytest

from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.sim.churn import ChurnConfig, run_churn_simulation
from repro.viceroy import ViceroyNetwork


class TestChurnConfig:
    def test_defaults_match_paper(self):
        config = ChurnConfig(join_leave_rate=0.05)
        assert config.lookup_rate == 1.0
        assert config.stabilization_interval == 30.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"join_leave_rate": -1.0},
            {"join_leave_rate": 0.1, "duration": 0},
            {"join_leave_rate": 0.1, "lookup_rate": 0},
            {"join_leave_rate": 0.1, "stabilization_interval": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChurnConfig(**kwargs)


class TestChurnSimulation:
    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            network = CycloidNetwork.with_random_ids(100, 6, seed=1)
            config = ChurnConfig(join_leave_rate=0.2, duration=120, seed=5)
            result = run_churn_simulation(network, config)
            results.append(
                (
                    result.joins,
                    result.leaves,
                    len(result.stats),
                    result.stats.mean_path_length,
                )
            )
        assert results[0] == results[1]

    def test_poisson_event_counts_scale_with_rate(self):
        low = run_churn_simulation(
            CycloidNetwork.with_random_ids(100, 6, seed=1),
            ChurnConfig(join_leave_rate=0.05, duration=200, seed=2),
        )
        high = run_churn_simulation(
            CycloidNetwork.with_random_ids(100, 6, seed=1),
            ChurnConfig(join_leave_rate=0.4, duration=200, seed=2),
        )
        assert high.joins > low.joins
        assert high.leaves > low.leaves

    def test_lookup_rate_produces_about_one_per_second(self):
        result = run_churn_simulation(
            CycloidNetwork.with_random_ids(100, 6, seed=1),
            ChurnConfig(join_leave_rate=0.0, duration=400, seed=3),
        )
        assert 300 <= len(result.stats) <= 520

    def test_zero_churn_never_fails(self):
        result = run_churn_simulation(
            ChordNetwork.with_random_ids(100, 8, seed=1),
            ChurnConfig(join_leave_rate=0.0, duration=200, seed=4),
        )
        assert result.failures == 0
        assert result.joins == result.leaves == 0

    def test_cycloid_under_churn_resolves_all_lookups(self):
        # Fig. 12 / Table 5: no failures with stabilisation running.
        result = run_churn_simulation(
            CycloidNetwork.with_random_ids(150, 6, seed=1),
            ChurnConfig(join_leave_rate=0.3, duration=300, seed=5),
        )
        assert result.failures == 0
        assert result.joins > 0 and result.leaves > 0

    def test_viceroy_under_churn_has_zero_timeouts(self):
        result = run_churn_simulation(
            ViceroyNetwork.with_random_ids(150, seed=1),
            ChurnConfig(join_leave_rate=0.3, duration=300, seed=6),
        )
        assert result.failures == 0
        assert result.stats.timeout_summary().maximum == 0

    def test_warmup_discards_early_lookups(self):
        network = CycloidNetwork.with_random_ids(100, 6, seed=1)
        result = run_churn_simulation(
            network,
            ChurnConfig(join_leave_rate=0.0, duration=200, seed=7, warmup=100),
        )
        full = run_churn_simulation(
            CycloidNetwork.with_random_ids(100, 6, seed=1),
            ChurnConfig(join_leave_rate=0.0, duration=200, seed=7),
        )
        assert len(result.stats) < len(full.stats)

    def test_final_size_tracks_population(self):
        network = CycloidNetwork.with_random_ids(100, 6, seed=1)
        result = run_churn_simulation(
            network, ChurnConfig(join_leave_rate=0.2, duration=200, seed=8)
        )
        assert result.final_size == network.size
        assert result.final_size == 100 + result.joins - result.leaves
