"""Unit tests for workload generators."""

import pytest

from repro.sim.workload import (
    ZipfSampler,
    lookup_workload,
    random_keys,
    uniform_key_corpus,
    zipf_weights,
)
from repro.util.rng import derive_rng, make_rng


class TestRandomKeys:
    def test_count_and_uniqueness(self, rng):
        keys = random_keys(100, rng)
        assert len(keys) == len(set(keys)) == 100

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_keys(-1, rng)

    def test_negative_error_names_the_value(self, rng):
        # The message must say what was passed, not just the rule.
        with pytest.raises(
            ValueError, match=r"count must be non-negative, got -7"
        ):
            random_keys(-7, rng)

    def test_zero_is_allowed(self, rng):
        assert random_keys(0, rng) == []

    def test_prefix(self, rng):
        assert random_keys(1, rng, prefix="abc")[0].startswith("abc-")


class TestUniformKeyCorpus:
    def test_deterministic(self):
        assert uniform_key_corpus(50, 7) == uniform_key_corpus(50, 7)

    def test_different_seeds_differ(self):
        assert uniform_key_corpus(50, 7) != uniform_key_corpus(50, 8)

    def test_prefix_stability(self):
        # Growing the corpus preserves the prefix, as the incremental
        # key-count sweep of Figs 8-9 requires.
        small = uniform_key_corpus(10, 7)
        large = uniform_key_corpus(20, 7)
        assert large[:10] == small


class TestLookupWorkload:
    def test_yields_pairs(self, cycloid_sparse, rng):
        pairs = list(lookup_workload(cycloid_sparse, 25, rng))
        assert len(pairs) == 25
        live = set(id(n) for n in cycloid_sparse.live_nodes())
        for source, key in pairs:
            assert id(source) in live
            assert isinstance(key, str)

    def test_uses_supplied_keys(self, cycloid_sparse, rng):
        keys = ["a", "b"]
        pairs = list(lookup_workload(cycloid_sparse, 20, rng, keys=keys))
        assert {key for _, key in pairs} <= set(keys)

    def test_empty_network_rejected(self, rng):
        from repro.core import CycloidNetwork

        with pytest.raises(ValueError):
            list(lookup_workload(CycloidNetwork(4), 1, rng))

    def test_start_offsets_key_indices(self, cycloid_sparse):
        # Shard workloads carry global lookup indices: a shard at
        # offset 5 generates keys tagged -5, -6, ... so two shards can
        # never emit the same key even from colliding RNG draws.
        pairs = list(
            lookup_workload(cycloid_sparse, 3, make_rng(1), start=5)
        )
        assert [key.rsplit("-", 1)[1] for _, key in pairs] == ["5", "6", "7"]

    def test_start_defaults_to_zero(self, cycloid_sparse):
        pairs = list(lookup_workload(cycloid_sparse, 2, make_rng(1)))
        assert [key.rsplit("-", 1)[1] for _, key in pairs] == ["0", "1"]


class TestZipfWeights:
    def test_rank_one_dominates(self):
        weights = zipf_weights(10, 1.1)
        assert weights[0] == 1.0
        assert weights == sorted(weights, reverse=True)

    def test_exponent_zero_is_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_pinned_values(self):
        assert zipf_weights(3, 1.0) == [1.0, 0.5, pytest.approx(1 / 3)]

    @pytest.mark.parametrize("count,s", [(0, 1.0), (-1, 1.0), (3, -0.1)])
    def test_rejects_bad_arguments(self, count, s):
        with pytest.raises(ValueError):
            zipf_weights(count, s)


class TestZipfSampler:
    def test_corpus_order_is_popularity_rank(self):
        sampler = ZipfSampler(["hot", "warm", "cold"], s=1.2)
        counts = {"hot": 0, "warm": 0, "cold": 0}
        rng = make_rng(3)
        for _ in range(3000):
            counts[sampler.draw(rng)] += 1
        assert counts["hot"] > counts["warm"] > counts["cold"]

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([])

    def test_deterministic_across_instances(self):
        keys = [f"k{i}" for i in range(16)]
        a = ZipfSampler(keys, s=1.1).sample(40, make_rng(9))
        b = ZipfSampler(keys, s=1.1).sample(40, make_rng(9))
        assert a == b

    def test_from_universe_hot_key_first(self):
        sampler = ZipfSampler.from_universe(8, make_rng(4), s=1.3)
        assert len(sampler.keys) == 8
        assert sampler.weights[0] == max(sampler.weights)

    def test_loadgen_draw_parity(self):
        """The extraction pin (§S27): the live open-loop generator must
        draw byte-identical keys to a hand-run sampler consuming the
        same derived RNG streams — one implementation, two tiers."""
        from repro.net.loadgen import make_open_operations

        seed, universe, s = 2024, 16, 1.1
        rng = make_rng(seed)
        sampler = ZipfSampler.from_universe(universe, derive_rng(rng, 1), s=s)
        expected = []
        for _ in range(12):
            rng.expovariate(50.0)   # arrival clock draw
            rng.random()            # put/get draw
            expected.append(sampler.draw(rng))
            rng.random()            # source_pick draw
        operations = make_open_operations(
            12, seed=seed, rate=50.0, key_universe=universe,
            put_fraction=0.5, zipf_s=s,
        )
        assert [op["key"] for op in operations] == expected

    def test_loadgen_golden_keys(self):
        """Golden pin captured before the sampler extraction — the
        refactor must not move a single seeded draw."""
        from repro.net.loadgen import make_open_operations

        operations = make_open_operations(
            12, seed=2024, rate=50.0, key_universe=16,
            put_fraction=0.5, zipf_s=1.1,
        )
        assert [op["key"] for op in operations] == [
            "zipf-0257d718493460d3-10",
            "zipf-234b8c50b480e926-0",
            "zipf-f8d0570be89fd43a-5",
            "zipf-ef30b1bbdd7e0860-2",
            "zipf-f8d0570be89fd43a-5",
            "zipf-234b8c50b480e926-0",
            "zipf-6bb179697223506c-1",
            "zipf-d3d2e8c28a9e25bf-6",
            "zipf-6bb179697223506c-1",
            "zipf-234b8c50b480e926-0",
            "zipf-9a2be78b65e1a20e-9",
            "zipf-442bcff17e7cd05b-7",
        ]
