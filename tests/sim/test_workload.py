"""Unit tests for workload generators."""

import pytest

from repro.sim.workload import lookup_workload, random_keys, uniform_key_corpus
from repro.util.rng import make_rng


class TestRandomKeys:
    def test_count_and_uniqueness(self, rng):
        keys = random_keys(100, rng)
        assert len(keys) == len(set(keys)) == 100

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_keys(-1, rng)

    def test_negative_error_names_the_value(self, rng):
        # The message must say what was passed, not just the rule.
        with pytest.raises(
            ValueError, match=r"count must be non-negative, got -7"
        ):
            random_keys(-7, rng)

    def test_zero_is_allowed(self, rng):
        assert random_keys(0, rng) == []

    def test_prefix(self, rng):
        assert random_keys(1, rng, prefix="abc")[0].startswith("abc-")


class TestUniformKeyCorpus:
    def test_deterministic(self):
        assert uniform_key_corpus(50, 7) == uniform_key_corpus(50, 7)

    def test_different_seeds_differ(self):
        assert uniform_key_corpus(50, 7) != uniform_key_corpus(50, 8)

    def test_prefix_stability(self):
        # Growing the corpus preserves the prefix, as the incremental
        # key-count sweep of Figs 8-9 requires.
        small = uniform_key_corpus(10, 7)
        large = uniform_key_corpus(20, 7)
        assert large[:10] == small


class TestLookupWorkload:
    def test_yields_pairs(self, cycloid_sparse, rng):
        pairs = list(lookup_workload(cycloid_sparse, 25, rng))
        assert len(pairs) == 25
        live = set(id(n) for n in cycloid_sparse.live_nodes())
        for source, key in pairs:
            assert id(source) in live
            assert isinstance(key, str)

    def test_uses_supplied_keys(self, cycloid_sparse, rng):
        keys = ["a", "b"]
        pairs = list(lookup_workload(cycloid_sparse, 20, rng, keys=keys))
        assert {key for _, key in pairs} <= set(keys)

    def test_empty_network_rejected(self, rng):
        from repro.core import CycloidNetwork

        with pytest.raises(ValueError):
            list(lookup_workload(CycloidNetwork(4), 1, rng))

    def test_start_offsets_key_indices(self, cycloid_sparse):
        # Shard workloads carry global lookup indices: a shard at
        # offset 5 generates keys tagged -5, -6, ... so two shards can
        # never emit the same key even from colliding RNG draws.
        pairs = list(
            lookup_workload(cycloid_sparse, 3, make_rng(1), start=5)
        )
        assert [key.rsplit("-", 1)[1] for _, key in pairs] == ["5", "6", "7"]

    def test_start_defaults_to_zero(self, cycloid_sparse):
        pairs = list(lookup_workload(cycloid_sparse, 2, make_rng(1)))
        assert [key.rsplit("-", 1)[1] for _, key in pairs] == ["0", "1"]
