"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, EventQueue, Simulator


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, 0, lambda: None)

    def test_ordering_by_time_then_sequence(self):
        a = Event(1.0, 0, lambda: None)
        b = Event(1.0, 1, lambda: None)
        c = Event(0.5, 2, lambda: None)
        assert c < a < b


class TestEventQueue:
    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        queue.pop().action()
        queue.pop().action()
        assert order == ["first", "second"]

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0


class TestSimulator:
    def test_runs_in_time_order(self):
        simulator = Simulator()
        times = []
        simulator.schedule(2.0, lambda: times.append(simulator.now))
        simulator.schedule(1.0, lambda: times.append(simulator.now))
        simulator.run_until(10.0)
        assert times == [1.0, 2.0]
        assert simulator.now == 10.0

    def test_horizon_excludes_later_events(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(5.0, lambda: fired.append(5))
        simulator.schedule(15.0, lambda: fired.append(15))
        assert simulator.run_until(10.0) == 1
        assert fired == [5]

    def test_actions_can_reschedule(self):
        simulator = Simulator()
        ticks = []

        def tick():
            ticks.append(simulator.now)
            if simulator.now < 5:
                simulator.schedule(1.0, tick)

        simulator.schedule(1.0, tick)
        simulator.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        simulator = Simulator()
        simulator.run_until(5.0)
        with pytest.raises(ValueError):
            simulator.schedule_at(1.0, lambda: None)

    def test_time_monotone_across_runs(self):
        simulator = Simulator()
        simulator.run_until(3.0)
        simulator.schedule(1.0, lambda: None)
        simulator.run_until(8.0)
        assert simulator.now == 8.0
        assert simulator.processed == 1
