"""Unit tests for the plain-text reporting helpers."""

from repro.analysis.report import ascii_series, format_table, series_by_protocol


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["proto", "hops"], [["cycloid", 4.5], ["viceroy", 18.2]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("proto")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["a"], [["x"]], title="Fig 5")
        assert text.splitlines()[0] == "Fig 5"

    def test_wide_values_expand_columns(self):
        text = format_table(["a"], [["very-long-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("very-long-value")
        del header, row


class TestSeriesByProtocol:
    def test_grouping(self):
        points = [("cycloid", 3, 2.0), ("cycloid", 4, 3.0), ("chord", 3, 2.5)]
        series = series_by_protocol(
            points,
            x_of=lambda p: p[1],
            y_of=lambda p: p[2],
            protocol_of=lambda p: p[0],
        )
        assert series == {
            "cycloid": [(3, 2.0), (4, 3.0)],
            "chord": [(3, 2.5)],
        }


class TestAsciiSeries:
    def test_renders_bars(self):
        text = ascii_series({"cycloid": [(3, 2.0), (8, 8.0)]}, width=10)
        assert "cycloid:" in text
        assert "##########" in text  # peak fills the width

    def test_empty_series(self):
        assert ascii_series({}) == ""
        assert ascii_series({"x": []}) == "x:"

    def test_zero_values(self):
        text = ascii_series({"x": [(1, 0.0)]})
        assert "0.00" in text

    def test_title_and_unit(self):
        text = ascii_series({"x": [(1, 1.0)]}, title="T", unit=" hops")
        assert text.splitlines()[0] == "T"
        assert "hops" in text
