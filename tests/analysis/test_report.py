"""Unit tests for the plain-text reporting helpers."""

import pytest

from repro.analysis.report import (
    ascii_series,
    format_bench_table,
    format_table,
    series_by_protocol,
)
from repro.util.stats import summarize


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["proto", "hops"], [["cycloid", 4.5], ["viceroy", 18.2]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("proto")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["a"], [["x"]], title="Fig 5")
        assert text.splitlines()[0] == "Fig 5"

    def test_wide_values_expand_columns(self):
        text = format_table(["a"], [["very-long-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("very-long-value")
        del header, row


class TestPercentileRows:
    """Edge cases of the ``mean (p1, p99)`` printers the tables use."""

    def test_empty_series(self):
        summary = summarize([])
        assert summary.as_row() == "0.00 (0, 0)"
        assert summary.count == 0
        assert summary.spread == 0.0

    def test_single_sample(self):
        # One sample: every percentile is the sample itself.
        summary = summarize([7.0])
        assert summary.as_row() == "7.00 (7, 7)"
        assert summary.p1 == summary.p99 == 7.0

    def test_two_samples_interpolate(self):
        # n=2: the 1st/99th percentiles interpolate between the two
        # order statistics (rank = q/100 * (n-1)), staying in-bounds.
        summary = summarize([1.0, 3.0])
        assert summary.mean == 2.0
        assert summary.p1 == pytest.approx(1.02)
        assert summary.p99 == pytest.approx(2.98)
        assert summary.as_row() == "2.00 (1.02, 2.98)"

    def test_two_samples_render_in_table(self):
        text = format_table(
            ["timeouts"], [[summarize([1.0, 3.0]).as_row()]]
        )
        assert "(1.02, 2.98)" in text


class TestFormatBenchTable:
    CELLS = [
        {
            "protocol": "cycloid",
            "serial_seconds": 2.0,
            "parallel_seconds": 0.8,
            "speedup": 2.5,
            "digest_match": True,
        },
        {
            "protocol": "chord",
            "serial_seconds": 1.0,
            "parallel_seconds": 1.1,
            "speedup": 0.909,
            "digest_match": False,
        },
    ]

    def test_columns_and_flags(self):
        text = format_bench_table(self.CELLS, workers=4)
        assert "workers=4" in text.splitlines()[0]
        assert "2.50x" in text
        assert "0.91x" in text
        cycloid_row = next(l for l in text.splitlines() if "cycloid" in l)
        chord_row = next(l for l in text.splitlines() if "chord" in l)
        assert "yes" in cycloid_row
        assert "NO" in chord_row


class TestSeriesByProtocol:
    def test_grouping(self):
        points = [("cycloid", 3, 2.0), ("cycloid", 4, 3.0), ("chord", 3, 2.5)]
        series = series_by_protocol(
            points,
            x_of=lambda p: p[1],
            y_of=lambda p: p[2],
            protocol_of=lambda p: p[0],
        )
        assert series == {
            "cycloid": [(3, 2.0), (4, 3.0)],
            "chord": [(3, 2.5)],
        }


class TestAsciiSeries:
    def test_renders_bars(self):
        text = ascii_series({"cycloid": [(3, 2.0), (8, 8.0)]}, width=10)
        assert "cycloid:" in text
        assert "##########" in text  # peak fills the width

    def test_empty_series(self):
        assert ascii_series({}) == ""
        assert ascii_series({"x": []}) == "x:"

    def test_zero_values(self):
        text = ascii_series({"x": [(1, 0.0)]})
        assert "0.00" in text

    def test_title_and_unit(self):
        text = ascii_series({"x": [(1, 1.0)]}, title="T", unit=" hops")
        assert text.splitlines()[0] == "T"
        assert "hops" in text
