"""Unit tests for lookup metrics."""

import pytest

from repro.dht.metrics import LookupRecord, LookupStats
from repro.util.stats import DistributionSummary


class TestLookupRecord:
    def test_valid(self):
        record = LookupRecord(hops=3, success=True, timeouts=1)
        assert record.hops == 3

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            LookupRecord(hops=-1, success=True)

    def test_negative_timeouts_rejected(self):
        with pytest.raises(ValueError):
            LookupRecord(hops=0, success=True, timeouts=-2)

    def test_phase_hops_must_sum_to_hops(self):
        with pytest.raises(ValueError):
            LookupRecord(hops=5, success=True, phase_hops={"a": 1, "b": 1})

    def test_consistent_phase_hops(self):
        record = LookupRecord(hops=5, success=True, phase_hops={"a": 2, "b": 3})
        assert record.phase_hops["b"] == 3

    def test_empty_phase_hops_allowed(self):
        LookupRecord(hops=5, success=True)


class TestLookupStats:
    def make(self):
        stats = LookupStats()
        stats.add(LookupRecord(hops=2, success=True, timeouts=0,
                               phase_hops={"x": 2}))
        stats.add(LookupRecord(hops=4, success=False, timeouts=3,
                               phase_hops={"x": 1, "y": 3}))
        return stats

    def test_counts(self):
        stats = self.make()
        assert len(stats) == 2
        assert stats.count == 2
        assert stats.failures == 1

    def test_mean_path_length(self):
        assert self.make().mean_path_length == 3.0

    def test_empty_mean(self):
        assert LookupStats().mean_path_length == 0.0

    def test_timeout_summary(self):
        summary = self.make().timeout_summary()
        assert isinstance(summary, DistributionSummary)
        assert summary.mean == 1.5
        assert summary.maximum == 3

    def test_phase_breakdown(self):
        breakdown = self.make().phase_breakdown()
        assert breakdown.totals == {"x": 3, "y": 3}
        assert breakdown.lookups == 2

    def test_extend(self):
        stats = LookupStats()
        stats.extend(self.make().records)
        assert stats.count == 2

    def test_query_load_redirects_to_network(self):
        with pytest.raises(NotImplementedError):
            self.make().query_load()
