"""Unit tests for the snapshot/clone codec (DESIGN.md §S21).

The parity suite (tests/sim) proves snapshot distribution is
bit-identical to rebuild end-to-end; this file pins the codec's own
contract: pickle round-trips for every overlay at two scales, dead
nodes captured through stale pointers, the owner cache excluded, and
unknown types rejected loudly.
"""

from __future__ import annotations

import pickle
import random
import sys

import pytest

from repro.dht.snapshot import (
    NetworkSnapshot,
    clone_network,
    pack_network,
    unpack_network,
)
from repro.experiments.common import run_lookups
from repro.experiments.registry import ALL_PROTOCOLS, build_complete_network
from repro.sim.faults import FaultInjector, FaultPlan

SEED = 42
LOOKUPS = 80


def _digest(network, seed=SEED + 1):
    return run_lookups(network, LOOKUPS, seed=seed).digest()


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("dimension", [3, 5])
class TestPickleRoundTrip:
    def test_round_trip_preserves_lookup_behaviour(self, protocol, dimension):
        network = build_complete_network(protocol, dimension, seed=SEED)
        payload = pickle.dumps(network, pickle.HIGHEST_PROTOCOL)
        restored = pickle.loads(payload)
        assert restored.protocol_name == network.protocol_name
        assert restored.size == network.size
        assert _digest(restored) == _digest(network)

    def test_clone_matches_round_trip(self, protocol, dimension):
        network = build_complete_network(protocol, dimension, seed=SEED)
        clone = clone_network(network)
        restored = pickle.loads(pickle.dumps(network, pickle.HIGHEST_PROTOCOL))
        assert _digest(clone) == _digest(restored) == _digest(network)

    def test_snapshot_restore_is_fresh_each_time(self, protocol, dimension):
        snapshot = NetworkSnapshot.capture(
            build_complete_network(protocol, dimension, seed=SEED)
        )
        first = snapshot.restore()
        second = snapshot.restore()
        assert first is not second
        assert _digest(first) == _digest(second)
        live_a = {node.name for node in first.live_nodes()}
        live_b = {node.name for node in second.live_nodes()}
        assert live_a == live_b


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_crashed_network_round_trips(protocol):
    """Dead nodes reachable only through stale pointers are captured.

    After ``crash_nodes`` the survivors still hold references to dead
    neighbours; those produce the timeouts the failure experiments
    measure, so a clone that dropped them would change digests.
    """
    network = build_complete_network(protocol, 4, seed=SEED)
    injector = FaultInjector(
        FaultPlan(seed=SEED + 30, crash_probability=0.3, message_loss=0.0)
    )
    injector.crash_nodes(network)
    assert injector.crashed > 0
    clone = clone_network(network)
    assert clone.size == network.size
    assert {n.name for n in clone.live_nodes()} == {
        n.name for n in network.live_nodes()
    }
    assert _digest(clone) == _digest(network)


def test_owner_cache_not_captured():
    network = build_complete_network("chord", 4, seed=SEED)
    for key in range(32):
        network.owner_of_key(key)
    assert network._owner_cache
    packed = pack_network(network)
    assert "_owner_cache" not in packed.attrs
    restored = unpack_network(packed)
    assert restored._owner_cache == {}
    # The cache refills lazily and serves the same owners.
    for key in range(32):
        assert (
            restored.owner_of_key(key).name == network.owner_of_key(key).name
        )


def test_rng_state_is_copied_not_shared():
    network = build_complete_network("cycloid", 4, seed=SEED)
    clone = clone_network(network)
    rng_a = network._rng
    rng_b = clone._rng
    assert rng_a is not rng_b
    assert rng_a.getstate() == rng_b.getstate()
    rng_b.random()
    assert rng_a.getstate() != rng_b.getstate()


def test_unregistered_type_is_rejected():
    class Opaque:
        pass

    network = build_complete_network("chord", 3, seed=SEED)
    network.opaque = Opaque()
    try:
        with pytest.raises(TypeError, match="register the class"):
            pack_network(network)
    finally:
        del network.opaque


def test_packed_form_has_no_node_instances_at_top_level():
    """The packed columns are indices and atoms — pickling them never
    recurses through node-to-node pointers."""
    network = build_complete_network("koorde", 5, seed=SEED)
    packed = pack_network(network)
    assert packed.node_count == network.size
    limit = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(120)
        pickle.dumps(packed, pickle.HIGHEST_PROTOCOL)
    finally:
        sys.setrecursionlimit(limit)


def test_random_attribute_round_trips():
    rng = random.Random(7)
    rng.random()
    network = build_complete_network("chord", 3, seed=SEED)
    network._rng = rng
    clone = clone_network(network)
    assert clone._rng.getstate() == rng.getstate()
