"""Engine fault mode: probes, retries, fallbacks and lazy repair.

A tiny scripted overlay pins the probe-loop semantics hop by hop; a
real Chord network then checks the end-to-end property the machinery
exists for — retries strictly improve lookup survival under ungraceful
crashes.
"""

from repro.chord import ChordNetwork
from repro.dht.base import Network, Node
from repro.dht.routing import (
    RecordingTracer,
    RoutingDecision,
    execute_lookup,
)
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng


class _StubNode(Node):
    @property
    def node_id(self):
        return self.name

    @property
    def degree(self):
        return 0


class _ForkNetwork(Network):
    """One routing step: ``src`` forwards to ``risky`` with ``safe`` as
    the ranked alternate.  Whoever is alive owns every key."""

    protocol_name = "fork"
    ROUTING_PHASES = ("step",)

    def __init__(self):
        super().__init__()
        self.src = _StubNode("src")
        self.risky = _StubNode("risky")
        self.safe = _StubNode("safe")
        self.repairs = []

    def live_nodes(self):
        return [n for n in (self.src, self.risky, self.safe) if n.alive]

    def join(self, name):
        raise NotImplementedError

    def leave(self, node):
        node.alive = False

    def stabilize(self):
        pass

    def key_id(self, key):
        return key

    def owner_of_id(self, key_id):
        return self.risky if self.risky.alive else self.safe

    def next_hop(self, current, key_id, state):
        if current is self.src:
            return RoutingDecision.forward(
                self.risky, "step", alternates=((self.safe, "step"),)
            )
        return RoutingDecision.terminate()

    def on_dead_entry(self, observer, dead):
        self.repairs.append((observer.name, dead.name))
        return 1


class _ScriptedInjector(FaultInjector):
    """Active injector whose delivery outcomes follow a fixed script
    (then all-delivered), bypassing the seeded loss stream."""

    def __init__(self, script=()):
        super().__init__(FaultPlan(seed=0, message_loss=0.5))
        self.script = list(script)

    def delivered(self, sender, receiver):
        ok = self.script.pop(0) if self.script else True
        if not ok:
            self.dropped += 1
        return ok


def _run(network, injector, budget, observer=None):
    return execute_lookup(
        network,
        network.src,
        "key",
        observer=observer,
        injector=injector,
        retry_budget=budget,
    )


# ----------------------------------------------------------------------
# probe-loop semantics (scripted overlay)
# ----------------------------------------------------------------------


def test_dead_primary_falls_through_to_alternate_and_repairs():
    network = _ForkNetwork()
    network.risky.alive = False
    tracer = RecordingTracer()
    record = _run(network, _ScriptedInjector(), budget=1, observer=tracer)
    assert record.success
    assert record.path == ["src", "safe"]
    assert (record.hops, record.timeouts, record.retries) == (1, 1, 1)
    assert network.repairs == [("src", "risky")]
    assert network.route_repairs == 1
    # the failed probe is traced (kind "timeout") but never counted as
    # a hop; the successful fallback is a plain hop event
    kinds = [(e.kind, e.node, e.hop) for e in tracer.events]
    assert kinds == [("timeout", "risky", 1), ("hop", "safe", 1)]


def test_budget_zero_cannot_route_past_a_dead_primary():
    network = _ForkNetwork()
    network.risky.alive = False
    record = _run(network, _ScriptedInjector(), budget=0)
    assert not record.success
    assert record.path == ["src"]
    assert (record.hops, record.timeouts, record.retries) == (0, 1, 0)
    # detection still repairs the stale entry even when it cannot retry
    assert network.repairs == [("src", "risky")]


def test_lost_message_reprobes_the_same_target():
    network = _ForkNetwork()
    tracer = RecordingTracer()
    injector = _ScriptedInjector(script=[False, True])
    record = _run(network, injector, budget=3, observer=tracer)
    assert record.success
    assert record.path == ["src", "risky"]
    assert (record.hops, record.timeouts, record.retries) == (1, 1, 1)
    assert network.repairs == []  # target was alive: nothing to repair
    assert injector.dropped == 1
    kinds = [(e.kind, e.node) for e in tracer.events]
    assert kinds == [("retry", "risky"), ("hop", "risky")]


def test_exhausting_all_candidates_fails_the_lookup():
    network = _ForkNetwork()
    network.risky.alive = False
    network.safe.alive = False
    record = _run(network, _ScriptedInjector(), budget=5)
    assert not record.success
    assert record.path == ["src"]
    assert (record.hops, record.timeouts, record.retries) == (0, 2, 2)
    assert network.route_repairs == 2


# ----------------------------------------------------------------------
# real overlay, end to end
# ----------------------------------------------------------------------


def test_retries_strictly_improve_survival_under_crashes():
    plan = FaultPlan(seed=17, crash_probability=0.3, message_loss=0.05)
    by_budget = {}
    for budget in (0, 6):
        network = ChordNetwork.with_random_ids(128, 9, seed=3)
        injector = FaultInjector(plan)  # same plan: same crash set
        injector.crash_nodes(network)
        by_budget[budget] = network.lookup_many(
            lookup_workload(network, 150, make_rng(21)),
            injector=injector,
            retry_budget=budget,
        )
    survived = {
        budget: sum(1 for r in records if r.success)
        for budget, records in by_budget.items()
    }
    assert survived[6] > survived[0]
    assert sum(r.retries for r in by_budget[6]) > 0
    assert all(r.retries == 0 for r in by_budget[0])


def test_fault_flag_does_not_leak_into_fault_free_engines():
    network = ChordNetwork.with_random_ids(64, 8, seed=5)
    source = network.live_nodes()[0]
    injector = FaultInjector(FaultPlan(seed=1, message_loss=0.2))
    execute_lookup(
        network, source, network.key_id("k"), injector=injector, retry_budget=2
    )
    assert network.fault_detection  # armed during the fault-mode run
    record = network.lookup(source, "k")
    assert not network.fault_detection  # reset by the fault-free engine
    assert record.retries == 0
    assert record.success
