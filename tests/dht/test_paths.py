"""Cross-protocol invariants of the recorded lookup paths."""

from repro.util.rng import make_rng, sample_pairs


class TestPathRecording:
    def test_path_length_matches_hops(self, any_network):
        rng = make_rng(1)
        for source, target in sample_pairs(any_network.live_nodes(), 60, rng):
            record = any_network.route(source, target.node_id)
            assert len(record.path) == record.hops + 1

    def test_path_starts_at_source(self, any_network):
        source = any_network.live_nodes()[3]
        record = any_network.lookup(source, "path-start")
        assert record.path[0] == source.name

    def test_path_ends_at_reported_owner(self, any_network):
        rng = make_rng(2)
        for source, _ in sample_pairs(any_network.live_nodes(), 40, rng):
            record = any_network.lookup(source, "path-end")
            assert record.path[-1] == record.owner

    def test_path_traverses_live_nodes(self, any_network):
        live = {node.name for node in any_network.live_nodes()}
        rng = make_rng(3)
        for source, target in sample_pairs(any_network.live_nodes(), 40, rng):
            record = any_network.route(source, target.node_id)
            assert set(record.path) <= live

    def test_consecutive_hops_are_distinct(self, any_network):
        rng = make_rng(4)
        for source, target in sample_pairs(any_network.live_nodes(), 60, rng):
            record = any_network.route(source, target.node_id)
            for a, b in zip(record.path, record.path[1:]):
                assert a != b

    def test_paths_deterministic_in_stable_network(self, any_network):
        source = any_network.live_nodes()[0]
        first = any_network.lookup(source, "deterministic")
        second = any_network.lookup(source, "deterministic")
        assert first.path == second.path
