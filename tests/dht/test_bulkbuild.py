"""Bulk construction parity: columns byte-equal to the object builder.

The §S26 pins: over random (seed, dimension/bits, population) draws the
bulk-built packed form must hash identically to ``pack_network`` of the
object builder's network, for both protocols and both non-default
Cycloid leaf selections; bulk-built networks must route identically to
object-built ones under an active FaultPlan; and the array-mode kernel
compiled straight from columns must agree with the object-compiled
kernel lookup-for-lookup.
"""

from functools import partial

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.dht.bulkbuild as bulkbuild
from repro.chord.network import ChordNetwork
from repro.core.network import CycloidNetwork
from repro.dht.bulkbuild import (
    SAMPLERS,
    build_chord_columns,
    build_columns,
    build_cycloid_columns,
    bulk_ids,
    bulk_setup,
    packed_digest,
)
from repro.dht.kernel import compiler_for, kernel_from_columns
from repro.dht.snapshot import pack_network
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.latency import LatencyModel
from repro.sim.parallel import run_sharded_lookups
from repro.util.rng import make_rng

SEED = 42

FAULT_PLAN = FaultPlan(
    seed=SEED + 30, crash_probability=0.3, message_loss=0.05
)


def _cycloid_digests(n, d, seed, **kwargs):
    network = CycloidNetwork.with_random_ids(n, d, seed=seed, **kwargs)
    columns = build_cycloid_columns(n, d, seed=seed, **kwargs)
    return (
        packed_digest(columns.to_packed()),
        packed_digest(pack_network(network)),
    )


def _chord_digests(n, bits, seed, **kwargs):
    network = ChordNetwork.with_random_ids(n, bits, seed=seed, **kwargs)
    columns = build_chord_columns(n, bits, seed=seed, **kwargs)
    return (
        packed_digest(columns.to_packed()),
        packed_digest(pack_network(network)),
    )


class TestDigestParity:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_cycloid_random_draws(self, data):
        seed = data.draw(st.integers(0, 2**20), label="seed")
        dimension = data.draw(st.integers(3, 6), label="dimension")
        space = dimension << dimension
        count = data.draw(
            st.integers(1, min(space, 120)), label="count"
        )
        selection = data.draw(
            st.sampled_from(["primary", "random"]), label="selection"
        )
        bulk, golden = _cycloid_digests(
            count, dimension, seed, leaf_selection=selection
        )
        assert bulk == golden

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_chord_random_draws(self, data):
        seed = data.draw(st.integers(0, 2**20), label="seed")
        bits = data.draw(st.integers(3, 10), label="bits")
        count = data.draw(
            st.integers(1, min(1 << bits, 100)), label="count"
        )
        slist = data.draw(
            st.one_of(st.none(), st.integers(1, bits)), label="slist"
        )
        bulk, golden = _chord_digests(
            count, bits, seed, successor_list_size=slist
        )
        assert bulk == golden

    def test_cycloid_proximity_selection(self):
        model = LatencyModel(seed=3)
        bulk, golden = _cycloid_digests(
            60, 5, 2, leaf_selection="proximity", latency=model
        )
        assert bulk == golden

    def test_cycloid_wide_leaf_radius(self):
        bulk, golden = _cycloid_digests(50, 5, 4, leaf_radius=2)
        assert bulk == golden

    def test_pinned_cycloid_4096(self):
        """The acceptance pin: digest-equal at the parity scale."""
        bulk, golden = _cycloid_digests(4096, 12, 11)
        assert bulk == golden

    def test_pinned_chord_4096(self):
        bulk, golden = _chord_digests(4096, 13, 11)
        assert bulk == golden

    def test_rank_table_fallback_is_value_identical(self, monkeypatch):
        """Huge id spaces skip the occupancy tables; the searchsorted
        path must produce the same bytes."""
        with_tables = (
            packed_digest(build_cycloid_columns(200, 8, seed=9).to_packed()),
            packed_digest(build_chord_columns(200, 9, seed=9).to_packed()),
        )
        monkeypatch.setattr(bulkbuild, "RANK_TABLE_SPACE_LIMIT", 0)
        without = (
            packed_digest(build_cycloid_columns(200, 8, seed=9).to_packed()),
            packed_digest(build_chord_columns(200, 9, seed=9).to_packed()),
        )
        assert with_tables == without


class TestColumns:
    def test_reference_columns_are_int32(self):
        cols = build_cycloid_columns(80, 6, seed=SEED)
        for name in (
            "cn", "cl", "cs", "inside_left", "inside_right",
            "outside_left", "outside_right", "inside_len", "outside_len",
        ):
            assert getattr(cols, name).dtype == np.int32, name
        chord = build_chord_columns(80, 9, seed=SEED)
        for name in ("sorted_index", "fingers", "successors", "predecessor"):
            assert getattr(chord, name).dtype == np.int32, name

    def test_exact_sampler_replays_the_object_stream(self):
        assert bulk_ids(50, 6 << 6, 7, "exact").tolist() == make_rng(
            7
        ).sample(range(6 << 6), 50)

    def test_fast_sampler_is_deterministic_and_distinct(self):
        one = bulk_ids(1000, 1 << 14, 7, "fast")
        two = bulk_ids(1000, 1 << 14, 7, "fast")
        assert np.array_equal(one, two)
        assert np.unique(one).size == 1000

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="sampler"):
            bulk_ids(10, 100, 0, "bogus")

    def test_count_must_fit_the_space(self):
        with pytest.raises(ValueError, match="count"):
            bulk_ids(200, 100, 0, "exact")

    def test_proximity_requires_a_latency_model(self):
        with pytest.raises(ValueError, match="proximity"):
            build_cycloid_columns(10, 4, seed=0, leaf_selection="proximity")

    def test_build_columns_sizing_defaults(self):
        cols = build_columns("cycloid", 2000, seed=SEED)
        assert cols.space >= 2000
        chord = build_columns("chord", 2000, seed=SEED)
        assert chord.space >= 2000

    def test_unknown_protocol_error_names_the_fallback(self):
        """The kernel's actionable unknown-protocol error: it must
        enumerate the backends and point at the object-engine flag."""
        with pytest.raises(ValueError, match=r"--backend object"):
            build_columns("pastry", 100, seed=SEED)
        with pytest.raises(ValueError, match="columnar protocols"):
            compiler_for("pastry")


class TestKernelFromColumns:
    @pytest.mark.parametrize("protocol", ["cycloid", "chord"])
    def test_array_mode_matches_object_compiled_kernel(self, protocol):
        """from_columns vs compile(network): same hops, timeouts and
        delivery nodes once universes are aligned by identifier (the
        object kernel orders nodes by id space, bulk columns by
        sample)."""
        if protocol == "cycloid":
            cols = build_cycloid_columns(100, 6, seed=3)
            network = CycloidNetwork.with_random_ids(100, 6, seed=3)
            bulk_ids_ = cols.lin
        else:
            cols = build_chord_columns(100, 10, seed=3)
            network = ChordNetwork.with_random_ids(100, 10, seed=3)
            bulk_ids_ = cols.ids
        bulk_kernel = kernel_from_columns(cols)
        object_kernel = compiler_for(protocol)(network)
        if protocol == "cycloid":
            object_ids = object_kernel.lin
            run_bulk = bulk_kernel.run_linear
            run_object = object_kernel.run_linear
        else:
            object_ids = object_kernel.ids
            run_bulk = bulk_kernel.run_ids
            run_object = object_kernel.run_ids
        to_object = {int(v): i for i, v in enumerate(object_ids)}
        rng = np.random.default_rng(np.random.PCG64(17))
        sources = rng.integers(0, 100, size=64)
        keys = rng.integers(0, cols.space, size=64)
        aligned = np.array(
            [to_object[int(bulk_ids_[s])] for s in sources]
        )
        ours = run_bulk(sources, keys)
        theirs = run_object(aligned, keys)
        assert np.array_equal(ours["hops"], theirs["hops"])
        assert np.array_equal(ours["timeouts"], theirs["timeouts"])
        assert np.array_equal(ours["success"], theirs["success"])
        assert np.array_equal(
            bulk_ids_[ours["final"]], object_ids[theirs["final"]]
        )


def _bulk_fault_setup(protocol):
    """Bulk-built network + active fault injector, module-level so the
    sharded runner can pickle it."""
    kwargs = {"dimension": 6} if protocol == "cycloid" else {"bits": 9}
    network, _ = bulk_setup(protocol, 80, seed=SEED, **kwargs)
    injector = FaultInjector(FAULT_PLAN)
    injector.crash_nodes(network)
    network.route_repairs = 0
    return network, injector


class TestBulkNetworksUnderFaults:
    @pytest.mark.parametrize("protocol", ["cycloid", "chord"])
    def test_backend_parity_with_active_fault_plan(self, protocol):
        """Bulk-built networks under an active FaultPlan: both backends
        produce bit-identical merged results (the columnar path falls
        back per the kernel's fault rules — parity is the contract)."""
        results = [
            run_sharded_lookups(
                partial(_bulk_fault_setup, protocol),
                120,
                SEED,
                workers=1,
                shard_size=30,
                backend=backend,
            )
            for backend in ("object", "columnar")
        ]
        assert results[0].stats.digest() == results[1].stats.digest()
        assert results[0].stats.records == results[1].stats.records
        assert results[0].crashed == results[1].crashed
        assert results[0].stats.failures >= 0

    def test_bulk_setup_network_equals_object_network(self):
        network, injector = bulk_setup(
            "cycloid", 60, seed=5, dimension=6
        )
        assert injector is None
        golden = CycloidNetwork.with_random_ids(60, 6, seed=5)
        assert packed_digest(pack_network(network)) == packed_digest(
            pack_network(golden)
        )
