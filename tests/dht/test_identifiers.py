"""Unit and property tests for the identifier spaces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.identifiers import CycloidId, RingId, cycloid_space_size


def cycloid_ids(dimension: int):
    return st.builds(
        CycloidId,
        cyclic=st.integers(0, dimension - 1),
        cubical=st.integers(0, (1 << dimension) - 1),
        dimension=st.just(dimension),
    )


class TestCycloidSpaceSize:
    def test_paper_sizes(self):
        # Fig. 5's network sizes: n = d * 2^d.
        assert cycloid_space_size(3) == 24
        assert cycloid_space_size(8) == 2048

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            cycloid_space_size(0)


class TestCycloidIdValidation:
    def test_valid(self):
        node = CycloidId(4, 0b10110110, 8)
        assert node.cyclic == 4
        assert node.cubical == 0b10110110

    def test_cyclic_out_of_range(self):
        with pytest.raises(ValueError):
            CycloidId(8, 0, 8)

    def test_cubical_out_of_range(self):
        with pytest.raises(ValueError):
            CycloidId(0, 256, 8)

    def test_negative(self):
        with pytest.raises(ValueError):
            CycloidId(-1, 0, 8)


class TestLinearisation:
    def test_key_mapping_rule(self):
        # §3.1: cyclic = hash mod d, cubical = hash div d.
        node = CycloidId.from_linear(42, 4)
        assert node.cyclic == 42 % 4
        assert node.cubical == 42 // 4

    def test_rejects_out_of_space(self):
        with pytest.raises(ValueError):
            CycloidId.from_linear(64, 4)

    @given(st.integers(0, cycloid_space_size(6) - 1))
    def test_round_trip(self, value):
        assert CycloidId.from_linear(value, 6).linear == value

    @given(cycloid_ids(5))
    def test_inverse_round_trip(self, node):
        assert CycloidId.from_linear(node.linear, 5) == node


class TestCycloidOrdering:
    def test_cubical_dominates(self):
        assert CycloidId(3, 1, 4) < CycloidId(0, 2, 4)

    def test_cyclic_breaks_ties(self):
        assert CycloidId(1, 5, 4) < CycloidId(2, 5, 4)

    def test_cross_dimension_rejected(self):
        with pytest.raises(ValueError):
            _ = CycloidId(0, 0, 4) < CycloidId(0, 0, 5)

    @given(cycloid_ids(5), cycloid_ids(5), cycloid_ids(5))
    def test_total_order_transitive(self, a, b, c):
        if a < b and b < c:
            assert a < c


class TestCycloidDistance:
    def test_paper_closeness_example(self):
        # §3.1: (1,1101) is closer to (2,1101) than (2,1001).
        key = CycloidId(1, 0b1101, 4)
        assert key.closer_of(
            CycloidId(2, 0b1101, 4), CycloidId(2, 0b1001, 4)
        ) == CycloidId(2, 0b1101, 4)

    def test_self_distance_zero(self):
        node = CycloidId(2, 9, 4)
        assert node.distance_to(node) == (0, 0, 0, 0)

    def test_cubical_wraps(self):
        key = CycloidId(0, 0, 4)
        near_by_wrap = CycloidId(0, 15, 4)
        far = CycloidId(0, 8, 4)
        assert key.distance_to(near_by_wrap) < key.distance_to(far)

    def test_successor_preferred_on_tie(self):
        # Equidistant cubically and cyclically: clockwise side wins.
        key = CycloidId(0, 8, 4)
        clockwise = CycloidId(0, 9, 4)
        counter = CycloidId(0, 7, 4)
        assert key.distance_to(clockwise) < key.distance_to(counter)

    @given(cycloid_ids(5), cycloid_ids(5))
    def test_strict_total_order(self, key, other):
        # Distinct ids never compare equal under the distance metric —
        # every key has a unique owner.
        if key != other:
            d = key.distance_to(other)
            assert d > (0, 0, 0, 0)

    @given(cycloid_ids(5), cycloid_ids(5), cycloid_ids(5))
    def test_distance_distinguishes(self, key, a, b):
        if a != b:
            assert key.distance_to(a) != key.distance_to(b)


class TestRingId:
    def test_validation(self):
        with pytest.raises(ValueError):
            RingId(256, 8)
        with pytest.raises(ValueError):
            RingId(0, 0)

    def test_distance_is_clockwise(self):
        assert RingId(250, 8).distance_to(RingId(5, 8)) == 11
        assert RingId(5, 8).distance_to(RingId(250, 8)) == 245

    def test_between_half_open(self):
        assert RingId(5, 8).between(RingId(250, 8), RingId(5, 8))
        assert not RingId(250, 8).between(RingId(250, 8), RingId(5, 8))

    def test_full_circle_convention(self):
        assert RingId(77, 8).between(RingId(3, 8), RingId(3, 8))

    def test_incompatible_spaces(self):
        with pytest.raises(ValueError):
            RingId(1, 8).distance_to(RingId(1, 9))
