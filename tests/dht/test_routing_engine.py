"""Unit tests for the shared lookup engine and its trace plumbing."""

import io
import json
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can import CanNetwork
from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.dht.base import Network, Node
from repro.dht.routing import (
    JsonlTraceSink,
    LookupEngine,
    RecordingTracer,
    RoutingDecision,
    execute_lookup,
)
from repro.koorde import KoordeNetwork
from repro.pastry import PastryNetwork
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng
from repro.viceroy import ViceroyNetwork

# Small module-level networks, shared across hypothesis examples.
# Lookups only touch the query-load counters, never the topology.
NETWORKS = {
    "cycloid": CycloidNetwork.complete(3),
    "chord": ChordNetwork.with_random_ids(48, 8, seed=11),
    "koorde": KoordeNetwork.with_random_ids(48, 8, seed=11),
    "viceroy": ViceroyNetwork.with_random_ids(48, seed=11),
    "pastry": PastryNetwork.with_random_ids(48, seed=11),
    "can": CanNetwork.with_random_zones(24, seed=11),
}


# ----------------------------------------------------------------------
# RoutingDecision factories
# ----------------------------------------------------------------------


class _Stub:
    def __init__(self, name):
        self.name = name
        self.alive = True

    def __str__(self):
        return str(self.name)


def test_forward_is_non_terminal_hop():
    node = _Stub("n")
    decision = RoutingDecision.forward(node, "phase", timeouts=2)
    assert decision.node is node
    assert decision.phase == "phase"
    assert decision.timeouts == 2
    assert not decision.terminal
    assert not decision.failed


def test_deliver_is_terminal_hop():
    node = _Stub("n")
    decision = RoutingDecision.deliver(node, "phase")
    assert decision.node is node
    assert decision.terminal
    assert not decision.failed


def test_terminate_stops_without_hopping():
    decision = RoutingDecision.terminate(timeouts=3)
    assert decision.node is None
    assert decision.terminal
    assert not decision.failed
    assert decision.timeouts == 3


def test_dead_end_marks_failure():
    decision = RoutingDecision.dead_end()
    assert decision.node is None
    assert decision.terminal
    assert decision.failed


def test_advance_neither_hops_nor_stops():
    decision = RoutingDecision.advance(timeouts=1)
    assert decision.node is None
    assert not decision.terminal
    assert not decision.failed
    assert decision.timeouts == 1


# ----------------------------------------------------------------------
# engine basics
# ----------------------------------------------------------------------


def test_engine_rejects_dead_source():
    network = NETWORKS["chord"]
    source = network.live_nodes()[0]
    source.alive = False
    try:
        with pytest.raises(ValueError):
            execute_lookup(network, source, source.id)
    finally:
        source.alive = True


def test_records_carry_every_declared_phase():
    """Zero-hop phases still appear in ``phase_hops`` (pre-refactor shape)."""
    for network in NETWORKS.values():
        source = network.live_nodes()[0]
        record = network.lookup(source, "a-key")
        assert set(record.phase_hops) == set(network.ROUTING_PHASES)
        assert sum(record.phase_hops.values()) == record.hops


def test_lookup_many_matches_individual_lookups():
    for network in NETWORKS.values():
        pairs = list(lookup_workload(network, 25, make_rng(3)))
        batch = network.lookup_many(pairs)
        singles = [network.lookup(source, key) for source, key in pairs]
        assert [
            (r.hops, r.timeouts, r.success, r.phase_hops, r.path)
            for r in batch
        ] == [
            (r.hops, r.timeouts, r.success, r.phase_hops, r.path)
            for r in singles
        ]


def test_batch_lookup_ids_are_sequential():
    network = NETWORKS["cycloid"]
    tracer = RecordingTracer()
    pairs = list(lookup_workload(network, 10, make_rng(5)))
    network.lookup_many(pairs, observer=tracer)
    assert [lookup_id for lookup_id, _, _ in tracer.starts] == list(range(10))
    assert [lookup_id for lookup_id, _ in tracer.records] == list(range(10))


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------


def test_jsonl_sink_writes_one_valid_line_per_hop():
    network = NETWORKS["chord"]
    stream = io.StringIO()
    sink = JsonlTraceSink(stream)
    records = network.lookup_many(
        lookup_workload(network, 20, make_rng(9)), observer=sink
    )
    lines = stream.getvalue().splitlines()
    assert len(lines) == sum(r.hops for r in records)
    assert sink.events_written == len(lines)
    events = [json.loads(line) for line in lines]
    for event in events:
        assert set(event) == {"lookup", "hop", "node", "phase", "timeouts"}
        assert isinstance(event["node"], str)
        assert event["phase"] in network.ROUTING_PHASES
        assert event["hop"] >= 1
        assert event["timeouts"] >= 0
    # hop indices restart from 1 at each lookup and increase by 1
    by_lookup = Counter()
    for event in events:
        by_lookup[event["lookup"]] += 1
        assert event["hop"] == by_lookup[event["lookup"]]


# ----------------------------------------------------------------------
# trace/record consistency (property)
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    protocol=st.sampled_from(sorted(NETWORKS)),
    source_pick=st.integers(min_value=0, max_value=10_000),
    key=st.integers(min_value=0, max_value=10_000),
)
def test_trace_is_consistent_with_its_record(protocol, source_pick, key):
    network = NETWORKS[protocol]
    nodes = network.live_nodes()
    source = nodes[source_pick % len(nodes)]
    tracer = RecordingTracer()
    engine = LookupEngine(network, tracer)
    record = engine.run(source, network.key_id(f"key-{key}"))

    (lookup_id, record_back), = tracer.records
    assert record_back is record
    events = tracer.events_for(lookup_id)

    # one event per counted hop, indices 1..hops in order
    assert len(events) == record.hops
    assert [e.hop for e in events] == list(range(1, record.hops + 1))
    # the hopped-to nodes are exactly the path after the source
    assert [e.node for e in events] == record.path[1:]
    # phase labels tally with the record's non-zero phase_hops
    assert Counter(e.phase for e in events) == Counter(
        {p: n for p, n in record.phase_hops.items() if n}
    )
    # per-step timeouts never exceed the record total (terminal steps
    # may add timeouts without producing a hop event)
    assert sum(e.timeouts for e in events) <= record.timeouts


# ----------------------------------------------------------------------
# HOP_LIMIT exhaustion x finish_route
# ----------------------------------------------------------------------


class _WalkNode(Node):
    @property
    def node_id(self):
        return self.name

    @property
    def degree(self):
        return 1


class _ScriptedWalk(Network):
    """A walk that never terminates on its own (it circles ``ring``)
    unless ``step`` overrides it, plus an optional ``finish_route``
    delivery — the smallest overlay that can pin how HOP_LIMIT
    exhaustion composes with the final delivery hop."""

    protocol_name = "scripted-walk"
    HOP_LIMIT = 4
    ROUTING_PHASES = ("walk", "handoff")

    def __init__(self, step=None, finish=None):
        super().__init__()
        self.ring = [_WalkNode(f"n{i}") for i in range(3)]
        self.target = _WalkNode("target")
        self._step = step
        self._finish = finish

    def live_nodes(self):
        return [*self.ring, self.target]

    def join(self, name):
        raise NotImplementedError

    def leave(self, node):
        node.alive = False

    def stabilize(self):
        pass

    def key_id(self, key):
        return key

    def owner_of_id(self, key_id):
        return self.target

    def next_hop(self, current, key_id, state):
        if self._step is not None:
            return self._step(self, current)
        index = self.ring.index(current) if current in self.ring else -1
        return RoutingDecision.forward(
            self.ring[(index + 1) % len(self.ring)], "walk"
        )

    def finish_route(self, current, key_id, state):
        return self._finish(self, current) if self._finish else None


def _deliver_target(net, current):
    return RoutingDecision.deliver(net.target, "handoff")


def test_exhausted_walk_still_takes_the_delivery_hop():
    """HOP_LIMIT bounds only the walk: the finish_route delivery runs
    afterwards, so the record may carry HOP_LIMIT + 1 hops."""
    network = _ScriptedWalk(finish=_deliver_target)
    tracer = RecordingTracer()
    engine = LookupEngine(network, tracer)
    record = engine.run(network.ring[0], "key")
    assert record.hops == network.HOP_LIMIT + 1
    assert record.success  # the handoff landed on the owner
    assert record.phase_hops == {"walk": network.HOP_LIMIT, "handoff": 1}
    assert record.path[-1] == "target"
    assert [e.hop for e in tracer.events] == list(
        range(1, network.HOP_LIMIT + 2)
    )


def test_exhausted_walk_without_finish_stops_at_the_limit():
    network = _ScriptedWalk()
    record = execute_lookup(network, network.ring[0], "key")
    assert record.hops == network.HOP_LIMIT
    assert not record.success  # still circling the ring, never delivered
    assert record.phase_hops == {"walk": network.HOP_LIMIT, "handoff": 0}
    assert len(record.path) == network.HOP_LIMIT + 1


def test_failed_terminal_keeps_failure_despite_delivery_hop():
    """A dead_end decision marks the lookup failed; a finish_route
    delivery that then lands on the true owner must not flip it back
    to success (the walk itself gave up)."""
    network = _ScriptedWalk(
        step=lambda net, current: RoutingDecision.dead_end(timeouts=2),
        finish=_deliver_target,
    )
    record = execute_lookup(network, network.ring[0], "key")
    assert not record.success
    assert record.hops == 1  # only the delivery hop was taken
    assert record.timeouts == 2
    assert record.path == ["n0", "target"]


def test_clean_terminal_accepts_the_delivery_hop():
    """Same shape with a non-failed terminate(): the delivery hop makes
    the lookup succeed — pinning that the previous test's failure comes
    from the dead_end flag, not from the hop accounting."""
    network = _ScriptedWalk(
        step=lambda net, current: RoutingDecision.terminate(),
        finish=_deliver_target,
    )
    record = execute_lookup(network, network.ring[0], "key")
    assert record.success
    assert record.hops == 1
    assert record.path == ["n0", "target"]
