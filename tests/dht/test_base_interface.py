"""Cross-protocol contract tests for the Network/Node interface.

Every overlay must satisfy the same behavioural contract; these tests
run once per protocol via the ``any_network`` fixture.
"""

import pytest

from repro.util.rng import make_rng, sample_pairs


class TestInterfaceContract:
    def test_live_nodes_non_empty(self, any_network):
        assert any_network.size == len(any_network.live_nodes()) == 100

    def test_invariants_hold_after_build(self, any_network):
        any_network.check_invariants()

    def test_owner_is_live(self, any_network):
        owner = any_network.owner_of_key("some-key")
        assert owner.alive

    def test_owner_is_deterministic(self, any_network):
        assert any_network.owner_of_key("k") is any_network.owner_of_key("k")

    def test_lookup_reaches_owner(self, any_network):
        rng = make_rng(0)
        nodes = any_network.live_nodes()
        for index in range(200):
            source = nodes[rng.randrange(len(nodes))]
            key = f"contract-key-{index}"
            record = any_network.lookup(source, key)
            assert record.success, (
                f"{any_network.protocol_name} lookup for {key} ended at "
                f"{record.owner}, expected "
                f"{any_network.owner_of_key(key).name}"
            )

    def test_lookup_from_owner_is_free(self, any_network):
        key = "self-lookup"
        owner = any_network.owner_of_key(key)
        record = any_network.lookup(owner, key)
        assert record.success
        assert record.hops == 0

    def test_phase_hops_sum_to_hops(self, any_network):
        rng = make_rng(1)
        for source, target in sample_pairs(any_network.live_nodes(), 50, rng):
            record = any_network.lookup(source, f"k-{target.name}")
            assert sum(record.phase_hops.values()) == record.hops

    def test_no_timeouts_in_stable_network(self, any_network):
        rng = make_rng(2)
        for source, _ in sample_pairs(any_network.live_nodes(), 100, rng):
            record = any_network.lookup(source, "stable-key")
            assert record.timeouts == 0

    def test_dead_source_rejected(self, any_network):
        node = any_network.live_nodes()[0]
        any_network.leave(node)
        with pytest.raises(ValueError):
            any_network.lookup(node, "key")

    def test_leave_twice_rejected(self, any_network):
        node = any_network.live_nodes()[0]
        any_network.leave(node)
        with pytest.raises(ValueError):
            any_network.leave(node)

    def test_leave_shrinks_population(self, any_network):
        before = any_network.size
        any_network.leave(any_network.live_nodes()[0])
        assert any_network.size == before - 1

    def test_join_grows_population(self, any_network):
        before = any_network.size
        node = any_network.join("joiner-0")
        assert any_network.size == before + 1
        assert node.alive
        assert node in any_network.live_nodes()

    def test_joined_node_can_look_up(self, any_network):
        node = any_network.join("joiner-1")
        record = any_network.lookup(node, "after-join-key")
        assert record.success

    def test_joined_node_is_reachable(self, any_network):
        """Keys the joiner now owns must be routable from elsewhere."""
        node = any_network.join("joiner-2")
        any_network.stabilize()
        source = next(n for n in any_network.live_nodes() if n is not node)
        for index in range(300):
            key = f"reach-{index}"
            if any_network.owner_of_key(key) is node:
                record = any_network.lookup(source, key)
                assert record.success
                break

    def test_stabilize_restores_invariants(self, any_network):
        rng = make_rng(3)
        nodes = list(any_network.live_nodes())
        for node in rng.sample(nodes, 30):
            any_network.leave(node)
        for index in range(10):
            any_network.join(f"churned-{index}")
        any_network.stabilize()
        any_network.check_invariants()

    def test_lookups_resolve_after_churn_and_stabilize(self, any_network):
        rng = make_rng(4)
        for round_index in range(3):
            nodes = list(any_network.live_nodes())
            for node in rng.sample(nodes, 10):
                any_network.leave(node)
            for index in range(10):
                any_network.join(f"round{round_index}-{index}")
            any_network.stabilize()
        rng2 = make_rng(5)
        nodes = any_network.live_nodes()
        for index in range(100):
            source = nodes[rng2.randrange(len(nodes))]
            assert any_network.lookup(source, f"post-churn-{index}").success


class TestQueryLoadAccounting:
    def test_counts_accumulate(self, any_network):
        any_network.reset_query_counts()
        rng = make_rng(6)
        total_hops = 0
        for source, _ in sample_pairs(any_network.live_nodes(), 50, rng):
            total_hops += any_network.lookup(source, "load-key").hops
        assert sum(any_network.query_counts()) == total_hops

    def test_reset_clears(self, any_network):
        source = any_network.live_nodes()[0]
        any_network.lookup(source, "x")
        any_network.reset_query_counts()
        assert sum(any_network.query_counts()) == 0

    def test_counts_cover_all_live_nodes(self, any_network):
        assert len(any_network.query_counts()) == any_network.size


class TestKeyAssignment:
    def test_every_key_assigned_once(self, any_network):
        keys = [f"assign-{i}" for i in range(500)]
        counts = any_network.assign_keys(keys)
        assert sum(counts.values()) == 500

    def test_zero_key_nodes_reported(self, any_network):
        counts = any_network.assign_keys(["one-key"])
        assert len(counts) == any_network.size
        assert sum(1 for c in counts.values() if c == 0) == any_network.size - 1

    def test_assignment_matches_owner(self, any_network):
        keys = [f"owner-{i}" for i in range(50)]
        counts = any_network.assign_keys(keys)
        for key in keys:
            assert counts[any_network.owner_of_key(key)] >= 1
