"""Tests for the opt-in path-caching layer (§S27).

Load-bearing claims: ``capacity=0`` is a bit-exact pass-through of the
plain engine; hits are bounded-LRU and liveness-checked; a Zipf hotspot
workload gets measurably cheaper through the cache.
"""

from __future__ import annotations

import pytest

from repro.dht.cache import CacheStats, PathCacheLayer
from repro.experiments.registry import build_sized_network
from repro.sim.workload import ZipfSampler, lookup_workload
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def network():
    return build_sized_network("cycloid", 160, seed=6)


def zipf_pairs(network, count, seed, universe=32, s=1.2):
    nodes = network.live_nodes()
    sampler = ZipfSampler.from_universe(universe, make_rng(seed), s=s)
    rng = make_rng(seed + 1)
    return [
        (nodes[rng.randrange(len(nodes))], sampler.draw(rng))
        for _ in range(count)
    ]


class TestValidation:
    def test_negative_capacity_rejected(self, network):
        with pytest.raises(ValueError):
            PathCacheLayer(network, -1)


class TestPassThrough:
    def test_capacity_zero_is_bit_exact(self, network):
        pairs = zipf_pairs(network, 200, 9)
        plain = network.lookup_many(pairs)
        layer = PathCacheLayer(network, 0)
        cached = layer.lookup_many(pairs)
        assert [
            (r.hops, r.success, r.path, r.phase_hops) for r in plain
        ] == [(r.hops, r.success, r.path, r.phase_hops) for r in cached]
        assert layer.stats.hits == 0
        assert layer.stats.misses == 200
        assert layer.entries() == 0


class TestHits:
    def test_repeat_lookup_hits_in_one_hop(self, network):
        layer = PathCacheLayer(network, 8)
        source = network.live_nodes()[0]
        first = layer.lookup(source, "hot-key")
        assert first.success
        second = layer.lookup(source, "hot-key")
        assert second.success
        assert second.hops <= 1
        assert second.phase_hops in ({}, {"cached": 1})
        assert len(second.path) == second.hops + 1
        assert layer.stats.hits == 1

    def test_hit_on_owner_is_zero_hops(self, network):
        layer = PathCacheLayer(network, 8)
        owner = network.owner_of_id(network.key_id("hot-key"))
        layer.lookup(owner, "hot-key")  # populates the owner's cache
        record = layer.lookup(owner, "hot-key")
        assert record.hops == 0
        assert record.success
        assert record.path == [owner.name]

    def test_path_nodes_share_the_entry(self, network):
        """Every node along a successful path learns the owner — the
        defining property of *path* caching."""
        layer = PathCacheLayer(network, 8)
        source = network.live_nodes()[3]
        record = layer.lookup(source, "hot-key")
        assert record.success
        key_id = network.key_id("hot-key")
        for name in record.path:
            assert key_id in layer.cache_of(name)

    def test_dead_entry_expires_and_reroutes(self):
        network = build_sized_network("cycloid", 160, seed=8)
        layer = PathCacheLayer(network, 8)
        source = network.live_nodes()[0]
        first = layer.lookup(source, "hot-key")
        assert first.success
        owner = network.owner_of_id(network.key_id("hot-key"))
        network.leave(owner)
        record = layer.lookup(source, "hot-key")
        assert layer.stats.expired == 1
        # Fell back to routing; a fresh (live) answer was produced.
        assert str(owner.name) not in [str(n) for n in record.path]


class TestLru:
    def test_capacity_bound_and_eviction_order(self, network):
        layer = PathCacheLayer(network, 2)
        source = network.live_nodes()[5]
        for key in ("k1", "k2", "k3"):
            layer.lookup(source, key)
        cache = layer.cache_of(source)
        assert len(cache) <= 2
        assert layer.stats.evictions >= 1
        # k1 was the least recently used entry of the source's cache.
        assert network.key_id("k1") not in cache

    def test_hit_refreshes_recency(self, network):
        layer = PathCacheLayer(network, 2)
        source = network.live_nodes()[7]
        layer.lookup(source, "k1")
        layer.lookup(source, "k2")
        layer.lookup(source, "k1")  # hit: k1 becomes most recent
        layer.lookup(source, "k3")  # evicts k2, not k1
        cache = layer.cache_of(source)
        assert network.key_id("k1") in cache
        assert network.key_id("k2") not in cache


class TestHotspot:
    def test_zipf_workload_gets_cheaper(self, network):
        pairs = zipf_pairs(network, 400, 21)
        plain_hops = sum(r.hops for r in network.lookup_many(pairs))
        layer = PathCacheLayer(network, 32)
        cached = layer.lookup_many(pairs)
        assert all(r.success for r in cached)
        assert sum(r.hops for r in cached) < plain_hops
        assert layer.stats.hit_rate > 0.05
        assert (
            layer.stats.hits + layer.stats.misses == layer.stats.lookups
        )

    def test_stats_accounting(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.lookups, stats.hits = 10, 4
        assert stats.hit_rate == pytest.approx(0.4)
        assert set(stats.as_dict()) == {
            "lookups", "hits", "misses", "evictions", "expired", "hit_rate",
        }

    def test_deterministic_across_instances(self, network):
        pairs = zipf_pairs(network, 200, 33)
        a = PathCacheLayer(network, 16).lookup_many(pairs)
        b = PathCacheLayer(network, 16).lookup_many(pairs)
        assert [(r.hops, r.success, r.path) for r in a] == [
            (r.hops, r.success, r.path) for r in b
        ]
