"""Tests for the key-value storage layer with migration and replicas."""

import pytest

from repro.core import CycloidNetwork
from repro.chord import ChordNetwork
from repro.dht.storage import KeyValueStore, StorageShard
from repro.util.rng import make_rng


@pytest.fixture
def network():
    return CycloidNetwork.with_random_ids(60, 5, seed=3)


@pytest.fixture
def store(network):
    return KeyValueStore(network)


class TestPutGet:
    def test_round_trip(self, network, store):
        node = network.live_nodes()[0]
        store.put(node, "song", b"bytes")
        result = store.get(network.live_nodes()[5], "song")
        assert result.found
        assert result.value == b"bytes"

    def test_get_missing(self, network, store):
        result = store.get(network.live_nodes()[0], "nothing")
        assert not result.found
        assert result.value is None

    def test_put_stores_on_owner(self, network, store):
        node = network.live_nodes()[0]
        store.put(node, "k1", 1)
        owner = network.owner_of_key("k1")
        assert "k1" in store.keys_on(owner)

    def test_hops_counted(self, network, store):
        node = network.live_nodes()[0]
        result = store.put(node, "k2", 2)
        assert result.hops == result.record.hops >= 0

    def test_overwrite(self, network, store):
        node = network.live_nodes()[0]
        store.put(node, "k", "old")
        store.put(node, "k", "new")
        assert store.get(node, "k").value == "new"

    def test_total_pairs_counts_distinct_keys(self, network):
        store = KeyValueStore(network, replicas=3)
        node = network.live_nodes()[0]
        for i in range(10):
            store.put(node, f"k{i}", i)
        assert store.total_pairs() == 10

    def test_invalid_replicas(self, network):
        with pytest.raises(ValueError):
            KeyValueStore(network, replicas=0)


class TestMigration:
    def test_join_pulls_owned_keys(self, network, store):
        node = network.live_nodes()[0]
        keys = [f"key-{i}" for i in range(300)]
        for key in keys:
            store.put(node, key, key.upper())
        newcomer = network.join("fresh")
        moved = store.on_join(newcomer)
        owned_now = [k for k in keys if network.owner_of_key(k) is newcomer]
        assert moved == len(owned_now)
        for key in owned_now:
            assert key in store.keys_on(newcomer)
        # Every key still retrievable.
        for key in keys:
            assert store.get(node, key).found

    def test_leave_pushes_keys(self, network, store):
        node = network.live_nodes()[0]
        keys = [f"leave-{i}" for i in range(300)]
        for key in keys:
            store.put(node, key, 1)
        victim = network.live_nodes()[7]
        held = store.keys_on(victim)
        network.leave(victim)
        store.on_leave(victim)
        source = network.live_nodes()[0]
        for key in held:
            assert store.get(source, key).found
        # Nothing lost overall.
        assert store.total_pairs() == len(keys)

    def test_silent_failure_loses_unreplicated_keys(self, network, store):
        node = network.live_nodes()[0]
        for i in range(300):
            store.put(node, f"s-{i}", i)
        victim = network.live_nodes()[9]
        held = len(store.keys_on(victim))
        network.fail(victim)
        lost = store.on_silent_failure(victim)
        assert lost == held

    def test_replicas_survive_silent_failure(self):
        net = CycloidNetwork.with_random_ids(60, 5, seed=4)
        store = KeyValueStore(net, replicas=3)
        node = net.live_nodes()[0]
        keys = [f"r-{i}" for i in range(200)]
        for key in keys:
            store.put(node, key, key)
        victim = net.live_nodes()[11]
        net.fail(victim)
        lost = store.on_silent_failure(victim)
        assert lost == 0
        net.stabilize()
        source = net.live_nodes()[0]
        assert all(store.get(source, key).found for key in keys)

    def test_rereplicate_restores_invariant(self):
        net = CycloidNetwork.with_random_ids(60, 5, seed=5)
        store = KeyValueStore(net, replicas=2)
        node = net.live_nodes()[0]
        for i in range(100):
            store.put(node, f"rr-{i}", i)
        rng = make_rng(6)
        for victim in rng.sample(list(net.live_nodes()), 10):
            net.leave(victim)
            store.on_leave(victim)
        net.stabilize()
        copies = store.rereplicate()
        assert copies >= 0
        # After re-replication, running it again is a no-op.
        assert store.rereplicate() == 0

    def test_losing_every_holder_loses_the_pair(self):
        """The documented loss path: replicas=2 survives one silent
        failure, but ungraceful failures that kill BOTH the owner and
        the replica holder before rereplicate() lose the pair."""
        net = CycloidNetwork.with_random_ids(60, 5, seed=8)
        store = KeyValueStore(net, replicas=2)
        source = net.live_nodes()[0]
        store.put(source, "doomed", "value")
        holders = [
            node
            for node in net.live_nodes()
            if "doomed" in store.keys_on(node)
        ]
        assert len(holders) == 2  # owner + one neighbour replica
        # First crash: the surviving copy still answers.
        net.fail(holders[0])
        assert store.on_silent_failure(holders[0]) == 0
        # Second crash takes the last copy before any rereplicate().
        net.fail(holders[1])
        assert store.on_silent_failure(holders[1]) == 1
        net.stabilize()
        reader = next(
            node for node in net.live_nodes() if node not in holders
        )
        assert store.get(reader, "doomed").found is False

    def test_works_on_ring_dhts_too(self):
        net = ChordNetwork.with_random_ids(50, 8, seed=7)
        store = KeyValueStore(net, replicas=2)
        node = net.live_nodes()[0]
        store.put(node, "ring-key", 42)
        assert store.get(net.live_nodes()[3], "ring-key").value == 42
        newcomer = net.join("late")
        store.on_join(newcomer)
        assert store.get(newcomer, "ring-key").value == 42


class TestStorageShard:
    """Per-server shelves backing the live cluster's PUT/GET frames."""

    def test_put_get_round_trip(self):
        shard = StorageShard()
        shard.put("n1", "k", {"v": 1})
        assert shard.get("n1", "k") == (True, {"v": 1})

    def test_missing_key_and_missing_node(self):
        shard = StorageShard()
        shard.put("n1", "k", "v")
        assert shard.get("n1", "other") == (False, None)
        assert shard.get("n2", "k") == (False, None)

    def test_shelves_are_per_node(self):
        shard = StorageShard()
        shard.put("n1", "k", "one")
        shard.put("n2", "k", "two")
        assert shard.get("n1", "k") == (True, "one")
        assert shard.get("n2", "k") == (True, "two")
        assert shard.total_pairs() == 2

    def test_overwrite_keeps_one_pair(self):
        shard = StorageShard()
        shard.put("n1", "k", "old")
        shard.put("n1", "k", "new")
        assert shard.get("n1", "k") == (True, "new")
        assert shard.keys_on("n1") == ["k"]

    def test_drop_node_reports_pair_count(self):
        shard = StorageShard()
        for i in range(3):
            shard.put("n1", f"k{i}", i)
        shard.put("n2", "other", 9)
        assert shard.drop_node("n1") == 3
        assert shard.drop_node("n1") == 0
        assert shard.total_pairs() == 1

    def test_drop_pair_accounting(self):
        shard = StorageShard()
        shard.put("n1", "a", 1)
        shard.put("n1", "b", 2)
        assert shard.drop_pair("n1", "a") is True
        # Gone means gone: a second drop reports absence.
        assert shard.drop_pair("n1", "a") is False
        assert shard.drop_pair("n1", "missing") is False
        assert shard.drop_pair("ghost", "a") is False
        assert shard.get("n1", "b") == (True, 2)
        assert shard.total_pairs() == 1
        # Dropping the last pair removes the shelf entirely.
        assert shard.drop_pair("n1", "b") is True
        assert shard.keys_on("n1") == []
        assert shard.total_pairs() == 0


class TestTripleReplicaLossPath:
    """The replicas=3 loss ledger the churn harness (S24) relies on:
    a pair dies only when *all three* holders fail before any
    rereplication; any single survivor recovers the full set."""

    def make(self, seed=13):
        net = CycloidNetwork.with_random_ids(60, 5, seed=seed)
        store = KeyValueStore(net, replicas=3)
        source = net.live_nodes()[0]
        store.put(source, "triple", "payload")
        holders = [
            node
            for node in net.live_nodes()
            if "triple" in store.keys_on(node)
        ]
        assert len(holders) == 3  # owner + two neighbour replicas
        return net, store, holders

    def test_all_three_holders_crashing_loses_the_pair(self):
        net, store, holders = self.make()
        for index, victim in enumerate(holders):
            net.fail(victim)
            lost = store.on_silent_failure(victim)
            assert lost == (1 if index == 2 else 0)
        net.stabilize()
        reader = next(
            node for node in net.live_nodes() if node not in holders
        )
        assert store.get(reader, "triple").found is False

    @pytest.mark.parametrize("survivor_index", [0, 1, 2])
    def test_any_single_survivor_recovers_the_pair(self, survivor_index):
        net, store, holders = self.make()
        for index, victim in enumerate(holders):
            if index == survivor_index:
                continue
            net.fail(victim)
            assert store.on_silent_failure(victim) == 0
        net.stabilize()
        # Rereplication off the survivor restores three live copies.
        assert store.rereplicate() > 0
        reader = net.live_nodes()[0]
        result = store.get(reader, "triple")
        assert result.found and result.value == "payload"
        live_holders = [
            node
            for node in net.live_nodes()
            if "triple" in store.keys_on(node)
        ]
        assert len(live_holders) == 3
