"""Golden parity under the latency model plumbing (§S25).

Two regression claims:

* **Default stays bit-exact** — routing with ``latency=None`` (the
  default everywhere) must reproduce every pre-latency golden digest
  from :mod:`tests.dht.test_routing_parity`, on both the object engine
  and the columnar kernel, and no record may carry a modeled
  ``latency_ms``.  The plumbing being *present* must cost nothing.
* **Backends agree under a model** — with a model attached, the
  columnar kernel's post-hoc path annotation reproduces the engine's
  left-to-right accumulation bit-for-bit: identical
  :meth:`LookupStats.digest` (which covers ``latency_ms``), and each
  record's total equals the sum of its path's link delays.
"""

from __future__ import annotations

import math

import pytest

from repro.dht.kernel import columnar_protocols
from repro.dht.metrics import LookupStats
from repro.sim.latency import LatencyModel
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng

from tests.dht.test_routing_parity import (
    CONFIGS,
    GOLDEN,
    LOOKUPS,
    WORKLOAD_SEED,
    routing_digest,
)

MODEL = LatencyModel(seed=97)

#: Golden configs whose protocol has a columnar compiler (complete
#: Cycloid builds at either leaf radius, and Chord).
_COLUMNAR_CONFIGS = (
    "cycloid-d5",
    "cycloid11-d5",
    "chord-512",
    "cycloid-d5-departures",
    "chord-512-departures",
)


def _records(network, backend="object", latency=None):
    rng = make_rng(WORKLOAD_SEED)
    pairs = lookup_workload(network, LOOKUPS, rng)
    return network.lookup_many(pairs, backend=backend, latency=latency)


class TestLatencyNoneIsBitExact:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_object_engine_goldens_unchanged(self, name):
        network = CONFIGS[name]()
        records = _records(network, latency=None)
        assert all(r.latency_ms is None for r in records)
        # The digest helper routes a fresh workload through the plain
        # lookup path; both paths must still match the committed golden.
        assert routing_digest(CONFIGS[name]()) == GOLDEN[name]

    @pytest.mark.parametrize("name", _COLUMNAR_CONFIGS)
    def test_columnar_goldens_unchanged(self, name):
        protocols = columnar_protocols()
        assert "cycloid" in protocols and "chord" in protocols
        network = CONFIGS[name]()
        records = _records(network, backend="columnar", latency=None)
        assert all(r.latency_ms is None for r in records)
        stats = LookupStats()
        stats.extend(records)
        baseline = LookupStats()
        baseline.extend(_records(CONFIGS[name]()))
        assert stats.digest() == baseline.digest()

    def test_digest_ignores_absent_latency(self):
        """A latency-free record's digest tuple has no latency slot, so
        committed baselines captured before §S25 still match."""
        network = CONFIGS["cycloid-d5"]()
        plain = LookupStats()
        plain.extend(_records(network))
        modeled = LookupStats()
        modeled.extend(_records(CONFIGS["cycloid-d5"](), latency=MODEL))
        assert plain.digest() != modeled.digest()


class TestBackendsAgreeUnderModel:
    @pytest.mark.parametrize("name", _COLUMNAR_CONFIGS)
    def test_columnar_matches_engine_bit_for_bit(self, name):
        engine = LookupStats()
        engine.extend(_records(CONFIGS[name](), latency=MODEL))
        kernel = LookupStats()
        kernel.extend(
            _records(CONFIGS[name](), backend="columnar", latency=MODEL)
        )
        assert engine.digest() == kernel.digest()
        assert engine.latencies_ms() == kernel.latencies_ms()

    @pytest.mark.parametrize("name", ["cycloid-d5", "chord-512"])
    def test_total_is_sum_of_path_links(self, name):
        for record in _records(CONFIGS[name](), latency=MODEL):
            expected = math.fsum(
                MODEL.delay_ms(record.path[i], record.path[i + 1])
                for i in range(len(record.path) - 1)
            )
            assert record.latency_ms == pytest.approx(expected, abs=1e-9)
            assert record.latency_ms >= 0.0
