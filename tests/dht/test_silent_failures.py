"""Tests for the silent (ungraceful) failure extension.

The paper assumes graceful departures (§3.4) and lists silent-failure
handling as future work (§5).  These tests pin the extension's
semantics: pointers everywhere go stale, lookups degrade but never
crash or loop forever, and one stabilisation round fully repairs every
protocol.
"""

import pytest

from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.koorde import KoordeNetwork
from repro.util.rng import make_rng, sample_pairs
from repro.viceroy import ViceroyNetwork


class TestFailSemantics:
    def test_fail_twice_rejected(self, any_network):
        node = any_network.live_nodes()[0]
        any_network.fail(node)
        with pytest.raises(ValueError):
            any_network.fail(node)

    def test_fail_shrinks_population(self, any_network):
        before = any_network.size
        any_network.fail(any_network.live_nodes()[0])
        assert any_network.size == before - 1

    def test_ownership_moves_immediately(self, any_network):
        key = "silently-owned"
        owner = any_network.owner_of_key(key)
        any_network.fail(owner)
        assert any_network.owner_of_key(key) is not owner


class TestStaleness:
    def test_cycloid_leaf_sets_go_stale(self):
        network = CycloidNetwork.complete(5)
        rng = make_rng(1)
        for node in rng.sample(list(network.live_nodes()), 40):
            network.fail(node)
        stale_leaves = sum(
            1
            for node in network.live_nodes()
            for leaf in node.leaf_entries()
            if not leaf.alive
        )
        # Unlike graceful departure, nobody was notified.
        assert stale_leaves > 0

    def test_chord_ring_not_spliced(self):
        network = ChordNetwork.with_ids([10, 100, 200], 8)
        network.fail(network.ring.get(100))
        assert network.ring.get(10).successor.id == 100  # stale
        assert not network.ring.get(10).successor.alive


class TestRoutingUnderSilentFailures:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CycloidNetwork.complete(6),
            lambda: ChordNetwork.complete(9),
            lambda: KoordeNetwork.complete(9),
            lambda: ViceroyNetwork.with_random_ids(384, seed=1),
        ],
        ids=["cycloid", "chord", "koorde", "viceroy"],
    )
    def test_no_crash_and_bounded_paths(self, factory):
        network = factory()
        rng = make_rng(2)
        for node in list(network.live_nodes()):
            if rng.random() < 0.25 and network.size > 2:
                network.fail(node)
        for source, target in sample_pairs(network.live_nodes(), 200, rng):
            record = network.route(source, target.id)
            assert record.hops < network.HOP_LIMIT

    def test_chord_survives_on_successor_list(self):
        network = ChordNetwork.complete(9)
        rng = make_rng(3)
        for node in list(network.live_nodes()):
            if rng.random() < 0.2 and network.size > 2:
                network.fail(node)
        failures = sum(
            not network.route(s, t.id).success
            for s, t in sample_pairs(network.live_nodes(), 400, rng)
        )
        # r = log n consecutive silent failures are needed to break it.
        assert failures == 0

    def test_cycloid_degrades_but_some_resolve(self):
        network = CycloidNetwork.complete(6)
        rng = make_rng(4)
        for node in list(network.live_nodes()):
            if rng.random() < 0.2 and network.size > 2:
                network.fail(node)
        records = [
            network.route(s, t.id)
            for s, t in sample_pairs(network.live_nodes(), 400, rng)
        ]
        successes = sum(r.success for r in records)
        # Constant-degree state cannot mask silent failures (the paper's
        # motivation for graceful departure), but most lookups still
        # resolve through timeouts and leaf fallbacks.
        assert successes > 200
        assert any(r.timeouts > 0 for r in records)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CycloidNetwork.complete(6),
            lambda: ChordNetwork.complete(9),
            lambda: KoordeNetwork.complete(9),
        ],
        ids=["cycloid", "chord", "koorde"],
    )
    def test_stabilization_fully_repairs(self, factory):
        network = factory()
        rng = make_rng(5)
        for node in list(network.live_nodes()):
            if rng.random() < 0.3 and network.size > 2:
                network.fail(node)
        network.stabilize()
        network.check_invariants()
        for source, target in sample_pairs(network.live_nodes(), 300, rng):
            record = network.route(source, target.id)
            assert record.success
            assert record.timeouts == 0
