"""Backend parity: ``backend="columnar"`` bit-agrees with the object engine.

The contract of DESIGN §S23 is that the execution backend is invisible
in the results: the columnar kernel (:mod:`repro.dht.kernel`) must
produce byte-identical :class:`LookupRecord` streams, digests and
query-count tallies for every overlay configuration — natively compiled
for Cycloid and Chord, via the documented object-engine fallback
everywhere else (other protocols, trace observers, active fault
plans).  These tests pin that equivalence across the full registry,
worker counts, fault plans and a hypothesis sweep of seeds, batch
sizes and worker counts, plus the actionable-error contract of the
``backend`` selector.
"""

from __future__ import annotations

from functools import partial

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser
from repro.dht.kernel import (
    BACKENDS,
    DEFAULT_BACKEND,
    check_backend,
    columnar_protocols,
    run_lookup_batch,
    supports_columnar,
)
from repro.dht.routing import RecordingTracer
from repro.experiments.bench import compare_to_baseline, run_kernel_bench
from repro.experiments.common import run_lookups
from repro.experiments.registry import ALL_PROTOCOLS, build_complete_network
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.parallel import plain_setup, run_sharded_lookups
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng

#: Mirrors tests/sim/test_parallel_parity.py — four non-trivial shards.
LOOKUPS = 120
SHARD_SIZE = 30
SEED = 42
DIMENSION = 4

FAULT_PLAN = FaultPlan(seed=SEED + 30, crash_probability=0.3, message_loss=0.05)


def _setup(protocol: str, dimension: int = DIMENSION):
    return partial(
        plain_setup, build_complete_network, protocol, dimension, seed=SEED
    )


def _fault_setup(protocol: str):
    network = build_complete_network(protocol, DIMENSION, seed=SEED)
    injector = FaultInjector(FAULT_PLAN)
    injector.crash_nodes(network)
    network.route_repairs = 0
    return network, injector


def _departed(network):
    """Gracefully depart ~20% of nodes (seeded), no re-stabilisation —
    the resulting stale pointers exercise the kernel's dead-node
    columns, timeout accounting and by-id visited tracking."""
    rng = make_rng(SEED + 13)
    victims = [n for n in network.live_nodes() if rng.random() < 0.2]
    for node in victims:
        if network.size <= 1:
            break
        network.leave(node)
    return network


def _assert_same_merged(obj, col):
    assert obj.stats.digest() == col.stats.digest()
    assert obj.stats.records == col.stats.records
    assert obj.query_counts == col.query_counts
    assert obj.route_repairs == col.route_repairs
    assert obj.dropped_messages == col.dropped_messages
    assert obj.crashed == col.crashed
    assert obj.population == col.population


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_columnar_matches_object_sharded(protocol, workers):
    """Every overlay config, every worker count: identical digests."""
    obj = run_sharded_lookups(
        _setup(protocol),
        LOOKUPS,
        SEED + DIMENSION,
        workers=workers,
        shard_size=SHARD_SIZE,
        backend="object",
    )
    col = run_sharded_lookups(
        _setup(protocol),
        LOOKUPS,
        SEED + DIMENSION,
        workers=workers,
        shard_size=SHARD_SIZE,
        backend="columnar",
    )
    _assert_same_merged(obj, col)


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_columnar_matches_object_under_faults(protocol, workers):
    """An active FaultPlan routes through the object-engine fallback —
    crashes, loss streams and lazy repair must replay identically."""
    setup = partial(_fault_setup, protocol)
    obj = run_sharded_lookups(
        setup,
        LOOKUPS,
        SEED,
        workers=workers,
        shard_size=SHARD_SIZE,
        retry_budget=6,
        backend="object",
    )
    col = run_sharded_lookups(
        setup,
        LOOKUPS,
        SEED,
        workers=workers,
        shard_size=SHARD_SIZE,
        retry_budget=6,
        backend="columnar",
    )
    _assert_same_merged(obj, col)
    assert obj.crashed > 0  # the plan actually fired


def _lookup_many_records(build, backend, count=80):
    network = build()
    pairs = list(lookup_workload(network, count, make_rng(SEED + 2)))
    records = network.lookup_many(pairs, backend=backend)
    return records, dict(network._query_counts)


#: Direct (unsharded) record equality, including departed networks
#: whose stale pointers produce timeouts on the compiled protocols.
DIRECT_CONFIGS = {
    "cycloid": lambda: build_complete_network("cycloid", DIMENSION, seed=SEED),
    "cycloid-11": lambda: build_complete_network(
        "cycloid-11", DIMENSION, seed=SEED
    ),
    "chord": lambda: build_complete_network("chord", DIMENSION, seed=SEED),
    "cycloid-departures": lambda: _departed(
        build_complete_network("cycloid", DIMENSION, seed=SEED)
    ),
    "chord-departures": lambda: _departed(
        build_complete_network("chord", DIMENSION, seed=SEED)
    ),
}


@pytest.mark.parametrize("config", sorted(DIRECT_CONFIGS))
def test_lookup_many_records_identical(config):
    build = DIRECT_CONFIGS[config]
    obj_records, obj_counts = _lookup_many_records(build, "object")
    col_records, col_counts = _lookup_many_records(build, "columnar")
    assert obj_records == col_records
    assert obj_counts == col_counts


def test_departed_networks_produce_timeouts():
    """The departure configs actually exercise the timeout path."""
    records, _ = _lookup_many_records(
        DIRECT_CONFIGS["cycloid-departures"], "columnar"
    )
    assert sum(record.timeouts for record in records) > 0


@settings(max_examples=8, deadline=None)
@given(
    protocol=st.sampled_from(("cycloid", "chord")),
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=60),
    workers=st.sampled_from((1, 2, 4)),
)
def test_backend_parity_property(protocol, seed, count, workers):
    """Property: backend choice never shows up in the merged results,
    whatever the seed, batch size or worker count."""
    obj = run_sharded_lookups(
        _setup(protocol, 3),
        count,
        seed,
        workers=workers,
        shard_size=16,
        backend="object",
    )
    col = run_sharded_lookups(
        _setup(protocol, 3),
        count,
        seed,
        workers=workers,
        shard_size=16,
        backend="columnar",
    )
    _assert_same_merged(obj, col)


def test_observer_forces_object_fallback_bit_exact():
    """A trace observer needs per-hop callbacks, so the columnar
    backend hands the batch to the object engine — same records, same
    event stream."""
    results = []
    for backend in BACKENDS:
        network = build_complete_network("cycloid", DIMENSION, seed=SEED)
        pairs = list(lookup_workload(network, 30, make_rng(7)))
        tracer = RecordingTracer()
        records = network.lookup_many(pairs, observer=tracer, backend=backend)
        results.append((records, tracer))
    (obj_records, obj_tracer), (col_records, col_tracer) = results
    assert obj_records == col_records
    assert obj_tracer.starts == col_tracer.starts
    assert obj_tracer.events == col_tracer.events
    assert obj_tracer.records == col_tracer.records
    assert col_tracer.events  # the observer really ran


def test_columnar_protocol_registry():
    assert columnar_protocols() == ("chord", "cycloid")
    assert supports_columnar(
        build_complete_network("cycloid", 3, seed=SEED)
    )
    # The 11-entry variant shares protocol_name "cycloid" and compiles.
    assert supports_columnar(
        build_complete_network("cycloid-11", 3, seed=SEED)
    )
    assert not supports_columnar(
        build_complete_network("koorde", 3, seed=SEED)
    )


class TestBackendErrors:
    """The unknown-``backend`` error names the bad value and lists the
    valid choices, mirroring the distribution error."""

    def test_default_backend_is_object(self):
        assert DEFAULT_BACKEND == "object"
        assert BACKENDS == ("object", "columnar")
        check_backend("object")
        check_backend("columnar")

    def test_check_backend_message(self):
        with pytest.raises(ValueError) as excinfo:
            check_backend("bogus")
        message = str(excinfo.value)
        assert "bogus" in message
        assert "object" in message and "columnar" in message

    def test_lookup_many_rejects_unknown_backend(self):
        network = build_complete_network("cycloid", 3, seed=SEED)
        pairs = list(lookup_workload(network, 2, make_rng(1)))
        with pytest.raises(ValueError, match="unknown backend 'bogus'"):
            network.lookup_many(pairs, backend="bogus")

    def test_run_lookup_batch_rejects_unknown_backend(self):
        network = build_complete_network("cycloid", 3, seed=SEED)
        with pytest.raises(ValueError, match="expected one of"):
            run_lookup_batch(network, [], backend="bogus")

    def test_run_lookups_rejects_unknown_backend(self):
        network = build_complete_network("cycloid", 3, seed=SEED)
        with pytest.raises(ValueError, match="unknown backend"):
            run_lookups(network, 4, seed=1, backend="bogus")

    def test_run_sharded_lookups_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_sharded_lookups(
                _setup("cycloid", 3),
                8,
                SEED,
                workers=1,
                shard_size=4,
                backend="bogus",
            )

    def test_cli_rejects_unknown_backend(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig5", "--backend", "bogus"])
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "object" in err and "columnar" in err

    def test_cli_accepts_both_backends(self):
        parser = build_parser()
        for backend in BACKENDS:
            args = parser.parse_args(["fig5", "--backend", backend])
            assert args.backend == backend


class TestKernelBench:
    def test_kernel_bench_cells_digest_checked(self):
        (cell,) = run_kernel_bench(
            protocols=("cycloid",), dimension=3, lookups=30, seed=5, repeats=1
        )
        assert cell.protocol == "cycloid"
        assert cell.lookups == 30
        assert cell.digest_match
        assert cell.speedup > 0
        payload = cell.as_dict()
        for key in (
            "protocol",
            "lookups",
            "object_seconds",
            "columnar_seconds",
            "object_lookups_per_s",
            "columnar_lookups_per_s",
            "speedup",
            "digest",
            "digest_match",
        ):
            assert key in payload

    def test_compare_to_baseline_warns_on_regression(self):
        baseline = {
            "kernel": [
                {"protocol": "cycloid", "columnar_lookups_per_s": 1000.0}
            ]
        }
        slow = {
            "kernel": [
                {"protocol": "cycloid", "columnar_lookups_per_s": 700.0}
            ]
        }
        (line,) = compare_to_baseline(slow, baseline)
        assert line.startswith("warning:")
        assert "regression" in line

    def test_compare_to_baseline_accepts_small_drift(self):
        baseline = {
            "kernel": [
                {"protocol": "cycloid", "columnar_lookups_per_s": 1000.0}
            ]
        }
        steady = {
            "kernel": [
                {"protocol": "cycloid", "columnar_lookups_per_s": 950.0}
            ]
        }
        (line,) = compare_to_baseline(steady, baseline)
        assert not line.startswith("warning:")
        assert "0.95x" in line

    def test_compare_to_baseline_without_baseline(self):
        report = {
            "kernel": [
                {"protocol": "cycloid", "columnar_lookups_per_s": 1000.0}
            ]
        }
        assert compare_to_baseline(report, None) == []
        assert compare_to_baseline(report, {"kernel": []}) == []
