"""Golden parity: the shared engine reproduces the pre-engine routing.

The digests below were captured from the per-protocol ``route()`` loops
*before* they were folded into :class:`repro.dht.routing.LookupEngine`
(same networks, same seeded workload).  Each digest pins the aggregate
hop/timeout/success totals, the per-phase hop totals, and a sha256 over
every record's ``(hops, timeouts, success, phase_hops, path)`` tuple —
so any behavioural drift in any protocol's step function, or in the
engine's loop, shows up as a mismatch.
"""

import hashlib
from collections import Counter

import pytest

from repro.can import CanNetwork
from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.dht.base import Network
from repro.koorde import KoordeNetwork
from repro.pastry import PastryNetwork
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng
from repro.viceroy import ViceroyNetwork

LOOKUPS = 300
WORKLOAD_SEED = 97
DEPARTURE_SEED = 13
DEPARTURE_PROBABILITY = 0.2


def _departed(network):
    """Gracefully depart ~20% of nodes (seeded), no re-stabilisation."""
    rng = make_rng(DEPARTURE_SEED)
    victims = [
        n for n in network.live_nodes() if rng.random() < DEPARTURE_PROBABILITY
    ]
    for node in victims:
        if network.size <= 1:
            break
        network.leave(node)
    return network


CONFIGS = {
    "cycloid-d5": lambda: CycloidNetwork.complete(5),
    "cycloid11-d5": lambda: CycloidNetwork.complete(5, leaf_radius=2),
    "chord-512": lambda: ChordNetwork.with_random_ids(512, 9, seed=7),
    "koorde-512": lambda: KoordeNetwork.with_random_ids(512, 9, seed=7),
    "viceroy-512": lambda: ViceroyNetwork.with_random_ids(512, seed=7),
    "pastry-256": lambda: PastryNetwork.with_random_ids(256, seed=7),
    "can-64": lambda: CanNetwork.with_random_zones(64, seed=7),
    "cycloid-d5-departures": lambda: _departed(CycloidNetwork.complete(5)),
    "chord-512-departures": lambda: _departed(
        ChordNetwork.with_random_ids(512, 9, seed=7)
    ),
    "koorde-512-departures": lambda: _departed(
        KoordeNetwork.with_random_ids(512, 9, seed=7)
    ),
}

#: Captured from the seed implementation (commit cce17b9), 300 seeded
#: lookups per configuration.
GOLDEN = {
    "cycloid-d5": {
        "hops": 1467,
        "timeouts": 0,
        "successes": 300,
        "phases": {"ascending": 179, "descending": 734, "traverse": 554},
        "sha256": "81bc1a9b630766f77430350689c75c2fbcce87a604e50f90626f1c3029312ab7",
    },
    "cycloid11-d5": {
        "hops": 1181,
        "timeouts": 0,
        "successes": 300,
        "phases": {"ascending": 171, "descending": 545, "traverse": 465},
        "sha256": "634fedc9be81bdd2508f0c52c0d644251962cfd9409c507124825c31d1088cc2",
    },
    "chord-512": {
        "hops": 1096,
        "timeouts": 0,
        "successes": 300,
        "phases": {"finger": 796, "successor": 300},
        "sha256": "a17d391074c20d4581dbc40462d9b3392a270b52193e87ee189ae584cac1885d",
    },
    "koorde-512": {
        "hops": 4032,
        "timeouts": 0,
        "successes": 300,
        "phases": {"de_bruijn": 2652, "successor": 1380},
        "sha256": "50c30fd0150037d9ec143be3021fac8ff9f31194825eaad08caecff9fb4afa7d",
    },
    "viceroy-512": {
        "hops": 6937,
        "timeouts": 0,
        "successes": 300,
        "phases": {"ascending": 1209, "descending": 2300, "traverse": 3428},
        "sha256": "bb6eb984d0612adb57c5f60c7e8b70c56e43a508f71002144f378ed94284ebb1",
    },
    "pastry-256": {
        "hops": 811,
        "timeouts": 0,
        "successes": 300,
        "phases": {"leaf": 220, "prefix": 591},
        "sha256": "1f6789b27efedc18710364c08ac6d7c74478e45e8d82c9ccebcd593d8d618f29",
    },
    "can-64": {
        "hops": 1025,
        "timeouts": 0,
        "successes": 300,
        "phases": {"greedy": 1025},
        "sha256": "59a232602b9d9fa6be337849d53f74d9deb0f2b034370e3321597cc2d188117b",
    },
    "cycloid-d5-departures": {
        "hops": 1696,
        "timeouts": 147,
        "successes": 300,
        "phases": {"ascending": 212, "descending": 749, "traverse": 735},
        "sha256": "7bd38633271a420e9001d3ce480204668a3af3c41f6dd1b90db434aaf76269ca",
    },
    "chord-512-departures": {
        "hops": 1327,
        "timeouts": 446,
        "successes": 300,
        "phases": {"finger": 934, "successor": 393},
        "sha256": "b59aa9372c9f2f85fe386fc874fd30e6dd8f4dc47041489279da0885c72c1f40",
    },
    "koorde-512-departures": {
        "hops": 4440,
        "timeouts": 782,
        "successes": 276,
        "phases": {"de_bruijn": 2545, "successor": 1895},
        "sha256": "8a2c9841fdcaacb4caf750d144e3bdaf32a4be2d2d4e455441ebca2eb0a244f9",
    },
}


def _run_records(network, injector=None, retry_budget=0):
    rng = make_rng(WORKLOAD_SEED)
    pairs = lookup_workload(network, LOOKUPS, rng)
    if injector is None and retry_budget == 0:
        return [network.lookup(source, key) for source, key in pairs]
    return network.lookup_many(
        pairs, injector=injector, retry_budget=retry_budget
    )


def _record_sha256(records):
    blob = repr(
        [
            (
                record.hops,
                record.timeouts,
                record.success,
                sorted(record.phase_hops.items()),
                [str(node) for node in record.path],
            )
            for record in records
        ]
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def routing_digest(network, injector=None, retry_budget=0):
    records = _run_records(network, injector, retry_budget)
    phases = Counter()
    for record in records:
        phases.update(record.phase_hops)
    return {
        "hops": sum(r.hops for r in records),
        "timeouts": sum(r.timeouts for r in records),
        "successes": sum(1 for r in records if r.success),
        "phases": dict(sorted(phases.items())),
        "sha256": _record_sha256(records),
    }


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_engine_matches_pre_refactor_goldens(name):
    assert routing_digest(CONFIGS[name]()) == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_disabled_fault_plan_is_bit_exact(name):
    """The resilient engine's fault-free path must not drift: with an
    inactive :class:`FaultPlan` (all probabilities zero) the probe loop
    never arms, no retry budget is consumed, and every pre-refactor
    digest still matches bit for bit."""
    network = CONFIGS[name]()
    injector = FaultInjector(FaultPlan(seed=123))
    assert not injector.active
    records = _run_records(network, injector=injector, retry_budget=5)
    phases = Counter()
    for record in records:
        phases.update(record.phase_hops)
    digest = {
        "hops": sum(r.hops for r in records),
        "timeouts": sum(r.timeouts for r in records),
        "successes": sum(1 for r in records if r.success),
        "phases": dict(sorted(phases.items())),
        "sha256": _record_sha256(records),
    }
    assert digest == GOLDEN[name]
    assert sum(r.retries for r in records) == 0
    assert injector.dropped == 0
    assert network.route_repairs == 0


@pytest.mark.parametrize(
    "cls",
    [
        CycloidNetwork,
        ChordNetwork,
        KoordeNetwork,
        ViceroyNetwork,
        PastryNetwork,
        CanNetwork,
    ],
)
def test_no_protocol_overrides_the_driver_loop(cls):
    """There is exactly one driver loop: ``LookupEngine.run``.  Every
    overlay must route through the shared ``Network.route`` and never
    shadow it with a bespoke loop again."""
    assert cls.route is Network.route
    assert cls.lookup is Network.lookup
    assert cls.lookup_many is Network.lookup_many
    assert cls.ROUTING_PHASES, "protocol must declare its phases"
