"""Unit tests for consistent hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.hashing import (
    consistent_hash,
    hash_to_cycloid,
    hash_to_ring,
    hash_to_unit,
    key_ids,
)
from repro.dht.identifiers import cycloid_space_size


class TestConsistentHash:
    def test_deterministic(self):
        assert consistent_hash("abc") == consistent_hash("abc")

    def test_distinct_inputs(self):
        assert consistent_hash("abc") != consistent_hash("abd")

    def test_160_bits(self):
        assert 0 <= consistent_hash("x") < (1 << 160)

    def test_non_string_keys(self):
        assert consistent_hash(42) == consistent_hash("42")


class TestHashToRing:
    def test_range(self):
        for key in range(100):
            assert 0 <= hash_to_ring(key, 8) < 256

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            hash_to_ring("k", 0)

    def test_roughly_uniform(self):
        # Chi-squared-free sanity: each half gets a fair share.
        low = sum(1 for i in range(2000) if hash_to_ring(f"k{i}", 8) < 128)
        assert 850 < low < 1150


class TestHashToUnit:
    def test_range(self):
        for key in range(100):
            assert 0.0 <= hash_to_unit(f"u{key}") < 1.0


class TestHashToCycloid:
    @given(st.integers(0, 10_000))
    def test_valid_id(self, key):
        node = hash_to_cycloid(key, 8)
        assert 0 <= node.cyclic < 8
        assert 0 <= node.cubical < 256

    def test_mod_div_rule(self):
        # §3.1: cyclic = h mod d, cubical = h div d.
        node = hash_to_cycloid("some-key", 8)
        h = consistent_hash("some-key") % cycloid_space_size(8)
        assert node.cyclic == h % 8
        assert node.cubical == h // 8

    def test_covers_all_cyclic_indices(self):
        seen = {hash_to_cycloid(f"k{i}", 4).cyclic for i in range(500)}
        assert seen == set(range(4))


class TestKeyIds:
    def test_batch(self):
        ids = key_ids(["a", "b", "c"], 8)
        assert ids == [hash_to_ring(k, 8) for k in "abc"]
