"""Unit and property tests for the sorted ring membership structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.ring import SortedRing, in_interval


class TestInInterval:
    def test_plain_interval(self):
        assert in_interval(5, 3, 7, 16)
        assert in_interval(7, 3, 7, 16)  # right end closed
        assert not in_interval(3, 3, 7, 16)  # left end open

    def test_wrapping_interval(self):
        assert in_interval(1, 14, 3, 16)
        assert in_interval(15, 14, 3, 16)
        assert not in_interval(10, 14, 3, 16)

    def test_degenerate_is_full_circle(self):
        assert in_interval(9, 4, 4, 16)
        assert in_interval(4, 4, 4, 16)

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_membership_matches_enumeration(self, x, left, right):
        if left == right:
            assert in_interval(x, left, right, 16)
            return
        members = set()
        position = (left + 1) % 16
        while True:
            members.add(position)
            if position == right:
                break
            position = (position + 1) % 16
        assert in_interval(x, left, right, 16) == (x in members)


class TestSortedRingMembership:
    def test_add_remove(self):
        ring = SortedRing(8)
        ring.add(5, "five")
        assert 5 in ring
        assert len(ring) == 1
        assert ring.remove(5) == "five"
        assert 5 not in ring

    def test_duplicate_rejected(self):
        ring = SortedRing(8)
        ring.add(5, "a")
        with pytest.raises(ValueError):
            ring.add(5, "b")

    def test_out_of_space_rejected(self):
        ring = SortedRing(4)
        with pytest.raises(ValueError):
            ring.add(16, "x")

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            SortedRing(4).remove(3)

    def test_nodes_in_order(self):
        ring = SortedRing(8)
        for value in (9, 3, 200):
            ring.add(value, value)
        assert ring.nodes() == [3, 9, 200]


class TestRingQueries:
    @pytest.fixture
    def ring(self):
        ring = SortedRing(8)
        for value in (10, 50, 200):
            ring.add(value, f"n{value}")
        return ring

    def test_successor_at_point(self, ring):
        assert ring.successor_id(50) == 50

    def test_successor_after_point(self, ring):
        assert ring.successor_id(51) == 200

    def test_successor_wraps(self, ring):
        assert ring.successor_id(201) == 10

    def test_predecessor_strict(self, ring):
        assert ring.predecessor_id(50) == 10

    def test_predecessor_wraps(self, ring):
        assert ring.predecessor_id(5) == 200

    def test_at_or_before(self, ring):
        assert ring.at_or_before_id(50) == 50
        assert ring.at_or_before_id(49) == 10

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            SortedRing(4).successor_id(0)

    def test_successor_run_excludes_self(self, ring):
        run = ring.successor_run(10, 2)
        assert [n for n in run] == ["n50", "n200"]

    def test_successor_run_capped_at_population(self, ring):
        run = ring.successor_run(10, 99)
        assert len(run) == 2  # never wraps back onto itself

    def test_successor_run_unknown_node(self, ring):
        with pytest.raises(KeyError):
            ring.successor_run(11, 2)


@given(
    st.sets(st.integers(0, 255), min_size=1, max_size=30),
    st.integers(0, 255),
)
def test_successor_predecessor_match_reference(ids, point):
    """Ring queries agree with brute-force reference definitions."""
    ring = SortedRing(8)
    for value in ids:
        ring.add(value, value)
    expected_successor = min(ids, key=lambda i: (i - point) % 256)
    expected_predecessor = min(ids, key=lambda i: (point - 1 - i) % 256)
    assert ring.successor_id(point) == expected_successor
    assert ring.predecessor_id(point) == expected_predecessor
    expected_at_or_before = min(ids, key=lambda i: (point - i) % 256)
    assert ring.at_or_before_id(point) == expected_at_or_before


@given(
    st.sets(st.integers(0, 255), min_size=1, max_size=30),
    st.data(),
    st.integers(0, 40),
)
def test_successor_run_matches_reference_walk(ids, data, count):
    """The two-slice ``successor_run`` equals a one-step-at-a-time walk."""
    ring = SortedRing(8)
    for value in ids:
        ring.add(value, f"n{value}")
    node_id = data.draw(st.sampled_from(sorted(ids)))
    ordered = sorted(ids)
    start = ordered.index(node_id)
    expected = []
    for step in range(1, len(ordered)):
        if len(expected) == count:
            break
        expected.append(f"n{ordered[(start + step) % len(ordered)]}")
    assert ring.successor_run(node_id, count) == expected


def test_successor_run_wraps_across_zero():
    ring = SortedRing(8)
    for value in (3, 7, 250, 253):
        ring.add(value, value)
    assert ring.successor_run(250, 3) == [253, 3, 7]
    assert ring.successor_run(253, 2) == [3, 7]


def test_successor_run_zero_count():
    ring = SortedRing(8)
    ring.add(5, "n5")
    ring.add(9, "n9")
    assert ring.successor_run(5, 0) == []
