"""Pastry protocol tests: prefix routing, leaf sets, membership."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pastry import PastryNetwork, PastryNode
from repro.util.rng import make_rng, sample_pairs


class TestDigits:
    def test_digit_extraction_msb_first(self):
        node = PastryNode("x", 0b11_01_00_10, bits=8, digit_bits=2)
        assert [node.digit(i) for i in range(4)] == [3, 1, 0, 2]

    def test_bits_must_align(self):
        with pytest.raises(ValueError):
            PastryNode("x", 0, bits=9, digit_bits=2)

    def test_shared_prefix_digits(self):
        network = PastryNetwork(bits=8, digit_bits=2)
        assert network.shared_prefix_digits(0b11010010, 0b11010010) == 4
        assert network.shared_prefix_digits(0b11010010, 0b11011111) == 2
        assert network.shared_prefix_digits(0b11010010, 0b00000000) == 0

    def test_paper_prefix_example(self):
        """§2.1: routing from 12345 toward key 12456 must go to a node
        matching one more digit, e.g. 12467."""
        # base-10 flavoured in the paper; base-4 here, same mechanics.
        network = PastryNetwork.with_ids(
            [0b11_01_00_10, 0b11_01_11_01, 0b00_10_01_11],
            bits=8,
        )
        source = network.ring.get(0b11_01_00_10)
        key = 0b11_01_11_11
        record = network.route(source, key)
        assert record.success
        # First hop shares at least 2 digits (11 01) with the key.
        first_hop = network.ring.get(
            next(n.id for n in network.live_nodes() if n.name == record.path[1])
        ) if len(record.path) > 1 else source
        assert network.shared_prefix_digits(first_hop.id, key) >= 2


class TestWiring:
    @pytest.fixture(scope="class")
    def network(self):
        return PastryNetwork.with_random_ids(300, seed=1)

    def test_routing_rows_share_prefix(self, network):
        for node in network.live_nodes()[:40]:
            for row_index, row in enumerate(node.routing_rows):
                for column, entry in enumerate(row):
                    if entry is None:
                        continue
                    assert (
                        network.shared_prefix_digits(node.id, entry.id)
                        == row_index
                    )
                    assert network.digit_of(entry.id, row_index) == column

    def test_own_digit_column_empty(self, network):
        for node in network.live_nodes()[:40]:
            for row_index, row in enumerate(node.routing_rows):
                assert row[node.digit(row_index)] is None

    def test_leaf_sets_are_numeric_neighbors(self, network):
        for node in network.live_nodes()[:40]:
            assert node.leaf_smaller[0] is network.ring.predecessor(node.id)
            assert len(node.leaf_smaller) == len(node.leaf_larger) == 4

    def test_state_is_logarithmic(self, network):
        # O(|L|) + O(log n): far above the constant-degree DHTs but far
        # below n.
        states = [node.state_size for node in network.live_nodes()]
        assert 11 < max(states) < 60


class TestRouting:
    def test_exhaustive_small(self):
        network = PastryNetwork.with_ids([3, 77, 130, 200, 255], bits=8)
        for source in network.live_nodes():
            for key in range(256):
                record = network.route(source, key)
                assert record.success, (source.id, key)
                assert record.owner == network.owner_of_id(key).name

    def test_owner_is_numerically_closest(self):
        network = PastryNetwork.with_ids([10, 100], bits=8)
        assert network.owner_of_id(54).id == 10  # distance 44 vs 46
        assert network.owner_of_id(56).id == 100
        # Equidistant: clockwise (successor) wins.
        assert network.owner_of_id(55).id == 100

    def test_logarithmic_paths(self):
        network = PastryNetwork.with_random_ids(1000, seed=2)
        rng = make_rng(3)
        hops = [
            network.route(s, t.id).hops
            for s, t in sample_pairs(network.live_nodes(), 500, rng)
        ]
        assert sum(hops) / len(hops) < 6  # ~log_4(1000) = 5

    def test_phase_mix(self):
        network = PastryNetwork.with_random_ids(400, seed=4)
        rng = make_rng(5)
        prefix = leaf = 0
        for s, t in sample_pairs(network.live_nodes(), 300, rng):
            record = network.route(s, t.id)
            prefix += record.phase_hops["prefix"]
            leaf += record.phase_hops["leaf"]
        assert prefix > 0 and leaf > 0

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(
        ids=st.sets(st.integers(0, 255), min_size=1, max_size=25),
        key=st.integers(0, 255),
        source_index=st.integers(0, 1000),
    )
    def test_routing_matches_owner_property(self, ids, key, source_index):
        network = PastryNetwork.with_ids(sorted(ids), bits=8)
        nodes = network.live_nodes()
        source = nodes[source_index % len(nodes)]
        record = network.route(source, key)
        assert record.success
        assert record.owner == network.owner_of_id(key).name


class TestMembership:
    def test_join_refreshes_nearby_leaf_sets(self):
        network = PastryNetwork.with_random_ids(100, seed=6)
        node = network.join("newcomer")
        pred = network.ring.predecessor(node.id)
        assert node in pred.leaf_larger

    def test_graceful_departures_resolve_everything(self):
        network = PastryNetwork.with_random_ids(400, seed=7)
        rng = make_rng(8)
        for victim in list(network.live_nodes()):
            if rng.random() < 0.3 and network.size > 2:
                network.leave(victim)
        for s, t in sample_pairs(network.live_nodes(), 400, rng):
            assert network.route(s, t.id).success

    def test_silent_failures_then_stabilize(self):
        network = PastryNetwork.with_random_ids(300, seed=9)
        rng = make_rng(10)
        for victim in list(network.live_nodes()):
            if rng.random() < 0.2 and network.size > 2:
                network.fail(victim)
        network.stabilize()
        network.check_invariants()
        for s, t in sample_pairs(network.live_nodes(), 300, rng):
            record = network.route(s, t.id)
            assert record.success and record.timeouts == 0

    def test_maintenance_counted(self):
        network = PastryNetwork.with_random_ids(100, seed=11)
        network.maintenance_updates = 0
        network.join("counted")
        assert network.maintenance_updates >= 1

    def test_registry_integration(self):
        from repro.experiments.registry import build_sized_network

        network = build_sized_network("pastry", 150, seed=12)
        assert network.protocol_name == "pastry"
        assert network.size == 150

    def test_architecture_table_row(self):
        from repro.experiments import architecture_table

        rows = architecture_table(protocols=("pastry",), dimension=5)
        assert rows[0].base_network == "hypercube"
        assert rows[0].max_observed_state > 11
