"""fig-latency experiment: workers parity, report schema, committed artifact."""

import json
import pathlib

import pytest

from repro.experiments.fig_latency import (
    DEFAULT_MODEL,
    LATENCY_BENCH_SCHEMA,
    latency_report,
    run_latency_experiment,
    validate_latency_report,
)
from repro.sim.latency import LatencyModel

SMALL = dict(dimension=4, lookups=120, seed=11)
MODEL = LatencyModel(seed=7)


class TestExperiment:
    def test_cells_cover_protocols_and_selection_variants(self):
        points = run_latency_experiment(model=MODEL, **SMALL)
        labels = [p.label for p in points]
        assert "cycloid" in labels
        assert labels[-2:] == ["cycloid/random", "cycloid/proximity"]
        for point in points:
            assert point.size == 64  # 4 * 2**4
            assert point.failures == 0
            assert 0 < point.p50_ms <= point.p95_ms <= point.p99_ms
            assert point.mean_ms > 0
            assert len(point.digest) == 64

    def test_workers_do_not_change_any_point(self):
        """The acceptance pin at test scale: ``--workers 2`` must be
        bit-identical to ``--workers 1`` — digests included."""
        serial = run_latency_experiment(model=MODEL, workers=1, **SMALL)
        sharded = run_latency_experiment(model=MODEL, workers=2, **SMALL)
        assert serial == sharded


class TestReportSchema:
    def make_report(self, workers=1):
        points = run_latency_experiment(model=MODEL, workers=workers, **SMALL)
        return latency_report(
            points,
            dimension=SMALL["dimension"],
            lookups=SMALL["lookups"],
            seed=SMALL["seed"],
            model=MODEL,
            workers=workers,
        )

    def test_valid_report_passes(self):
        report = self.make_report()
        assert report["schema"] == LATENCY_BENCH_SCHEMA
        validate_latency_report(report)

    def test_workers_field_is_provenance_only(self):
        one = self.make_report(workers=1)
        two = self.make_report(workers=2)
        assert one.pop("workers") == 1
        assert two.pop("workers") == 2
        assert one == two

    def test_proximity_section_names_the_winner(self):
        report = self.make_report()
        proximity = report["proximity"]
        assert proximity["improvement_ms"] == pytest.approx(
            proximity["random_mean_ms"] - proximity["proximity_mean_ms"]
        )
        assert proximity["proximity_wins"] == (
            proximity["proximity_mean_ms"] < proximity["random_mean_ms"]
        )

    def test_missing_cell_key_rejected(self):
        report = self.make_report()
        del report["cells"][0]["digest"]
        with pytest.raises(ValueError, match="digest"):
            validate_latency_report(report)

    def test_inconsistent_proximity_claim_rejected(self):
        report = self.make_report()
        report["proximity"]["proximity_wins"] = not report["proximity"][
            "proximity_wins"
        ]
        with pytest.raises(ValueError, match="proximity_wins"):
            validate_latency_report(report)


class TestCommittedArtifact:
    def test_bench_latency_json_is_valid_and_proximity_wins(self):
        """The committed full-scale run (n=2048) must validate and show
        the §S25 acceptance result: proximity beats random wiring."""
        path = pathlib.Path(__file__).parents[2] / "BENCH_latency.json"
        report = json.loads(path.read_text())
        validate_latency_report(report)
        assert report["size"] == 2048
        assert LatencyModel.from_config(report["model"]) == DEFAULT_MODEL
        assert report["proximity"]["proximity_wins"] is True
