"""Tests for the experiment harness (E1-E11) at reduced scale.

Full paper-scale sweeps live in benchmarks/; these tests validate that
each harness function measures what it claims and that the paper's
qualitative shapes already show up at small scale.
"""

import pytest

from repro.experiments import (
    architecture_table,
    run_churn_experiment,
    run_key_distribution_experiment,
    run_koorde_sparsity_breakdown,
    run_mass_departure_experiment,
    run_path_length_experiment,
    run_phase_breakdown_experiment,
    run_query_load_experiment,
    run_sparsity_experiment,
)


class TestPathLength:
    @pytest.fixture(scope="class")
    def points(self):
        return run_path_length_experiment(
            dimensions=(3, 4, 5), lookups=600, seed=1
        )

    def test_grid_complete(self, points):
        assert len(points) == 3 * 5  # dims x protocols

    def test_no_failures(self, points):
        assert all(p.failures == 0 for p in points)

    def test_sizes_match_formula(self, points):
        for point in points:
            assert point.size == point.dimension * (1 << point.dimension)

    def test_cycloid_beats_viceroy(self, points):
        # Fig. 5's headline: Viceroy's paths are > 2x Cycloid's.
        for dimension in (4, 5):
            cycloid = next(
                p for p in points
                if p.protocol == "cycloid" and p.dimension == dimension
            )
            viceroy = next(
                p for p in points
                if p.protocol == "viceroy" and p.dimension == dimension
            )
            assert viceroy.mean_path_length > 2 * cycloid.mean_path_length

    def test_eleven_entry_shorter(self, points):
        for dimension in (3, 4, 5):
            seven = next(
                p for p in points
                if p.protocol == "cycloid" and p.dimension == dimension
            )
            eleven = next(
                p for p in points
                if p.protocol == "cycloid-11" and p.dimension == dimension
            )
            assert eleven.mean_path_length <= seven.mean_path_length

    def test_path_grows_with_dimension(self, points):
        cycloid = sorted(
            (p for p in points if p.protocol == "cycloid"),
            key=lambda p: p.dimension,
        )
        assert (
            cycloid[0].mean_path_length
            < cycloid[1].mean_path_length
            < cycloid[2].mean_path_length
        )


class TestPhaseBreakdown:
    @pytest.fixture(scope="class")
    def points(self):
        return run_phase_breakdown_experiment(
            dimensions=(5,), lookups=800, seed=2
        )

    def test_fractions_sum_to_one(self, points):
        for point in points:
            assert sum(point.fraction_by_phase.values()) == pytest.approx(1.0)

    def test_cycloid_ascending_small(self, points):
        cycloid = next(p for p in points if p.protocol == "cycloid")
        assert cycloid.fraction_by_phase["ascending"] <= 0.20

    def test_viceroy_traverse_large(self, points):
        viceroy = next(p for p in points if p.protocol == "viceroy")
        assert viceroy.fraction_by_phase["traverse"] >= 0.30

    def test_koorde_phases(self, points):
        koorde = next(p for p in points if p.protocol == "koorde")
        assert set(koorde.fraction_by_phase) == {"de_bruijn", "successor"}
        assert 0.15 <= koorde.fraction_by_phase["successor"] <= 0.5


class TestKoordeSparsityBreakdown:
    def test_successor_share_grows(self):
        points = run_koorde_sparsity_breakdown(
            sparsities=(0.0, 0.7), id_space=512, lookups=600, seed=3
        )
        assert (
            points[1].fraction_by_phase["successor"]
            > points[0].fraction_by_phase["successor"]
        )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            run_koorde_sparsity_breakdown(id_space=1000)


class TestKeyDistribution:
    @pytest.fixture(scope="class")
    def points(self):
        return run_key_distribution_experiment(
            node_count=500,
            key_counts=(5000, 10000),
            id_space=2048,
            seed=4,
        )

    def test_mean_is_keys_over_nodes(self, points):
        for point in points:
            assert point.summary.mean == pytest.approx(point.keys / 500)

    def test_spread_grows_with_keys(self, points):
        for protocol in ("cycloid", "chord"):
            series = [p for p in points if p.protocol == protocol]
            assert series[1].summary.spread >= series[0].summary.spread

    def test_viceroy_most_imbalanced(self, points):
        # Fig. 8: Viceroy's 99th percentile is far above the others'.
        at_10k = {p.protocol: p for p in points if p.keys == 10000}
        assert (
            at_10k["viceroy"].summary.p99
            > at_10k["cycloid"].summary.p99
        )

    def test_cycloid_balances_sparse_better_than_koorde(self):
        # Fig. 9.
        points = run_key_distribution_experiment(
            node_count=250,
            key_counts=(10000,),
            protocols=("cycloid", "koorde"),
            id_space=2048,
            seed=5,
        )
        by_protocol = {p.protocol: p for p in points}
        assert (
            by_protocol["cycloid"].summary.spread
            < by_protocol["koorde"].summary.spread
        )


class TestQueryLoad:
    def test_spread_ranking(self):
        # Fig. 10: Cycloid's query load is more even than Viceroy's and
        # Koorde's.
        points = run_query_load_experiment(
            dimensions=(5,), lookups_per_node=6, seed=6
        )
        by_protocol = {p.protocol: p for p in points}
        assert (
            by_protocol["cycloid"].summary.spread
            < by_protocol["viceroy"].summary.spread
        )
        assert (
            by_protocol["cycloid"].summary.spread
            < by_protocol["koorde"].summary.spread
        )

    def test_lookup_count_recorded(self):
        points = run_query_load_experiment(
            dimensions=(4,), protocols=("cycloid",), lookups_per_node=2, seed=7
        )
        assert points[0].lookups == 2 * 64


class TestMassDepartures:
    @pytest.fixture(scope="class")
    def points(self):
        return run_mass_departure_experiment(
            probabilities=(0.1, 0.5),
            protocols=("cycloid", "viceroy", "koorde", "chord"),
            dimension=6,
            lookups=1200,
            seed=8,
        )

    def test_cycloid_no_failures(self, points):
        for point in points:
            if point.protocol == "cycloid":
                assert point.lookup_failures == 0

    def test_viceroy_zero_timeouts(self, points):
        for point in points:
            if point.protocol == "viceroy":
                assert point.timeout_summary.maximum == 0

    def test_koorde_fails_at_high_p(self, points):
        koorde_high = next(
            p for p in points
            if p.protocol == "koorde" and p.probability == 0.5
        )
        assert koorde_high.lookup_failures > 0

    def test_timeouts_grow_with_p(self, points):
        for protocol in ("cycloid", "chord"):
            series = sorted(
                (p for p in points if p.protocol == protocol),
                key=lambda p: p.probability,
            )
            assert series[1].timeout_summary.mean > series[0].timeout_summary.mean

    def test_viceroy_path_decreases(self, points):
        series = sorted(
            (p for p in points if p.protocol == "viceroy"),
            key=lambda p: p.probability,
        )
        assert series[1].mean_path_length < series[0].mean_path_length

    def test_cycloid_path_increases(self, points):
        series = sorted(
            (p for p in points if p.protocol == "cycloid"),
            key=lambda p: p.probability,
        )
        assert series[1].mean_path_length > series[0].mean_path_length


class TestChurnExperiment:
    def test_no_failures_and_small_timeouts(self):
        points = run_churn_experiment(
            rates=(0.1, 0.4),
            protocols=("cycloid",),
            population=150,
            duration=250,
            seed=9,
        )
        for point in points:
            assert point.lookup_failures == 0
            # Table 5: stabilisation keeps timeouts well below Table 4's.
            assert point.timeout_summary.mean < 0.5

    def test_event_counters(self):
        (point,) = run_churn_experiment(
            rates=(0.3,),
            protocols=("chord",),
            population=120,
            duration=200,
            seed=10,
        )
        assert point.joins > 0 and point.leaves > 0
        assert point.final_size == 120 + point.joins - point.leaves


class TestSparsity:
    @pytest.fixture(scope="class")
    def points(self):
        return run_sparsity_experiment(
            sparsities=(0.0, 0.6),
            protocols=("cycloid", "koorde"),
            id_space=2048,
            lookups=800,
            seed=11,
        )

    def test_population_matches_sparsity(self, points):
        for point in points:
            assert point.population == max(
                2, round(2048 * (1 - point.sparsity))
            )

    def test_cycloid_unaffected(self, points):
        series = sorted(
            (p for p in points if p.protocol == "cycloid"),
            key=lambda p: p.sparsity,
        )
        assert series[1].mean_path_length <= series[0].mean_path_length + 1.0

    def test_koorde_degrades(self, points):
        series = sorted(
            (p for p in points if p.protocol == "koorde"),
            key=lambda p: p.sparsity,
        )
        assert series[1].mean_path_length > series[0].mean_path_length

    def test_no_lookup_failures(self, points):
        assert all(p.lookup_failures == 0 for p in points)


class TestArchitectureTable:
    def test_constant_degree_protocols(self):
        rows = architecture_table(dimension=4)
        by_protocol = {r.protocol: r for r in rows}
        assert by_protocol["cycloid"].max_observed_state == 7
        assert by_protocol["cycloid-11"].max_observed_state == 11
        assert by_protocol["viceroy"].max_observed_state == 7
        assert by_protocol["koorde"].max_observed_state <= 8

    def test_chord_state_grows(self):
        rows = architecture_table(protocols=("chord",), dimension=4)
        assert rows[0].max_observed_state > 7

    def test_labels_and_metadata(self):
        rows = architecture_table(dimension=3)
        cycloid = next(r for r in rows if r.protocol == "cycloid")
        assert cycloid.base_network == "CCC"
        assert cycloid.lookup_complexity == "O(d)"
        assert cycloid.key_placement == "numerically closest node"
