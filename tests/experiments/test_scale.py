"""fig-scale experiment: determinism, report schema, committed artifact."""

import json
import pathlib

import pytest

from repro.experiments.scale import (
    SCALE_BENCH_SCHEMA,
    SPEEDUP_BAR,
    fit_power_law,
    run_scale_experiment,
    scale_parity,
    scale_report,
    validate_scale_report,
)

SMALL = dict(
    counts=(500, 2000),
    protocols=("cycloid", "chord"),
    lookups=64,
    seed=11,
    sampler="fast",
)


class TestExperiment:
    def test_cells_cover_the_grid(self):
        points = run_scale_experiment(**SMALL)
        assert [(p.protocol, p.count) for p in points] == [
            ("cycloid", 500),
            ("cycloid", 2000),
            ("chord", 500),
            ("chord", 2000),
        ]
        for point in points:
            assert point.space >= point.count
            assert point.build_seconds > 0
            assert point.column_bytes > 0
            assert point.lookups == 64
            assert 0.0 <= point.success_rate <= 1.0
            assert point.mean_hops > 0
            assert len(point.digest) == 64

    def test_results_are_deterministic(self):
        """Every field (timings excluded) is a pure function of the
        arguments — digests included."""
        one = run_scale_experiment(**SMALL)
        two = run_scale_experiment(**SMALL)
        for a, b in zip(one, two):
            assert a.digest == b.digest
            assert a.mean_hops == b.mean_hops
            assert a.success_rate == b.success_rate
            assert a.timeouts == b.timeouts

    def test_batch_rows_do_not_change_results(self):
        whole = run_scale_experiment(batch_rows=64, **SMALL)
        chunked = run_scale_experiment(batch_rows=7, **SMALL)
        for a, b in zip(whole, chunked):
            assert a.digest == b.digest

    def test_fit_power_law_recovers_a_known_exponent(self):
        ladder = [
            {"count": n, "seconds": 2.0 * n**1.5}
            for n in (1024, 4096, 16384)
        ]
        exponent, extrapolate = fit_power_law(ladder)
        assert exponent == pytest.approx(1.5)
        assert extrapolate(10**6) == pytest.approx(2.0 * 10**9)

    def test_fit_power_law_needs_two_rungs(self):
        with pytest.raises(ValueError, match="two ladder rungs"):
            fit_power_law([{"count": 10, "seconds": 1.0}])


class TestReportSchema:
    @pytest.fixture(scope="class")
    def report(self):
        points = run_scale_experiment(**SMALL)
        parity = scale_parity(
            points,
            parity_count=256,
            seed=SMALL["seed"],
            ladder_counts=(128, 256, 512),
        )
        return scale_report(
            points,
            parity,
            lookups=SMALL["lookups"],
            seed=SMALL["seed"],
            sampler=SMALL["sampler"],
        )

    def test_valid_report_passes(self, report):
        assert report["schema"] == SCALE_BENCH_SCHEMA
        validate_scale_report(report)

    def test_parity_digests_match_at_test_scale(self, report):
        assert report["parity"]["digest_match"] is True

    def test_missing_cell_key_rejected(self, report):
        broken = json.loads(json.dumps(report))
        del broken["cells"][0]["digest"]
        with pytest.raises(ValueError, match="digest"):
            validate_scale_report(broken)

    def test_tampered_digest_match_rejected(self, report):
        broken = json.loads(json.dumps(report))
        broken["parity"]["digest_match"] = not broken["parity"][
            "digest_match"
        ]
        with pytest.raises(ValueError, match="digest_match"):
            validate_scale_report(broken)

    def test_tampered_speedup_rejected(self, report):
        broken = json.loads(json.dumps(report))
        broken["parity"]["speedup"] = broken["parity"]["speedup"] * 2
        with pytest.raises(ValueError, match="speedup"):
            validate_scale_report(broken)

    def test_inconsistent_speedup_flag_rejected(self, report):
        broken = json.loads(json.dumps(report))
        broken["parity"]["speedup_ok"] = not broken["parity"][
            "speedup_ok"
        ]
        with pytest.raises(ValueError, match="speedup_ok"):
            validate_scale_report(broken)

    def test_wrong_schema_rejected(self, report):
        broken = json.loads(json.dumps(report))
        broken["schema"] = "repro/other/v1"
        with pytest.raises(ValueError, match="schema"):
            validate_scale_report(broken)


class TestCommittedArtifact:
    def test_bench_scale_json_meets_the_acceptance_bar(self):
        """The committed full-scale run: schema-valid, byte-parity with
        the object builder at n=4096, and the n=10^6 Cycloid bulk build
        >= 50x faster than the extrapolated object build, with kernel
        lookups executed on it."""
        path = pathlib.Path(__file__).parents[2] / "BENCH_scale.json"
        report = json.loads(path.read_text())
        validate_scale_report(report)
        parity = report["parity"]
        assert parity["digest_match"] is True
        assert parity["target_count"] == 10**6
        assert parity["speedup"] >= SPEEDUP_BAR
        assert parity["speedup_ok"] is True
        million = [
            c
            for c in report["cells"]
            if c["protocol"] == "cycloid" and c["count"] == 10**6
        ]
        assert len(million) == 1
        assert million[0]["lookups"] >= 1000
        assert million[0]["lookups_per_sec"] > 0
        assert million[0]["success_rate"] == 1.0
