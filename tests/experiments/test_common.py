"""Unit tests for the shared experiment plumbing (`run_lookups`)."""

from __future__ import annotations

from functools import partial

import pytest

from repro.core import CycloidNetwork
from repro.experiments.common import run_lookups
from repro.experiments.registry import build_complete_network
from repro.sim.parallel import plain_setup, run_sharded_lookups
from repro.util.rng import shard_rng


def _network():
    return CycloidNetwork.complete(4)


class TestSeedHandling:
    def test_implicit_seed_is_rejected(self):
        with pytest.raises(TypeError, match="explicit seed"):
            run_lookups(_network(), 5)

    def test_seed_and_factory_conflict(self):
        with pytest.raises(TypeError):
            run_lookups(
                _network(), 5, seed=1, rng_factory=partial(shard_rng, 1)
            )

    def test_explicit_seed_emits_no_warning(self, recwarn):
        run_lookups(_network(), 5, seed=3)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestRngFactory:
    def test_factory_matches_equivalent_seed(self):
        seeded = run_lookups(_network(), 40, seed=9, shard_size=10)
        injected = run_lookups(
            _network(),
            40,
            rng_factory=partial(shard_rng, 9),
            shard_size=10,
        )
        assert seeded.records == injected.records

    def test_factory_receives_shard_indices(self):
        calls = []

        def factory(index):
            calls.append(index)
            return shard_rng(5, index)

        run_lookups(_network(), 40, rng_factory=factory, shard_size=10)
        assert calls == [0, 1, 2, 3]


class TestShardEquivalence:
    def test_matches_sharded_runner_without_faults(self):
        """Shared-network `run_lookups` == per-shard-rebuild runner.

        Without an injector, routing carries no cross-lookup state, so
        reusing one network must give the same records as rebuilding it
        per shard (the run_sharded_lookups path).
        """
        stats = run_lookups(
            build_complete_network("cycloid", 4, seed=42),
            60,
            seed=11,
            shard_size=20,
        )
        merged = run_sharded_lookups(
            partial(plain_setup, build_complete_network, "cycloid", 4, seed=42),
            60,
            11,
            workers=1,
            shard_size=20,
        )
        assert stats.records == merged.stats.records
        assert stats.digest() == merged.stats.digest()
