"""Tests for the protocol registry."""

import pytest

from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.experiments.registry import (
    PROTOCOLS,
    build_complete_network,
    build_sized_network,
    dimension_for_space,
    protocol_label,
)
from repro.koorde import KoordeNetwork
from repro.viceroy import ViceroyNetwork


class TestBuildComplete:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_same_node_count(self, protocol):
        network = build_complete_network(protocol, 4)
        assert network.size == 64

    def test_cycloid_variants(self):
        seven = build_complete_network("cycloid", 4)
        eleven = build_complete_network("cycloid-11", 4)
        assert isinstance(seven, CycloidNetwork)
        assert seven.leaf_radius == 1
        assert eleven.leaf_radius == 2

    def test_types(self):
        assert isinstance(build_complete_network("chord", 3), ChordNetwork)
        assert isinstance(build_complete_network("koorde", 3), KoordeNetwork)
        assert isinstance(build_complete_network("viceroy", 3), ViceroyNetwork)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            build_complete_network("kademlia", 4)

    def test_extended_protocols_buildable(self):
        # Pastry and CAN are implemented for Table 1 but not part of
        # the paper's figure sweeps.
        for protocol in ("pastry", "can"):
            network = build_complete_network(protocol, 3)
            assert network.size == 24


class TestBuildSized:
    def test_pinned_id_space(self):
        network = build_sized_network(
            "chord", 100, id_space_bits=11
        )
        assert network.bits == 11

    def test_pinned_cycloid_dimension(self):
        network = build_sized_network(
            "cycloid", 100, cycloid_dimension=8
        )
        assert network.dimension == 8

    def test_default_dimension_fits(self):
        network = build_sized_network("cycloid", 100)
        assert network.dimension * (1 << network.dimension) >= 100

    def test_seed_reproducibility(self):
        a = build_sized_network("koorde", 50, seed=3)
        b = build_sized_network("koorde", 50, seed=3)
        assert [n.id for n in a.live_nodes()] == [n.id for n in b.live_nodes()]


class TestHelpers:
    def test_labels(self):
        assert protocol_label("cycloid") == "7-entry Cycloid"
        assert protocol_label("cycloid-11") == "11-entry Cycloid"
        with pytest.raises(ValueError):
            protocol_label("nope")

    def test_dimension_for_space(self):
        assert dimension_for_space(24) == 3
        assert dimension_for_space(25) == 4
        assert dimension_for_space(2048) == 8
