"""Tests for the crash-resilience experiment (E13) at reduced scale.

The paper-scale sweep (d = 8, the acceptance configuration) lives in
``benchmarks/test_fig_crash_resilience.py``; these tests pin the
harness semantics — mode grid, shared crash sets, retry accounting and
the determinism guarantees of the fault path.
"""

import pytest

from repro.experiments.common import fail_nodes
from repro.experiments.crash import (
    MODE_CRASH,
    MODE_CRASH_RETRY,
    MODE_GRACEFUL,
    MODES,
    run_crash_experiment,
)
from repro.experiments.registry import build_complete_network


class TestCrashExperiment:
    @pytest.fixture(scope="class")
    def points(self):
        return run_crash_experiment(
            probabilities=(0.3,),
            protocols=("cycloid", "chord"),
            dimension=4,
            lookups=120,
            seed=1,
            retry_budget=6,
        )

    def by_mode(self, points, protocol):
        return {
            p.mode: p for p in points if p.protocol == protocol
        }

    def test_grid_complete(self, points):
        assert len(points) == 2 * 1 * len(MODES)
        assert {p.mode for p in points} == set(MODES)

    def test_crash_modes_share_the_crash_set(self, points):
        for protocol in ("cycloid", "chord"):
            modes = self.by_mode(points, protocol)
            crash = modes[MODE_CRASH]
            retry = modes[MODE_CRASH_RETRY]
            assert crash.departed == retry.departed > 0
            assert crash.survivors == retry.survivors

    def test_retries_recover_lookups(self, points):
        for protocol in ("cycloid", "chord"):
            modes = self.by_mode(points, protocol)
            assert (
                modes[MODE_CRASH_RETRY].success_rate
                > modes[MODE_CRASH].success_rate
            )

    def test_retry_accounting(self, points):
        for point in points:
            if point.mode == MODE_CRASH_RETRY:
                assert point.retries > 0
                assert point.mean_retries == point.retries / point.lookups
            else:
                assert point.retries == 0
        # lazy repair only runs in fault mode
        for protocol in ("cycloid", "chord"):
            modes = self.by_mode(points, protocol)
            assert modes[MODE_GRACEFUL].route_repairs == 0
            assert modes[MODE_CRASH].route_repairs > 0

    def test_graceful_mode_is_the_polite_baseline(self, points):
        for point in points:
            if point.mode == MODE_GRACEFUL:
                # graceful departures keep successor/leaf state fresh:
                # lookups survive without any retry machinery
                assert point.success_rate > point.probability

    def test_deterministic(self):
        kwargs = dict(
            probabilities=(0.3,),
            protocols=("chord",),
            dimension=4,
            lookups=60,
            seed=9,
        )
        assert run_crash_experiment(**kwargs) == run_crash_experiment(**kwargs)

    def test_rejects_useless_retry_budget(self):
        with pytest.raises(ValueError):
            run_crash_experiment(retry_budget=0)


def test_fail_nodes_requires_an_explicit_rng():
    network = build_complete_network("chord", 3, seed=0)
    with pytest.raises(TypeError):
        fail_nodes(network, 0.2, None)
    with pytest.raises(TypeError):
        fail_nodes(network, 0.2)
