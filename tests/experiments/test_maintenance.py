"""Tests for the maintenance-cost experiment (E12 extension)."""

import pytest

from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.experiments import run_maintenance_experiment
from repro.util.rng import make_rng
from repro.viceroy import ViceroyNetwork


class TestMaintenanceCounters:
    def test_fresh_network_has_zero(self):
        network = CycloidNetwork.with_random_ids(50, 5, seed=1)
        assert network.maintenance_updates == 0

    def test_cycloid_join_counts_leaf_refreshes(self):
        network = CycloidNetwork.with_random_ids(50, 5, seed=1)
        network.join("joiner")
        # At least the cycle neighbours / adjacent primaries changed.
        assert network.maintenance_updates >= 1

    def test_cycloid_silent_failure_costs_nothing(self):
        network = CycloidNetwork.with_random_ids(50, 5, seed=2)
        network.maintenance_updates = 0
        network.fail(network.live_nodes()[0])
        assert network.maintenance_updates == 0

    def test_chord_events_touch_two_neighbors(self):
        network = ChordNetwork.with_random_ids(64, 8, seed=3)
        network.maintenance_updates = 0
        network.join("x")
        assert network.maintenance_updates == 2
        network.maintenance_updates = 0
        network.leave(network.live_nodes()[5])
        assert network.maintenance_updates == 2

    def test_viceroy_counts_link_holders(self):
        network = ViceroyNetwork.with_random_ids(100, seed=4)
        network.maintenance_updates = 0
        network.leave(network.live_nodes()[0])
        assert network.maintenance_updates >= 2  # ring neighbours at least

    def test_viceroy_level_demotions_are_charged(self):
        network = ViceroyNetwork.with_random_ids(256, seed=5)
        rng = make_rng(6)
        network.maintenance_updates = 0
        # Halve the network: the top level must demote, at a cost.
        for node in list(network.live_nodes()):
            if rng.random() < 0.6 and network.size > 2:
                network.leave(node)
        per_leave = network.maintenance_updates / (256 - network.size)
        assert per_leave > 2.0


class TestMaintenanceExperiment:
    @pytest.fixture(scope="class")
    def points(self):
        return run_maintenance_experiment(
            population=200, events=40, dimension=6, seed=7
        )

    def test_all_protocols_measured(self, points):
        assert {p.protocol for p in points} == {
            "cycloid",
            "cycloid-11",
            "chord",
            "koorde",
            "viceroy",
        }

    def test_ring_dhts_cheapest(self, points):
        by_protocol = {p.protocol: p for p in points}
        for protocol in ("chord", "koorde"):
            assert by_protocol[protocol].updates_per_join <= 2
            assert by_protocol[protocol].updates_per_leave <= 2

    def test_viceroy_more_expensive_than_cycloid(self, points):
        by_protocol = {p.protocol: p for p in points}
        assert (
            by_protocol["viceroy"].mass_departure_updates
            > by_protocol["cycloid"].mass_departure_updates
        )

    def test_updates_per_departure_derived(self, points):
        for point in points:
            if point.mass_departure_events:
                assert point.updates_per_departure == pytest.approx(
                    point.mass_departure_updates / point.mass_departure_events
                )
