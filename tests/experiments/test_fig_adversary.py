"""fig-adversary experiment: workers parity, report schema, committed artifact."""

import json
import pathlib

import pytest

from repro.experiments.adversary import (
    ADVERSARY_BENCH_SCHEMA,
    ADVERSARY_PROTOCOLS,
    adversary_report,
    run_adversary_experiment,
    validate_adversary_report,
)
from repro.sim.adversary import AdversaryPlan

# Three overlays keeps the smoke fast while still exercising the
# >= 3-overlays acceptance bar the validator enforces.
SMALL = dict(
    population=96,
    protocols=("cycloid", "chord", "koorde"),
    fractions=(0.0, 0.1),
    lookups=120,
    seed=11,
    cache_capacity=8,
    key_universe=24,
)


@pytest.fixture(scope="module")
def results():
    return run_adversary_experiment(**SMALL)


def make_report(results, workers=1):
    return adversary_report(
        results,
        population=SMALL["population"],
        lookups=SMALL["lookups"],
        seed=SMALL["seed"],
        target_key="adversary-target",
        workers=workers,
        key_universe=SMALL["key_universe"],
        cache_capacity=SMALL["cache_capacity"],
    )


class TestExperiment:
    def test_cells_cover_the_grid(self, results):
        attacks = results["attacks"]
        assert [p.label for p in attacks] == [
            f"{protocol}/f={fraction:g}"
            for protocol in SMALL["protocols"]
            for fraction in SMALL["fractions"]
        ]
        for point in attacks:
            assert point.population == SMALL["population"]
            assert point.space >= 2 * SMALL["population"]
            assert 0.0 <= point.capture_fraction <= 1.0
            assert 0.0 <= point.interception_rate <= 1.0
            assert len(point.digest) == 64

    def test_baseline_cells_are_honest(self, results):
        for point in results["attacks"]:
            if point.fraction == 0.0:
                assert point.sybils == 0
                assert point.victims == 0
                assert point.poisoned_entries == 0
                assert point.capture_fraction == 0.0
                assert point.interception_rate == 0.0
                assert point.target_captured is False
                assert point.success_rate == 1.0

    def test_attack_cells_actually_attack(self, results):
        attacked = [p for p in results["attacks"] if p.fraction > 0.0]
        assert attacked
        for point in attacked:
            assert point.sybils == round(
                point.fraction * SMALL["population"]
            )
            assert point.victims > 0
            assert point.poisoned_entries > 0
        # Clustered sybils take the target key on at least one overlay.
        assert any(p.target_captured for p in attacked)
        assert any(p.interception_rate > 0.0 for p in attacked)

    def test_hotspot_cache_recovers_hops(self, results):
        hotspots = {h.label: h for h in results["hotspots"]}
        for protocol in SMALL["protocols"]:
            uncached = hotspots[f"{protocol}/cache-0"]
            cached = hotspots[f"{protocol}/cache-{SMALL['cache_capacity']}"]
            assert uncached.hit_rate == 0.0
            assert cached.hit_rate > 0.0
            assert cached.mean_hops < uncached.mean_hops
            assert cached.hits + cached.misses == SMALL["lookups"]

    def test_workers_do_not_change_any_point(self, results):
        """The acceptance pin at test scale: ``--workers 2`` must be
        bit-identical to ``--workers 1`` — digests included."""
        sharded = run_adversary_experiment(workers=2, **SMALL)
        assert results == sharded


class TestReportSchema:
    def test_valid_report_passes(self, results):
        report = make_report(results)
        assert report["schema"] == ADVERSARY_BENCH_SCHEMA
        validate_adversary_report(report)

    def test_workers_field_is_provenance_only(self, results):
        one = make_report(results, workers=1)
        two = make_report(results, workers=2)
        assert one.pop("workers") == 1
        assert two.pop("workers") == 2
        assert one == two

    def test_report_survives_json_round_trip(self, results):
        report = json.loads(json.dumps(make_report(results)))
        validate_adversary_report(report)
        for cell in report["cells"]:
            plan = AdversaryPlan.from_config(cell["plan"])
            assert plan.sybils == cell["sybils"]

    def test_degradation_deltas_are_consistent(self, results):
        report = make_report(results)
        for protocol, entry in report["degradation"].items():
            assert entry["success_drop"] == pytest.approx(
                entry["baseline_success"] - entry["worst_success"]
            )
            assert entry["hops_inflation"] == pytest.approx(
                entry["worst_hops"] - entry["baseline_hops"]
            )
            assert entry["success_drop"] >= 0.0

    def test_wrong_schema_rejected(self, results):
        report = make_report(results)
        report["schema"] = "repro/other/v1"
        with pytest.raises(ValueError, match="schema"):
            validate_adversary_report(report)

    def test_missing_cell_key_rejected(self, results):
        report = make_report(results)
        del report["cells"][0]["digest"]
        with pytest.raises(ValueError, match="digest"):
            validate_adversary_report(report)

    def test_out_of_range_rate_rejected(self, results):
        report = make_report(results)
        report["cells"][0]["capture_fraction"] = 1.5
        with pytest.raises(ValueError, match="capture_fraction"):
            validate_adversary_report(report)

    def test_malformed_plan_rejected(self, results):
        report = make_report(results)
        report["cells"][0]["plan"] = {"sybils": 3}  # no seed
        with pytest.raises((ValueError, TypeError, KeyError)):
            validate_adversary_report(report)

    def test_too_few_overlays_rejected(self, results):
        report = make_report(results)
        report["cells"] = [
            cell
            for cell in report["cells"]
            if cell["protocol"] == "cycloid"
        ]
        with pytest.raises(ValueError, match="overlays"):
            validate_adversary_report(report)

    def test_missing_hotspot_cells_rejected(self, results):
        report = make_report(results)
        report["hotspot"]["cells"] = []
        with pytest.raises(ValueError, match="hotspot"):
            validate_adversary_report(report)


class TestCommittedArtifact:
    def test_bench_adversary_json_is_valid_and_attacks_bite(self):
        """The committed full-scale run (n=2048) must validate and show
        the §S27 acceptance result: attacks measurably degrade lookups
        and the cache measurably absorbs the hotspot."""
        path = pathlib.Path(__file__).parents[2] / "BENCH_adversary.json"
        report = json.loads(path.read_text())
        validate_adversary_report(report)
        assert report["population"] == 2048
        protocols = {cell["protocol"] for cell in report["cells"]}
        assert protocols >= {"cycloid", "chord", "koorde"}
        attacked = [
            cell for cell in report["cells"] if cell["attacker_fraction"] > 0
        ]
        assert any(cell["interception_rate"] > 0.0 for cell in attacked)
        assert any(cell["target_captured"] for cell in attacked)
        cached = [
            cell
            for cell in report["hotspot"]["cells"]
            if cell["capacity"] > 0
        ]
        assert cached and all(cell["hit_rate"] > 0.0 for cell in cached)
