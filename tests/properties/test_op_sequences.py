"""Property-based fuzzing of membership operation sequences.

Hypothesis drives random interleavings of joins, graceful leaves,
silent failures and stabilisation rounds against every overlay, then
asserts the core guarantees: invariants hold after stabilisation and
every lookup resolves to the ground-truth owner.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.koorde import KoordeNetwork
from repro.util.rng import make_rng
from repro.viceroy import ViceroyNetwork

# Each op: (kind, payload). Kinds: 0 join, 1 leave, 2 fail, 3 stabilize.
operations = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 10_000)),
    min_size=1,
    max_size=25,
)

FACTORIES = {
    "cycloid": lambda: CycloidNetwork.with_random_ids(40, 6, seed=5),
    "chord": lambda: ChordNetwork.with_random_ids(40, 8, seed=5),
    "koorde": lambda: KoordeNetwork.with_random_ids(40, 8, seed=5),
    "viceroy": lambda: ViceroyNetwork.with_random_ids(40, seed=5),
}


def apply_operations(network, ops, tag):
    joined = 0
    for kind, payload in ops:
        if kind == 0:
            network.join(f"{tag}-{joined}-{payload}")
            joined += 1
        elif kind in (1, 2) and network.size > 3:
            nodes = network.live_nodes()
            victim = nodes[payload % len(nodes)]
            if kind == 1:
                network.leave(victim)
            else:
                network.fail(victim)
        elif kind == 3:
            network.stabilize()


def assert_all_resolve(network, lookups=40):
    rng = make_rng(99)
    nodes = network.live_nodes()
    for index in range(lookups):
        source = nodes[rng.randrange(len(nodes))]
        key = f"prop-{index}"
        record = network.lookup(source, key)
        assert record.success, (
            network.protocol_name,
            key,
            record.owner,
            network.owner_of_key(key).name,
        )
        assert record.timeouts == 0  # post-stabilisation: no staleness


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_cycloid_survives_any_sequence(ops):
    network = FACTORIES["cycloid"]()
    apply_operations(network, ops, "c")
    network.stabilize()
    network.check_invariants()
    assert_all_resolve(network)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_chord_survives_any_sequence(ops):
    network = FACTORIES["chord"]()
    apply_operations(network, ops, "h")
    network.stabilize()
    network.check_invariants()
    assert_all_resolve(network)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_koorde_survives_any_sequence(ops):
    network = FACTORIES["koorde"]()
    apply_operations(network, ops, "k")
    network.stabilize()
    network.check_invariants()
    assert_all_resolve(network)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_viceroy_survives_any_sequence(ops):
    network = FACTORIES["viceroy"]()
    apply_operations(network, ops, "v")
    network.check_invariants()  # eager repair: no stabilisation needed
    assert_all_resolve(network)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_cycloid_leaf_sets_fresh_under_graceful_ops(ops):
    """Without silent failures, leaf sets stay fresh with NO
    stabilisation at all (§3.3's notification guarantee)."""
    network = FACTORIES["cycloid"]()
    graceful = [(kind % 2, payload) for kind, payload in ops]
    apply_operations(network, graceful, "g")
    for node in network.live_nodes():
        for leaf in node.leaf_entries():
            assert leaf.alive
