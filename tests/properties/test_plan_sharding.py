"""Hypothesis coverage for plan sharding (§S27 satellite).

The sharded runner's correctness rests on every plan object exposing a
``for_shard`` that makes shard results a pure function of (plan, shard
index):

* :meth:`AdversaryPlan.for_shard` is the *identity* — adversarial
  mutations happen at setup time, so every shard must see the identical
  attacked topology, and merged sharded results are bit-equal to a
  serial run at any shard split.
* :meth:`FaultInjector.for_shard` derives **disjoint** per-shard
  message-loss streams (distinct shards draw different verdicts) while
  shard 0 stays bit-identical to the parent, and the merged sharded
  crash run is bit-equal to the serial one at any shard split.
"""

from __future__ import annotations

from functools import partial

from hypothesis import given, settings, strategies as st

from repro.experiments.adversary import build_adversary_network
from repro.experiments.crash import crashed_setup
from repro.sim.adversary import Adversary, AdversaryPlan
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.parallel import plain_setup, run_sharded_lookups

seeds = st.integers(min_value=0, max_value=2**31)
shard_indices = st.integers(min_value=0, max_value=64)
shard_sizes = st.integers(min_value=7, max_value=80)

adversary_plans = st.builds(
    AdversaryPlan,
    seed=seeds,
    sybils=st.integers(min_value=0, max_value=12),
    target_key=st.text(min_size=1, max_size=8),
    eclipse_fraction=st.floats(0.0, 1.0, allow_nan=False),
)
fault_plans = st.builds(
    FaultPlan,
    seed=seeds,
    crash_probability=st.floats(0.0, 0.3, allow_nan=False),
    message_loss=st.floats(0.0, 0.4, allow_nan=False),
)


class TestAdversaryPlanSharding:
    @given(plan=adversary_plans, shard=shard_indices)
    def test_for_shard_is_identity(self, plan, shard):
        assert plan.for_shard(shard) is plan

    @given(plan=adversary_plans, shard=shard_indices)
    @settings(max_examples=10, deadline=None)
    def test_every_shard_attacks_identically(self, plan, shard):
        """Two shards applying the same plan to identically-built
        overlays produce the identical attacked membership."""
        def attacked_names(shard_plan):
            network = build_adversary_network(
                "chord", 48, 3, AdversaryPlan(seed=3)
            )
            adversary = Adversary(shard_plan)
            adversary.apply(network)
            return sorted(
                (str(n.name), n.node_id) for n in network.live_nodes()
            )

        assert attacked_names(plan.for_shard(shard)) == attacked_names(plan)

    @given(shard_size=shard_sizes)
    @settings(max_examples=4, deadline=None)
    def test_merged_shards_bit_equal_to_serial(self, shard_size):
        """For any shard split, fanning the shards over worker
        processes merges to the bit-identical serial result — the
        shard split (not the worker count) is part of the workload's
        purity key."""
        plan = AdversaryPlan(
            seed=5, sybils=6, target_key="t", eclipse_fraction=0.25
        )
        setup = partial(
            plain_setup, build_adversary_network, "cycloid", 64, 5, plan
        )
        serial = run_sharded_lookups(
            setup, 60, 11, workers=1, shard_size=shard_size
        ).stats.digest()
        merged = run_sharded_lookups(
            setup, 60, 11, workers=2, shard_size=shard_size
        ).stats.digest()
        assert merged == serial


class TestFaultPlanSharding:
    @given(plan=fault_plans)
    @settings(max_examples=20)
    def test_shard_zero_is_bit_identical_to_parent(self, plan):
        parent = FaultInjector(plan)
        child = FaultInjector(plan).for_shard(0)
        draws = 50
        assert [parent._loss_rng.random() for _ in range(draws)] == [
            child._loss_rng.random() for _ in range(draws)
        ]

    @given(
        seed=seeds,
        a=st.integers(min_value=0, max_value=64),
        b=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=20)
    def test_distinct_shards_draw_disjoint_streams(self, seed, a, b):
        if a == b:
            return
        plan = FaultPlan(seed=seed, message_loss=0.2)
        stream_a = FaultInjector(plan).for_shard(a)._loss_rng
        stream_b = FaultInjector(plan).for_shard(b)._loss_rng
        assert [stream_a.random() for _ in range(20)] != [
            stream_b.random() for _ in range(20)
        ]

    @given(plan=fault_plans, shard=shard_indices)
    @settings(max_examples=20)
    def test_shards_share_crash_and_flaky_decisions(self, plan, shard):
        """Topology-level faults are shard-independent: every shard
        kills the same nodes (the streams are never re-derived)."""
        parent = FaultInjector(plan)
        child = parent.for_shard(shard)
        assert child.plan is plan
        draws = 20
        assert [parent._crash_rng.random() for _ in range(draws)] == [
            child._crash_rng.random() for _ in range(draws)
        ]

    @given(shard_size=shard_sizes)
    @settings(max_examples=4, deadline=None)
    def test_merged_crash_shards_bit_equal_to_serial(self, shard_size):
        """The existing FaultPlan path holds the same bar: for any
        shard split of a crashed-overlay workload, fanned-out shards
        merge to the bit-identical serial result — per-shard
        message-loss streams (``for_shard``) included."""
        plan = FaultPlan(seed=9, crash_probability=0.15, message_loss=0.1)
        setup = partial(crashed_setup, "cycloid", 3, 2, plan)
        serial = run_sharded_lookups(
            setup, 60, 13, workers=1, shard_size=shard_size, retry_budget=4
        ).stats.digest()
        merged = run_sharded_lookups(
            setup, 60, 13, workers=2, shard_size=shard_size, retry_budget=4
        ).stats.digest()
        assert merged == serial
