"""Property: a cloned network is fully independent of its original.

Hypothesis drives a random membership-operation sequence against a
*clone* and asserts the original never changes: same membership, same
lookup digest, byte-identical packed form.  Mutating the original
instead and re-checking a pre-taken snapshot pins the other direction.
This is the §S21 safety property — the parallel engine hands every
shard a restored copy and relies on restores never sharing mutable
state with the prepared network or with each other.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dht.snapshot import clone_network, pack_network
from repro.experiments.common import run_lookups
from repro.experiments.registry import ALL_PROTOCOLS, build_sized_network
from tests.properties.test_op_sequences import apply_operations

SEED = 42

# Each op: (kind, payload). Kinds: 0 join, 1 leave, 2 fail, 3 stabilize.
# Networks are sparse (30 nodes in a larger ID space) so joins have
# room; complete networks would raise on op kind 0.
operations = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 10_000)),
    min_size=1,
    max_size=15,
)


def _network(protocol):
    # Generous ID spaces (2^8 ring, d=5 cycloid) so up to 15 joins
    # never exhaust the identifier space.
    return build_sized_network(
        protocol, 30, seed=SEED, id_space_bits=8, cycloid_dimension=5
    )


def _fingerprint(network):
    live = tuple(sorted(str(node.name) for node in network.live_nodes()))
    digest = run_lookups(network, 40, seed=SEED + 9).digest()
    return live, digest


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_mutating_clone_leaves_original_untouched(protocol, ops):
    network = _network(protocol)
    before = _fingerprint(network)
    # Lookups above touched the query counters; pack *after* them so
    # any later byte difference can only come from the clone leaking.
    before_bytes = pickle.dumps(pack_network(network))

    clone = clone_network(network)
    apply_operations(clone, ops, tag=f"clone-{protocol}")

    assert pickle.dumps(pack_network(network)) == before_bytes
    assert _fingerprint(network) == before


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_mutating_original_leaves_snapshot_restores_untouched(protocol, ops):
    network = _network(protocol)
    snapshot = network.snapshot()
    reference = _fingerprint(snapshot.restore())

    apply_operations(network, ops, tag=f"orig-{protocol}")

    assert _fingerprint(snapshot.restore()) == reference
