"""Detailed Viceroy link-geometry tests (butterfly construction)."""

import pytest

from repro.util.rng import make_rng
from repro.viceroy import ViceroyNetwork
from repro.viceroy.node import ID_BITS, ID_SCALE


@pytest.fixture(scope="module")
def network():
    return ViceroyNetwork.with_random_ids(512, seed=21)


class TestDownLinkGeometry:
    def test_left_down_link_is_nearest_clockwise(self, network):
        for node in network.live_nodes()[:50]:
            left, _ = network.down_links(node)
            if left is None:
                continue
            # No level-(l+1) node lies strictly between node.id and left.
            for other in network.live_nodes():
                if other.level != node.level + 1 or other is left:
                    continue
                own = (other.id - node.id) % ID_SCALE
                chosen = (left.id - node.id) % ID_SCALE
                assert own >= chosen

    def test_right_down_link_offset(self, network):
        for node in network.live_nodes()[:50]:
            _, right = network.down_links(node)
            if right is None:
                continue
            anchor = (node.id + (ID_SCALE >> node.level)) % ID_SCALE
            for other in network.live_nodes():
                if other.level != node.level + 1 or other is right:
                    continue
                own = (other.id - anchor) % ID_SCALE
                chosen = (right.id - anchor) % ID_SCALE
                assert own >= chosen

    def test_bottom_level_has_no_down_links(self, network):
        deepest = max(node.level for node in network.live_nodes())
        for node in network.live_nodes():
            if node.level == deepest:
                left, right = network.down_links(node)
                assert left is None and right is None


class TestLevelRingGeometry:
    def test_level_ring_is_circular(self, network):
        start = next(
            node for node in network.live_nodes() if node.level == 2
        )
        seen = {start.id}
        _, cursor = network.level_ring(start)
        steps = 0
        while cursor is not start:
            assert cursor.level == 2
            seen.add(cursor.id)
            _, cursor = network.level_ring(cursor)
            steps += 1
            assert steps < 1000
        level_two = {
            node.id for node in network.live_nodes() if node.level == 2
        }
        assert seen == level_two

    def test_lone_level_node_has_no_ring(self):
        small = ViceroyNetwork(seed=1)
        a = small.join("a")
        assert small.level_ring(a) == (None, None)


class TestDescentBehaviour:
    def test_descent_lands_in_the_keys_vicinity(self, network):
        """The butterfly descent ends near the key: the remaining ring
        walk is bounded, though it dominates the total cost (the >50%
        traverse share of Fig. 7b)."""
        rng = make_rng(2)
        nodes = network.live_nodes()
        long_traverses = 0
        total = 200
        for index in range(total):
            source = nodes[rng.randrange(len(nodes))]
            key = network.key_id(f"descent-{index}")
            record = network.route(source, key)
            assert record.success
            if record.phase_hops["traverse"] > 12:
                long_traverses += 1
        # Most lookups end with a ring walk shorter than ~log2 n hops;
        # the tail is what makes traverse Viceroy's dominant phase.
        assert long_traverses < total * 0.5

    def test_ascending_bounded_by_levels(self, network):
        rng = make_rng(3)
        nodes = network.live_nodes()
        deepest = max(node.level for node in nodes)
        for index in range(200):
            source = nodes[rng.randrange(len(nodes))]
            key = network.key_id(f"up-{index}")
            record = network.route(source, key)
            assert record.phase_hops["ascending"] <= deepest - 1
