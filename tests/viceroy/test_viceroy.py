"""Viceroy protocol tests: levels, links, routing phases, maintenance."""

import math

import pytest

from repro.util.rng import make_rng, sample_pairs
from repro.viceroy import ViceroyNetwork
from repro.viceroy.node import ID_SCALE, ViceroyNode


class TestConstruction:
    def test_levels_within_log_range(self):
        network = ViceroyNetwork.with_random_ids(256, seed=1)
        max_level = round(math.log2(256))
        for node in network.live_nodes():
            assert 1 <= node.level <= max_level

    def test_all_levels_populated(self):
        network = ViceroyNetwork.with_random_ids(512, seed=2)
        levels = {node.level for node in network.live_nodes()}
        assert levels == set(range(1, round(math.log2(512)) + 1))

    def test_identity_in_unit_interval(self):
        network = ViceroyNetwork.with_random_ids(50, seed=3)
        for node in network.live_nodes():
            assert 0.0 <= node.identity < 1.0

    def test_constant_degree(self):
        assert ViceroyNode("x", 0, 1).degree == 7

    def test_node_validation(self):
        with pytest.raises(ValueError):
            ViceroyNode("x", ID_SCALE, 1)
        with pytest.raises(ValueError):
            ViceroyNode("x", 0, 0)


class TestLinks:
    @pytest.fixture(scope="class")
    def network(self):
        return ViceroyNetwork.with_random_ids(200, seed=4)

    def test_up_link_is_previous_level(self, network):
        for node in network.live_nodes():
            up = network.up_link(node)
            if node.level == 1:
                assert up is None
            elif up is not None:
                assert up.level == node.level - 1

    def test_down_links_next_level(self, network):
        for node in network.live_nodes():
            left, right = network.down_links(node)
            for link in (left, right):
                if link is not None:
                    assert link.level == node.level + 1

    def test_level_ring_same_level(self, network):
        for node in network.live_nodes():
            prev, next_ = network.level_ring(node)
            for link in (prev, next_):
                if link is not None:
                    assert link.level == node.level

    def test_general_ring_adjacency(self, network):
        nodes = network.live_nodes()
        for node in nodes[:20]:
            pred, succ = network.general_ring(node)
            assert network.ring.successor((node.id + 1) % ID_SCALE) is succ
            assert network.ring.predecessor(node.id) is pred


class TestRouting:
    def test_all_lookups_resolve(self):
        network = ViceroyNetwork.with_random_ids(300, seed=5)
        rng = make_rng(6)
        for source, target in sample_pairs(network.live_nodes(), 400, rng):
            record = network.route(source, target.id)
            assert record.success

    def test_three_phases_present(self):
        network = ViceroyNetwork.with_random_ids(300, seed=7)
        rng = make_rng(8)
        totals = {"ascending": 0, "descending": 0, "traverse": 0}
        for source, target in sample_pairs(network.live_nodes(), 300, rng):
            for phase, hops in network.route(source, target.id).phase_hops.items():
                totals[phase] += hops
        assert all(v > 0 for v in totals.values())

    def test_traverse_dominates(self):
        # Fig. 7(b): more than half the cost sits in the traverse phase
        # and ascending is roughly 30%.
        network = ViceroyNetwork.with_random_ids(1024, seed=9)
        rng = make_rng(10)
        totals = {"ascending": 0, "descending": 0, "traverse": 0}
        for source, target in sample_pairs(network.live_nodes(), 400, rng):
            for phase, hops in network.route(source, target.id).phase_hops.items():
                totals[phase] += hops
        total = sum(totals.values())
        assert totals["traverse"] / total > 0.35
        assert 0.10 < totals["ascending"] / total < 0.45

    def test_never_times_out(self):
        network = ViceroyNetwork.with_random_ids(200, seed=11)
        rng = make_rng(12)
        for node in list(network.live_nodes()):
            if rng.random() < 0.4 and network.size > 2:
                network.leave(node)
        for source, target in sample_pairs(network.live_nodes(), 300, rng):
            record = network.route(source, target.id)
            assert record.timeouts == 0
            assert record.success

    def test_singleton(self):
        network = ViceroyNetwork(seed=13)
        node = network.join("only")
        record = network.lookup(node, "key")
        assert record.success and record.hops == 0


class TestMaintenance:
    def test_join_counts_affected_nodes(self):
        network = ViceroyNetwork.with_random_ids(100, seed=14)
        before = network.maintenance_updates
        network.join("newcomer")
        assert network.maintenance_updates > before

    def test_leave_counts_affected_nodes(self):
        network = ViceroyNetwork.with_random_ids(100, seed=15)
        before = network.maintenance_updates
        network.leave(network.live_nodes()[0])
        assert network.maintenance_updates > before

    def test_levels_readjusted_when_network_shrinks(self):
        network = ViceroyNetwork.with_random_ids(256, seed=16)
        rng = make_rng(17)
        for node in list(network.live_nodes()):
            if rng.random() < 0.75 and network.size > 2:
                network.leave(node)
        max_level = max(1, round(math.log2(network.size)))
        for node in network.live_nodes():
            assert node.level <= max_level
        network.check_invariants()

    def test_stabilize_is_noop(self):
        network = ViceroyNetwork.with_random_ids(50, seed=18)
        snapshot = [(n.id, n.level) for n in network.live_nodes()]
        network.stabilize()
        assert snapshot == [(n.id, n.level) for n in network.live_nodes()]

    def test_path_decreases_as_network_shrinks(self):
        # Fig. 11: Viceroy's path length drops under mass departures
        # because the surviving network is smaller.
        network = ViceroyNetwork.with_random_ids(1024, seed=19)
        rng = make_rng(20)
        before = sum(
            network.route(s, t.id).hops
            for s, t in sample_pairs(network.live_nodes(), 300, rng)
        ) / 300
        for node in list(network.live_nodes()):
            if rng.random() < 0.6 and network.size > 2:
                network.leave(node)
        after = sum(
            network.route(s, t.id).hops
            for s, t in sample_pairs(network.live_nodes(), 300, rng)
        ) / 300
        assert after < before
