"""Live-vs-engine parity: wire lookups must be bit-exact.

The acceptance bar of DESIGN S22: for the same ``(source, key)``, a
lookup routed hop-by-hop across real sockets — continuation frames,
packed route state and all — must take *exactly* the hop path the
in-memory :class:`~repro.dht.routing.LookupEngine` takes, with
identical per-hop phases and timeout counts, identical totals, and the
identical terminal owner.
"""

import asyncio

import pytest

from repro.dht.routing import RecordingTracer
from repro.experiments.registry import (
    build_complete_network,
    build_sized_network,
)
from repro.net.cluster import LocalCluster
from repro.util.rng import make_rng


def run(coro):
    return asyncio.run(coro)


def workload(network, count, seed):
    rng = make_rng(seed)
    nodes = network.live_nodes()
    return [
        (
            str(nodes[rng.randrange(len(nodes))].name),
            f"key-{rng.getrandbits(64):016x}-{i}",
        )
        for i in range(count)
    ]


def engine_baseline(network, pairs):
    """Engine records + per-hop traces on a pristine clone."""
    reference = network.clone()
    by_name = {str(n.name): n for n in reference.live_nodes()}
    tracer = RecordingTracer()
    records = reference.lookup_many(
        ((by_name[source], key) for source, key in pairs), observer=tracer
    )
    baselines = []
    for index, record in enumerate(records):
        baselines.append(
            {
                "record": record,
                "hops": [
                    (str(e.node), e.phase, e.timeouts)
                    for e in tracer.events_for(index)
                ],
            }
        )
    return baselines


async def live_results(network, pairs, servers):
    async with LocalCluster(network, servers=servers) as cluster:
        async with cluster.client() as client:
            return [
                await client.lookup(key, source, lookup_id=index)
                for index, (source, key) in enumerate(pairs)
            ]


def assert_bit_exact(baseline, reply, context):
    record = baseline["record"]
    assert reply["hops"] == record.hops, context
    assert reply["timeouts"] == record.timeouts, context
    assert reply["success"] == record.success, context
    assert reply["owner"] == str(record.owner), context
    assert reply["path"] == [str(name) for name in record.path], context
    assert reply["phases"] == record.phase_hops, context
    live_hops = [
        (event["node"], event["phase"], event["timeouts"])
        for event in reply["trace"]
    ]
    assert live_hops == baseline["hops"], context
    assert [event["hop"] for event in reply["trace"]] == list(
        range(1, record.hops + 1)
    ), context


class TestGoldenCycloidParity:
    def test_d5_cycloid_hop_paths_are_bit_exact(self):
        """The issue's golden case: d=5 complete Cycloid (160 nodes),
        multi-server, every hop crossing the wire where the partition
        demands it."""
        network = build_complete_network("cycloid", 5)
        pairs = workload(network, 60, seed=2024)
        baselines = engine_baseline(network, pairs)
        replies = run(live_results(network, pairs, servers=4))
        crossings = 0
        for index, (baseline, reply) in enumerate(zip(baselines, replies)):
            assert_bit_exact(baseline, reply, f"lookup {index}: {pairs[index]}")
            crossings += max(0, len(reply["path"]) - 1)
        # The workload must actually have exercised multi-hop routing.
        assert crossings > len(pairs)

    def test_parity_survives_single_server_hosting(self):
        network = build_complete_network("cycloid", 4)
        pairs = workload(network, 20, seed=5)
        baselines = engine_baseline(network, pairs)
        replies = run(live_results(network, pairs, servers=1))
        for baseline, reply in zip(baselines, replies):
            assert_bit_exact(baseline, reply, "single-server")


class TestAllProtocolParity:
    @pytest.mark.parametrize(
        "protocol", ["cycloid-11", "chord", "koorde", "viceroy", "pastry", "can"]
    )
    def test_every_overlay_routes_bit_exactly_over_the_wire(self, protocol):
        network = build_sized_network(protocol, 30, seed=9)
        pairs = workload(network, 25, seed=77)
        baselines = engine_baseline(network, pairs)
        replies = run(live_results(network, pairs, servers=3))
        for index, (baseline, reply) in enumerate(zip(baselines, replies)):
            assert_bit_exact(baseline, reply, f"{protocol} lookup {index}")


class TestRouteStateCodec:
    @pytest.mark.parametrize(
        "protocol", ["cycloid", "koorde", "viceroy", "pastry", "can"]
    )
    def test_pack_unpack_is_lossless_mid_route(self, protocol):
        """Packing the route state after the first decision and
        unpacking it must leave every later decision unchanged — the
        property the STEP continuation frames depend on."""
        from repro.dht.routing import step_route

        network = build_sized_network(protocol, 25, seed=4)
        rng = make_rng(31)
        nodes = network.live_nodes()
        checked = 0
        for index in range(12):
            source = nodes[rng.randrange(len(nodes))]
            key_id = network.key_id(f"probe-{index}")
            network.fault_detection = False
            state = network.begin_route(source, key_id)
            decision, _ = step_route(network, source, key_id, state)
            if decision.node is None or decision.terminal:
                continue
            # Serialise mid-route, as a STEP frame would.
            blob = network.pack_route_state(state)
            revived = network.unpack_route_state(blob, key_id)
            original = _finish(network, decision.node, key_id, state)
            replayed = _finish(network, decision.node, key_id, revived)
            assert original == replayed, protocol
            checked += 1
        assert checked > 0, f"{protocol}: workload never left the source"

    def test_chord_has_no_state_to_pack(self):
        network = build_sized_network("chord", 10, seed=1)
        assert network.pack_route_state(None) is None
        assert network.unpack_route_state(None, network.key_id("k")) is None


def _finish(network, current, key_id, state):
    """Drive a route to termination; returns the (path, final) tuple."""
    from repro.dht.routing import step_route

    path = []
    for _ in range(network.HOP_LIMIT):
        decision, _ = step_route(network, current, key_id, state)
        if decision.node is None:
            break
        current = decision.node
        path.append(str(current.name))
        if decision.terminal:
            break
    final = network.finish_route(current, key_id, state)
    if final is not None and final.node is not None:
        path.append(str(final.node.name))
    return tuple(path)
