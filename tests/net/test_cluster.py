"""LocalCluster lifecycle: serving, storage, membership, bad frames."""

import asyncio

import pytest

from repro.core import CycloidNetwork
from repro.net.client import ClusterClient, ClusterError
from repro.net.cluster import SPEC_SCHEMA, LocalCluster, load_spec
from repro.net.codec import (
    HEADER_SIZE,
    MessageType,
    encode_frame,
    read_frame,
)


def run(coro):
    return asyncio.run(coro)


def small_cluster(servers=3):
    network = CycloidNetwork.complete(3)  # 24 nodes
    return LocalCluster(
        network, servers=servers, build={"protocol": "cycloid", "dimension": 3}
    )


class TestLifecycle:
    def test_start_serves_every_node_and_stops_cleanly(self):
        async def go():
            async with small_cluster() as cluster:
                assert len(cluster.directory) == 24
                assert len(cluster.services) == 3
                client = cluster.client()
                async with client:
                    for address in client.addresses():
                        reply = await client.ping(address)
                        assert reply["pong"] is True
                        assert reply["network_size"] == 24
            # Stopped: connecting again must fail.
            address = cluster.services[0].address
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(*address)

        run(go())

    def test_round_robin_partition_covers_all_nodes(self):
        cluster = small_cluster(servers=5)
        hosted = [name for svc in cluster.services for name in svc.hosted]
        assert sorted(hosted) == sorted(
            str(n.name) for n in cluster.network.live_nodes()
        )
        sizes = [len(svc.hosted) for svc in cluster.services]
        assert max(sizes) - min(sizes) <= 1

    def test_more_servers_than_nodes_is_clamped(self):
        network = CycloidNetwork.with_random_ids(3, 3, seed=1)
        cluster = LocalCluster(network, servers=10)
        assert len(cluster.services) == 3

    def test_spec_round_trips_through_disk(self, tmp_path):
        async def go():
            async with small_cluster() as cluster:
                path = str(tmp_path / "spec.json")
                cluster.write_spec(path)
                spec = load_spec(path)
                assert spec["schema"] == SPEC_SCHEMA
                assert spec["build"]["protocol"] == "cycloid"
                assert spec["nodes"] == 24
                assert spec["directory"] == {
                    name: list(address)
                    for name, address in cluster.directory.items()
                }

        run(go())

    def test_load_spec_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9", "directory": {"a": 1}}')
        with pytest.raises(ValueError, match="cluster spec"):
            load_spec(str(path))


class TestOperations:
    def test_put_then_get_round_trips(self):
        async def go():
            async with small_cluster() as cluster:
                async with cluster.client() as client:
                    names = sorted(cluster.directory)
                    put = await client.put("color", "teal", names[0])
                    assert put["success"] is True
                    assert put["stored"] is True
                    # Read back from a *different* source node.
                    got = await client.get("color", names[-1])
                    assert got["found"] is True
                    assert got["value"] == "teal"
                    assert got["owner"] == put["owner"]

        run(go())

    def test_get_missing_key_reports_not_found(self):
        async def go():
            async with small_cluster() as cluster:
                async with cluster.client() as client:
                    source = sorted(cluster.directory)[0]
                    got = await client.get("never-stored", source)
                    assert got["success"] is True
                    assert got["found"] is False
                    assert got["value"] is None

        run(go())

    def test_join_then_leave_through_the_wire(self):
        async def go():
            network = CycloidNetwork.with_random_ids(20, 4, seed=3)
            async with LocalCluster(network, servers=2) as cluster:
                async with cluster.client() as client:
                    via = sorted(cluster.directory)[0]
                    joined = await client.join("newcomer", via)
                    assert joined["network_size"] == 21
                    name = joined["joined"]
                    assert name in cluster.directory
                    # The newcomer serves lookups immediately.
                    reply = await client.lookup("some-key", name)
                    assert reply["success"] is True
                    left = await client.leave(name)
                    assert left["left"] == name
                    assert left["network_size"] == 20
                    assert name not in cluster.directory

        run(go())

    def test_unknown_source_is_a_service_error(self):
        async def go():
            async with small_cluster() as cluster:
                directory = dict(cluster.directory)
                first = sorted(directory)[0]
                directory["ghost"] = directory[first]
                async with ClusterClient(directory) as client:
                    with pytest.raises(ClusterError, match="not hosted"):
                        await client.lookup("k", "ghost")

        run(go())


class TestBadFrames:
    async def send_raw(self, address, blob):
        reader, writer = await asyncio.open_connection(*address)
        writer.write(blob)
        await writer.drain()
        try:
            return await asyncio.wait_for(read_frame(reader), 5)
        finally:
            writer.close()

    def test_garbage_gets_error_frame_not_a_crash(self):
        async def go():
            async with small_cluster() as cluster:
                address = cluster.services[0].address
                reply = await self.send_raw(address, b"\x00" * 64)
                assert reply.kind is MessageType.ERROR
                assert reply.rpc == 0
                assert "rejected frame" in reply.payload["error"]
                assert cluster.services[0].frames_rejected == 1
                # The server still answers fresh connections.
                async with cluster.client() as client:
                    pong = await client.ping(address)
                    assert pong["pong"] is True

        run(go())

    def test_oversized_frame_is_rejected_without_buffering(self):
        async def go():
            async with small_cluster() as cluster:
                address = cluster.services[0].address
                # Header declares 2 MiB: rejected on the header alone.
                import struct

                from repro.net.codec import MAGIC, PROTOCOL_VERSION

                header = struct.pack(
                    ">2sBBQI", MAGIC, PROTOCOL_VERSION, 2, 9, 2 << 20
                )
                reply = await self.send_raw(address, header)
                assert reply.kind is MessageType.ERROR
                assert "exceeds" in reply.payload["error"]

        run(go())

    def test_wrong_version_is_rejected(self):
        async def go():
            async with small_cluster() as cluster:
                address = cluster.services[0].address
                blob = bytearray(encode_frame(MessageType.PING, 1, {}))
                blob[2] = 9
                reply = await self.send_raw(address, bytes(blob))
                assert reply.kind is MessageType.ERROR
                assert "version" in reply.payload["error"]

        run(go())

    def test_reply_frame_to_a_server_is_answered_with_error(self):
        async def go():
            async with small_cluster() as cluster:
                address = cluster.services[0].address
                blob = encode_frame(MessageType.REPLY, 11, {})
                reply = await self.send_raw(address, blob)
                assert reply.kind is MessageType.ERROR
                assert reply.rpc == 11
                assert "unexpected" in reply.payload["error"]

        run(go())

    def test_malformed_payload_with_valid_header_shape(self):
        async def go():
            async with small_cluster() as cluster:
                address = cluster.services[0].address
                good = encode_frame(MessageType.PING, 3, {"pad": "xyzw"})
                broken = good[:HEADER_SIZE] + b"\xff" * (
                    len(good) - HEADER_SIZE
                )
                reply = await self.send_raw(address, broken)
                assert reply.kind is MessageType.ERROR
                assert "JSON" in reply.payload["error"]

        run(go())


class TestReplicasThreading:
    """``replicas`` flows cluster -> every service -> spec (S24)."""

    def test_replicas_reach_every_service_and_the_spec(self):
        async def go():
            network = CycloidNetwork.complete(3)
            async with LocalCluster(
                network, servers=3, replicas=2
            ) as cluster:
                assert cluster.replicas == 2
                assert all(
                    service.replicas == 2 for service in cluster.services
                )
                assert cluster.spec()["replicas"] == 2

        run(go())

    def test_default_is_unreplicated(self):
        async def go():
            async with small_cluster() as cluster:
                assert cluster.spec()["replicas"] == 1
                assert all(
                    service.replicas == 1 for service in cluster.services
                )

        run(go())

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ValueError):
            LocalCluster(CycloidNetwork.complete(3), replicas=0)

    def test_ping_reports_replication_telemetry(self):
        async def go():
            network = CycloidNetwork.complete(3)
            async with LocalCluster(
                network, servers=2, replicas=2
            ) as cluster:
                async with cluster.client() as client:
                    source = sorted(cluster.directory)[0]
                    await client.put("telemetry", 1, source)
                    pongs = [
                        await client.ping(tuple(address))
                        for address in cluster.addresses
                    ]
                    assert all(p["replicas"] == 2 for p in pongs)
                    assert sum(p["replica_pushes"] for p in pongs) >= 1

        run(go())
