"""Wire-protocol codec tests: round-trips and malformed-frame rejection."""

import asyncio
import struct

import pytest

from repro.net.codec import (
    Frame,
    FrameError,
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    MessageType,
    PROTOCOL_VERSION,
    decode_frame,
    decode_header,
    encode_frame,
    read_frame,
)


def frame_bytes(kind=MessageType.PING, rpc=7, payload=None):
    return encode_frame(kind, rpc, payload if payload is not None else {})


class TestRoundTrip:
    @pytest.mark.parametrize("kind", list(MessageType))
    def test_every_type_round_trips(self, kind):
        payload = {"key": "k", "nested": {"n": [1, 2, 3]}, "flag": True}
        frame = decode_frame(encode_frame(kind, 123456789, payload))
        assert frame == Frame(kind, 123456789, payload)

    def test_empty_payload_round_trips(self):
        frame = decode_frame(frame_bytes())
        assert frame.kind is MessageType.PING
        assert frame.rpc == 7
        assert frame.payload == {}

    def test_rpc_id_bounds(self):
        top = (1 << 64) - 1
        assert decode_frame(frame_bytes(rpc=top)).rpc == top
        for bad in (-1, 1 << 64):
            with pytest.raises(FrameError):
                encode_frame(MessageType.PING, bad, {})

    def test_header_layout_is_pinned(self):
        buffer = encode_frame(MessageType.LOOKUP, 5, {"a": 1})
        magic, version, kind, rpc, length = struct.unpack(
            ">2sBBQI", buffer[:HEADER_SIZE]
        )
        assert magic == MAGIC == b"RP"
        assert version == PROTOCOL_VERSION == 1
        assert kind == MessageType.LOOKUP
        assert rpc == 5
        assert length == len(buffer) - HEADER_SIZE


class TestRejection:
    def test_bad_magic(self):
        buffer = bytearray(frame_bytes())
        buffer[0:2] = b"XX"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(buffer))

    def test_unknown_version(self):
        buffer = bytearray(frame_bytes())
        buffer[2] = 99
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(buffer))

    def test_unknown_message_type(self):
        buffer = bytearray(frame_bytes())
        buffer[3] = 200
        with pytest.raises(FrameError, match="type"):
            decode_frame(bytes(buffer))

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(
                MessageType.PUT, 1, {"blob": "x" * (MAX_PAYLOAD + 1)}
            )

    def test_oversized_declared_length_rejected_on_decode(self):
        header = struct.pack(
            ">2sBBQI", MAGIC, PROTOCOL_VERSION, 5, 1, MAX_PAYLOAD + 1
        )
        with pytest.raises(FrameError, match="exceeds"):
            decode_header(header)

    def test_custom_payload_limit(self):
        buffer = encode_frame(MessageType.PUT, 1, {"k": "v" * 100})
        with pytest.raises(FrameError, match="exceeds"):
            decode_frame(buffer, max_payload=16)

    def test_truncated_header(self):
        with pytest.raises(FrameError, match="header"):
            decode_header(frame_bytes()[: HEADER_SIZE - 1])

    def test_truncated_payload(self):
        with pytest.raises(FrameError, match="declared"):
            decode_frame(frame_bytes(payload={"k": "value"})[:-3])

    def test_payload_not_json(self):
        good = frame_bytes(payload={"pad": "xxxx"})
        broken = good[:HEADER_SIZE] + b"\xff" * (len(good) - HEADER_SIZE)
        with pytest.raises(FrameError, match="JSON"):
            decode_frame(broken)

    def test_payload_not_an_object(self):
        body = b"[1,2,3]"
        buffer = (
            struct.pack(
                ">2sBBQI", MAGIC, PROTOCOL_VERSION, 5, 1, len(body)
            )
            + body
        )
        with pytest.raises(FrameError, match="object"):
            decode_frame(buffer)

    def test_non_serialisable_payload(self):
        with pytest.raises(FrameError, match="serialisable"):
            encode_frame(MessageType.PUT, 1, {"bad": object()})


class TestStreamReading:
    def read(self, data, **kwargs):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader, **kwargs)

        return asyncio.run(go())

    def test_reads_one_frame(self):
        frame = self.read(frame_bytes(MessageType.GET, 42, {"key": "k"}))
        assert frame == Frame(MessageType.GET, 42, {"key": "k"})

    def test_eof_mid_frame(self):
        with pytest.raises(asyncio.IncompleteReadError):
            self.read(frame_bytes()[:5])

    def test_contract_violation_from_stream(self):
        with pytest.raises(FrameError, match="magic"):
            self.read(b"XX" + frame_bytes()[2:])

    def test_stream_respects_payload_limit(self):
        data = frame_bytes(payload={"k": "v" * 64})
        with pytest.raises(FrameError, match="exceeds"):
            self.read(data, max_payload=8)


class TestErrorCodes:
    """Machine-readable ERROR classification (S24)."""

    def test_known_codes_classify(self):
        from repro.net.codec import ERROR_CODES, error_is_retryable

        assert error_is_retryable("step_failed") is True
        assert error_is_retryable("misrouted") is True
        for fatal in (
            "bad_frame",
            "unknown_node",
            "not_hosted",
            "hop_limit",
            "unknown_operation",
            "bad_request",
            "membership_failed",
            "internal",
        ):
            assert error_is_retryable(fatal) is False
            assert fatal in ERROR_CODES

    def test_unknown_code_defaults_to_fatal(self):
        from repro.net.codec import error_is_retryable

        assert error_is_retryable("made-up-code") is False
        assert error_is_retryable("rpc_failed") is False

    def test_data_plane_types_are_pinned(self):
        # Wire compatibility: the S24 frame types keep their values.
        assert MessageType.CRASH == 10
        assert MessageType.REPLICATE == 11
        assert MessageType.FETCH == 12
        assert MessageType.REPAIR == 13
