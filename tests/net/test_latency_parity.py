"""Sim-vs-live latency parity (§S25): the cluster predicts what the
engine models.

A 16-node d=4 Cycloid cluster runs with a :class:`LatencyModel`
attached.  For the same seeded workload:

* every live reply's ``model_ms`` total must equal the engine record's
  ``latency_ms`` for the same ``(source, key)`` — same model, same
  path, same left-to-right accumulation, so the agreement is checked
  to float tolerance (and is bit-exact in practice);
* every reply's per-hop ``model_ms`` trace entries must sum to the
  reply's own total;
* the measured wall clock of each RPC must be at least the modeled
  total — the servers really sleep the link delays, they do not just
  report them.

Without a model, replies and trace entries must not grow any
``model_ms`` field — the default wire payload stays byte-identical.
"""

import asyncio
import math
import time

from repro.experiments.registry import build_sized_network
from repro.net.cluster import LocalCluster
from repro.sim.latency import LatencyModel
from repro.util.rng import make_rng

#: Millisecond scale kept small so the sleeping cluster stays fast.
MODEL = LatencyModel(
    seed=33,
    regions=3,
    intra_ms=0.2,
    inter_min_ms=0.5,
    inter_max_ms=2.0,
    jitter_ms=0.3,
)


def build():
    return build_sized_network("cycloid", 16, seed=5, cycloid_dimension=4)


def workload(network, count, seed):
    rng = make_rng(seed)
    nodes = network.live_nodes()
    return [
        (
            str(nodes[rng.randrange(len(nodes))].name),
            f"key-{rng.getrandbits(64):016x}-{i}",
        )
        for i in range(count)
    ]


def engine_predictions(network, pairs):
    reference = network.clone()
    by_name = {str(n.name): n for n in reference.live_nodes()}
    return reference.lookup_many(
        ((by_name[source], key) for source, key in pairs), latency=MODEL
    )


async def live_replies(network, pairs, servers, latency):
    timings = []
    async with LocalCluster(
        network, servers=servers, latency=latency
    ) as cluster:
        async with cluster.client() as client:
            replies = []
            for index, (source, key) in enumerate(pairs):
                started = time.perf_counter()
                reply = await client.lookup(key, source, lookup_id=index)
                timings.append((time.perf_counter() - started) * 1000.0)
                replies.append(reply)
    return replies, timings


class TestSimVsLiveLatency:
    def test_live_totals_match_engine_predictions(self):
        network = build()
        pairs = workload(network, 24, seed=61)
        records = engine_predictions(network, pairs)
        replies, timings = asyncio.run(
            live_replies(network, pairs, servers=4, latency=MODEL)
        )
        slept = 0
        for index, (record, reply, wall_ms) in enumerate(
            zip(records, replies, timings)
        ):
            context = f"lookup {index}: {pairs[index]}"
            assert record.latency_ms is not None, context
            assert "model_ms" in reply, context
            # Same pure-function model on both sides: the totals agree
            # within float tolerance of the per-hop accumulation.
            assert math.isclose(
                reply["model_ms"], record.latency_ms, rel_tol=0, abs_tol=1e-9
            ), context
            hop_sum = sum(
                event["model_ms"] for event in reply["trace"]
            )
            assert math.isclose(
                hop_sum, reply["model_ms"], rel_tol=0, abs_tol=1e-9
            ), context
            # The servers actually sleep the modeled delay.
            if reply["model_ms"] > 0:
                assert wall_ms >= reply["model_ms"], context
                slept += 1
        assert slept > 0, "workload never left its source node"

    def test_without_model_no_model_fields_appear(self):
        network = build()
        pairs = workload(network, 8, seed=62)
        replies, _ = asyncio.run(
            live_replies(network, pairs, servers=2, latency=None)
        )
        for reply in replies:
            assert "model_ms" not in reply
            for event in reply["trace"]:
                assert set(event) == {"hop", "node", "phase", "timeouts"}

    def test_spec_advertises_the_model(self):
        async def spec_of(latency):
            async with LocalCluster(
                build(), servers=2, latency=latency
            ) as cluster:
                return cluster.spec()

        spec = asyncio.run(spec_of(MODEL))
        assert LatencyModel.from_config(spec["latency"]) == MODEL
        assert "latency" not in asyncio.run(spec_of(None))
