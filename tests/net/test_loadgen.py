"""Load generator: concurrency, digests, schema guard, live traces."""

import json

import pytest

from repro.experiments.bench import validate_net_report
from repro.net.loadgen import (
    NET_BENCH_SCHEMA,
    build_from_recipe,
    expected_results,
    make_operations,
    partial_report,
    results_digest,
    run_loadgen,
)

BUILD_32 = {"protocol": "cycloid", "nodes": 32, "dimension": 4, "seed": 6}


class TestWorkload:
    def test_operations_are_deterministic(self):
        network = build_from_recipe(BUILD_32)
        first = make_operations(network, 10, 4, seed=3)
        second = make_operations(network, 10, 4, seed=3)
        assert first == second
        assert len(first) == 18  # 10 lookups + 4 puts + 4 gets
        assert [op["op"] for op in first].count("get") == 4

    def test_gets_reuse_put_keys(self):
        network = build_from_recipe(BUILD_32)
        operations = make_operations(network, 0, 5, seed=1)
        puts = {op["key"]: op["value"] for op in operations if op["op"] == "put"}
        gets = {op["key"]: op["expect"] for op in operations if op["op"] == "get"}
        assert puts == gets

    def test_expected_results_leave_the_network_untouched(self):
        network = build_from_recipe(BUILD_32)
        operations = make_operations(network, 6, 0, seed=2)
        before = list(network.query_counts())
        expected_results(network, operations)
        assert list(network.query_counts()) == before

    def test_digest_is_order_insensitive_but_content_sensitive(self):
        network = build_from_recipe(BUILD_32)
        operations = make_operations(network, 8, 0, seed=2)
        expected = expected_results(network, operations)
        shuffled = list(reversed(expected))
        assert results_digest(expected) == results_digest(shuffled)
        tampered = [dict(r) for r in expected]
        tampered[0]["hops"] += 1
        assert results_digest(expected) != results_digest(tampered)


class TestClosedLoopRun:
    def test_64_clients_against_32_nodes_zero_failures(self):
        """The acceptance-criteria run: >= 64 concurrent closed-loop
        clients vs a 32-node cluster, zero failures, digest parity."""
        report = run_loadgen(
            BUILD_32, servers=4, clients=64, lookups=96, puts=16, seed=13
        )
        validate_net_report(report)
        assert report["schema"] == NET_BENCH_SCHEMA
        assert report["clients"] == 64
        assert report["ops"]["total"] == 128
        assert report["ops"]["completed"] == 128
        assert report["ops"]["failures"] == 0
        assert report["digest"]["match"] is True
        assert report["throughput_ops_per_s"] > 0
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]

    def test_digest_is_stable_across_client_counts(self):
        """Scheduling differs wildly between 2 and 32 clients; the
        op-indexed digest must not."""
        few = run_loadgen(
            BUILD_32, servers=2, clients=2, lookups=24, puts=4, seed=9
        )
        many = run_loadgen(
            BUILD_32, servers=4, clients=32, lookups=24, puts=4, seed=9
        )
        assert few["digest"]["live"] == many["digest"]["live"]
        assert few["digest"]["match"] and many["digest"]["match"]

    def test_trace_lines_carry_rpc_and_latency(self, tmp_path):
        trace_path = str(tmp_path / "live.jsonl")
        report = run_loadgen(
            {"protocol": "cycloid", "dimension": 3, "seed": 2},
            servers=2,
            clients=4,
            lookups=10,
            puts=2,
            seed=5,
            trace_path=trace_path,
        )
        lines = [
            json.loads(line)
            for line in open(trace_path, encoding="utf-8")
        ]
        assert lines
        assert report["trace"]["lines"] == len(lines)
        total_hops = sum(r["hops"] for r in expected_results(
            build_from_recipe({"protocol": "cycloid", "dimension": 3, "seed": 2}),
            make_operations(
                build_from_recipe(
                    {"protocol": "cycloid", "dimension": 3, "seed": 2}
                ),
                10,
                2,
                seed=5,
            ),
        ))
        assert len(lines) == total_hops
        for line in lines:
            # The simulated --trace hop schema...
            assert set(line) == {
                "lookup", "hop", "node", "phase", "timeouts",
                # ...plus the live-only per-RPC fields.
                "rpc", "latency_ms",
            }
            assert line["rpc"] >= 1
            assert line["latency_ms"] > 0


class TestSchemaGuard:
    def make_report(self):
        return run_loadgen(
            {"protocol": "cycloid", "dimension": 3, "seed": 1},
            servers=2,
            clients=4,
            lookups=6,
            puts=2,
            seed=3,
        )

    def test_valid_report_passes(self):
        validate_net_report(self.make_report())

    def test_wrong_schema_tag_rejected(self):
        report = self.make_report()
        report["schema"] = "repro/net-bench/v0"
        with pytest.raises(ValueError, match="schema"):
            validate_net_report(report)

    def test_missing_section_rejected(self):
        report = self.make_report()
        del report["latency_ms"]
        with pytest.raises(ValueError, match="latency_ms"):
            validate_net_report(report)

    def test_missing_nested_key_rejected(self):
        report = self.make_report()
        del report["ops"]["failures"]
        with pytest.raises(ValueError, match="failures"):
            validate_net_report(report)

    def test_inconsistent_match_flag_rejected(self):
        report = self.make_report()
        report["digest"]["match"] = not report["digest"]["match"]
        with pytest.raises(ValueError, match="inconsistent"):
            validate_net_report(report)

    def test_malformed_digest_rejected(self):
        report = self.make_report()
        report["digest"]["live"] = "not-a-hash"
        with pytest.raises(ValueError, match="sha256"):
            validate_net_report(report)

    def test_missing_mode_rejected(self):
        """``mode`` is mandatory, not defaulted: a report that omits it
        (the old SIGINT-before-run bug) must fail the guard instead of
        silently validating as closed-loop."""
        report = self.make_report()
        del report["mode"]
        with pytest.raises(ValueError, match="mode"):
            validate_net_report(report)


class TestChurnSchemaGuard:
    """The ``"open-churn"`` report mode of the same schema tag."""

    def make_report(self):
        from repro.net.loadgen import run_churnstorm
        from repro.sim.faults import ChurnPlan

        return run_churnstorm(
            {"protocol": "cycloid", "dimension": 3, "seed": 1},
            servers=2,
            replicas=2,
            rate=300.0,
            operations=60,
            churn=ChurnPlan(seed=5, kills=2),
            seed=9,
            clients=4,
        )

    def test_valid_churn_report_passes(self):
        report = self.make_report()
        assert report["mode"] == "open-churn"
        assert report["complete"] is True
        validate_net_report(report)

    def test_churn_report_needs_no_digest(self):
        report = self.make_report()
        assert "digest" not in report
        validate_net_report(report)

    def test_missing_churn_section_rejected(self):
        report = self.make_report()
        del report["churn"]
        with pytest.raises(ValueError, match="churn"):
            validate_net_report(report)

    def test_missing_survival_rate_rejected(self):
        report = self.make_report()
        del report["churn"]["survival_rate"]
        with pytest.raises(ValueError, match="survival_rate"):
            validate_net_report(report)

    def test_inconsistent_survival_rate_rejected(self):
        report = self.make_report()
        report["churn"]["survival_rate"] = 0.5  # but nothing was lost
        with pytest.raises(ValueError, match="survival_rate"):
            validate_net_report(report)

    def test_unknown_mode_rejected(self):
        report = self.make_report()
        report["mode"] = "sideways"
        with pytest.raises(ValueError, match="mode"):
            validate_net_report(report)

    def test_missing_mode_rejected_for_churn_shape_too(self):
        report = self.make_report()
        del report["mode"]
        with pytest.raises(ValueError, match="mode"):
            validate_net_report(report)

    def test_closed_loop_report_is_marked_complete(self):
        report = run_loadgen(
            {"protocol": "cycloid", "dimension": 3, "seed": 1},
            servers=2,
            clients=4,
            lookups=4,
            puts=2,
            seed=3,
        )
        assert report["mode"] == "closed-loop"
        assert report["complete"] is True


class TestInterruptedRun:
    """SIGINT flushes a partial report instead of discarding the run."""

    def test_preset_stop_event_drains_without_work(self):
        import asyncio

        from repro.net.cluster import LocalCluster
        from repro.net.loadgen import _run_clients
        from repro.sim.faults import RetryPolicy

        async def go():
            network = build_from_recipe(
                {"protocol": "cycloid", "dimension": 3, "seed": 1}
            )
            operations = make_operations(network, 20, 0, seed=2)
            async with LocalCluster(network, servers=2) as cluster:
                stop = asyncio.Event()
                stop.set()
                outcome = await _run_clients(
                    cluster.directory,
                    operations,
                    2,
                    RetryPolicy(),
                    5.0,
                    stop,
                )
                assert outcome["interrupted"] is True
                assert outcome["results"] == []
                assert outcome["failures"] == 0

        asyncio.run(go())

    def test_sigint_mid_run_flushes_partial_report(self, tmp_path):
        import os
        import pathlib
        import signal
        import subprocess
        import sys
        import time

        root = pathlib.Path(__file__).parents[2]
        out = tmp_path / "partial.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "loadgen",
                "--protocol", "cycloid", "--dimension", "3",
                "--servers", "2", "--clients", "2",
                "--lookups", "20000", "--puts", "0",
                "--output", str(out),
            ],
            cwd=root,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            time.sleep(2.5)
            process.send_signal(signal.SIGINT)
            process.wait(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
        report = json.loads(out.read_text())
        if report["complete"]:  # pragma: no cover - very fast machine
            pytest.skip("run finished before SIGINT landed")
        assert report["complete"] is False
        assert report["ops"]["completed"] < report["ops"]["total"]
        # The partial report still passes the schema guard — which now
        # insists on ``mode``.
        assert report["mode"] == "closed-loop"
        validate_net_report(report)


class TestPartialReportBranch:
    """SIGINT can land before the runner installs its handler (cluster
    still booting): ``run_loadgen`` then falls back to
    :func:`partial_report`, whose shape must satisfy the same guard as
    a finished run — ``mode`` included."""

    def test_partial_report_passes_schema_guard(self):
        report = partial_report(
            BUILD_32, servers=4, clients=8, lookups=20, puts=4, seed=3
        )
        validate_net_report(report)
        assert report["schema"] == NET_BENCH_SCHEMA
        # The regression: very-early interrupts used to omit ``mode``.
        assert report["mode"] == "closed-loop"
        assert report["complete"] is False
        assert report["interrupted"] == "before-run"
        assert report["ops"]["total"] == 28  # 20 lookups + 2 * 4 puts
        assert report["ops"]["completed"] == 0
        assert report["errors"] == []

    def test_empty_digest_is_internally_consistent(self):
        """With work pending, the empty live digest cannot claim parity
        — ``match`` must be False so the guard's consistency check
        holds; with a zero-op workload it legitimately matches."""
        pending = partial_report(
            BUILD_32, servers=2, clients=2, lookups=6, puts=0, seed=1
        )
        assert pending["digest"]["live"] == results_digest([])
        assert pending["digest"]["match"] is False
        validate_net_report(pending)

        empty = partial_report(
            BUILD_32, servers=2, clients=2, lookups=0, puts=0, seed=1
        )
        assert empty["ops"]["total"] == 0
        assert empty["digest"]["match"] is True
        validate_net_report(empty)
