"""S24 churn-tolerant data plane: replication, crash repair, the storm.

The acceptance bar of the whole layer lives here: a seeded churn plan
kills and rejoins a fifth of the cluster's virtual nodes mid-run while
an open-loop workload hammers it, and with ``replicas >= 2`` not one
acknowledged write may be lost.
"""

import asyncio

import pytest

from repro.core import CycloidNetwork
from repro.dht.storage import replica_set
from repro.net.client import ClusterError
from repro.net.cluster import LocalCluster
from repro.net.loadgen import make_open_operations, run_churnstorm
from repro.sim.faults import ChurnEvent, ChurnPlan


def run(coro):
    return asyncio.run(coro)


def replicated_cluster(replicas=2, servers=3, nodes=24, seed=5):
    network = CycloidNetwork.with_random_ids(nodes, 4, seed=seed)
    return LocalCluster(
        network,
        servers=servers,
        build={"protocol": "cycloid", "dimension": 4, "seed": seed},
        replicas=replicas,
    )


class TestChurnPlan:
    def test_schedule_is_deterministic(self):
        names = [f"n{i}" for i in range(16)]
        plan = ChurnPlan(seed=9, kills=4)
        assert plan.schedule(names, 10.0) == plan.schedule(names, 10.0)

    def test_different_seeds_pick_different_victims(self):
        names = [f"n{i}" for i in range(16)]
        a = ChurnPlan(seed=1, kills=4).schedule(names, 10.0)
        b = ChurnPlan(seed=2, kills=4).schedule(names, 10.0)
        assert [e.node for e in a] != [e.node for e in b]

    def test_events_stay_inside_the_run(self):
        events = ChurnPlan(seed=3, kills=5).schedule(
            [f"n{i}" for i in range(12)], 7.0
        )
        assert events == sorted(events, key=lambda e: e.time)
        assert all(0.0 <= e.time <= 7.0 for e in events)

    def test_every_victim_rejoins_after_its_crash(self):
        events = ChurnPlan(seed=4, kills=3).schedule(
            [f"n{i}" for i in range(10)], 10.0
        )
        crashes = {e.node: e.time for e in events if e.action == "crash"}
        joins = {e.node: e.time for e in events if e.action == "join"}
        assert set(joins) == set(crashes)
        assert all(joins[n] >= crashes[n] for n in crashes)

    def test_no_rejoin_plan_only_crashes(self):
        events = ChurnPlan(seed=4, kills=3, rejoin=False).schedule(
            [f"n{i}" for i in range(10)], 10.0
        )
        assert [e.action for e in events] == ["crash"] * 3

    def test_someone_always_survives(self):
        events = ChurnPlan(seed=6, kills=99, rejoin=False).schedule(
            ["a", "b", "c"], 5.0
        )
        assert len(events) == 2  # at most len(names) - 1 victims

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            ChurnPlan(seed=1, start=0.8, end=0.2)
        with pytest.raises(ValueError):
            ChurnPlan(seed=1, kills=-1)
        with pytest.raises(TypeError):
            ChurnPlan(seed="nope")

    def test_events_are_plain_records(self):
        event = ChurnEvent(1.5, "crash", "n3")
        assert (event.time, event.action, event.node) == (1.5, "crash", "n3")


class TestReplicatedServing:
    def test_put_is_replicated_to_the_leaf_set(self):
        async def go():
            async with replicated_cluster(replicas=2) as cluster:
                async with cluster.client() as client:
                    source = sorted(cluster.directory)[0]
                    put = await client.put("color", "teal", source)
                    assert put["stored"] is True
                    assert put["replicas"] == 2
                    holders = [
                        str(node.name)
                        for node in replica_set(cluster.network, "color", 2)
                    ]
                    copies = 0
                    for service in cluster.services:
                        for name in holders:
                            if name in service.hosted:
                                found, value = service.storage.get(
                                    name, "color"
                                )
                                assert found and value == "teal"
                                copies += 1
                    assert copies == 2

        run(go())

    def test_crash_of_the_owner_keeps_the_value_readable(self):
        async def go():
            async with replicated_cluster(replicas=2) as cluster:
                async with cluster.client() as client:
                    names = sorted(cluster.directory)
                    await client.put("song", "bytes", names[0])
                    owner = str(
                        cluster.network.owner_of_key("song").name
                    )
                    reply = await client.crash(owner)
                    assert reply["crashed"] == owner
                    assert owner not in cluster.directory
                    survivor = sorted(cluster.directory)[0]
                    got = await client.get("song", survivor)
                    assert got["found"] is True
                    assert got["value"] == "bytes"

        run(go())

    def test_crash_reply_carries_repair_telemetry(self):
        async def go():
            async with replicated_cluster(replicas=2) as cluster:
                async with cluster.client() as client:
                    names = sorted(cluster.directory)
                    for i in range(8):
                        await client.put(f"k{i}", i, names[i])
                    reply = await client.crash(names[3])
                    for field in (
                        "lost_pairs",
                        "route_repairs",
                        "repushed_pairs",
                        "dropped_copies",
                        "repair_ms",
                    ):
                        assert field in reply
                    assert reply["network_size"] == len(names) - 1
                    assert reply["repair_ms"] >= 0.0

        run(go())

    def test_read_repair_restores_a_lost_primary_copy(self):
        async def go():
            async with replicated_cluster(replicas=2) as cluster:
                async with cluster.client() as client:
                    source = sorted(cluster.directory)[0]
                    await client.put("fragile", 7, source)
                    owner = str(
                        cluster.network.owner_of_key("fragile").name
                    )
                    # Sabotage: silently delete the primary copy.
                    for service in cluster.services:
                        if owner in service.hosted:
                            assert service.storage.drop_pair(
                                owner, "fragile"
                            )
                    got = await client.get("fragile", source)
                    assert got["found"] is True
                    assert got["value"] == 7
                    assert got["repaired"] is True
                    # The primary copy is back for the next reader.
                    repairs = sum(
                        service.read_repairs
                        for service in cluster.services
                    )
                    assert repairs == 1

        run(go())

    def test_crashing_a_whole_replica_set_loses_the_key(self):
        async def go():
            async with replicated_cluster(replicas=2) as cluster:
                async with cluster.client() as client:
                    source = sorted(cluster.directory)[0]
                    await client.put("doomed", "gone", source)
                    # Kill both holders in one breath: the second dies
                    # before repair can recreate a second copy from the
                    # first... but active rereplication runs inside each
                    # CRASH, so the copy survives unless we bypass it by
                    # dropping the pair from every shard directly.
                    holders = [
                        str(node.name)
                        for node in replica_set(
                            cluster.network, "doomed", 2
                        )
                    ]
                    for service in cluster.services:
                        for name in holders:
                            if name in service.hosted:
                                service.storage.drop_pair(name, "doomed")
                    got = await client.get("doomed", source)
                    assert got["found"] is False

        run(go())


class TestCodedErrors:
    def test_unknown_node_is_fatal(self):
        async def go():
            async with replicated_cluster() as cluster:
                async with cluster.client() as client:
                    with pytest.raises(ClusterError) as info:
                        await client.get("k", "no-such-node")
                    assert info.value.code == "unknown_node"
                    assert info.value.retryable is False

        run(go())

    def test_crashing_an_unknown_node_is_coded(self):
        async def go():
            async with replicated_cluster() as cluster:
                async with cluster.client() as client:
                    with pytest.raises(ClusterError) as info:
                        await client.crash("ghost")
                    assert info.value.code == "unknown_node"

        run(go())

    def test_crashing_the_last_hosted_node_is_refused(self):
        async def go():
            network = CycloidNetwork.with_random_ids(4, 3, seed=2)
            async with LocalCluster(
                network, servers=4, replicas=1
            ) as cluster:
                lone = [
                    s for s in cluster.services if len(s.hosted) == 1
                ][0]
                name = sorted(lone.hosted)[0]
                async with cluster.client() as client:
                    with pytest.raises(ClusterError) as info:
                        await client.crash(name)
                    assert info.value.code == "bad_request"

        run(go())


class TestChurnstorm:
    def test_zero_acked_writes_lost_under_twenty_percent_churn(self):
        # 16 virtual nodes, 4 crashed and rejoined mid-run: 25% churn.
        report = run_churnstorm(
            {"protocol": "cycloid", "dimension": 4, "seed": 42,
             "nodes": 16},
            servers=4,
            replicas=2,
            rate=250.0,
            operations=200,
            churn=ChurnPlan(seed=7, kills=4, rejoin=True),
            seed=11,
            clients=8,
        )
        churn = report["churn"]
        assert report["complete"] is True
        assert report["mode"] == "open-churn"
        assert churn["crashes"] == 4
        assert churn["joins"] == 4
        assert churn["acked_writes"] > 0
        assert churn["lost_acked_keys"] == 0
        assert churn["survival_rate"] == 1.0
        assert report["ops"]["failures"] == 0
        assert report["ops"]["completed"] == 200
        # The validator accepts the open-churn shape.
        from repro.experiments.bench import validate_net_report

        validate_net_report(report)

    def test_open_workload_is_seed_deterministic(self):
        a = make_open_operations(50, seed=3, rate=100.0)
        b = make_open_operations(50, seed=3, rate=100.0)
        c = make_open_operations(50, seed=4, rate=100.0)
        assert a == b
        assert a != c

    def test_open_workload_shape(self):
        ops = make_open_operations(
            200, seed=1, rate=100.0, key_universe=16, put_fraction=0.5
        )
        times = [op["scheduled"] for op in ops]
        assert times == sorted(times)
        assert all(op["op"] in ("put", "get") for op in ops)
        assert all("value" in op for op in ops if op["op"] == "put")
        assert all(0.0 <= op["source_pick"] < 1.0 for op in ops)
        # Zipf head: the most popular key dominates a uniform share.
        from collections import Counter

        top = Counter(op["key"] for op in ops).most_common(1)[0][1]
        assert top > len(ops) / 16

    def test_open_workload_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_open_operations(-1, seed=1, rate=10.0)
        with pytest.raises(ValueError):
            make_open_operations(1, seed=1, rate=0.0)
        with pytest.raises(ValueError):
            make_open_operations(1, seed=1, rate=10.0, key_universe=0)
        with pytest.raises(ValueError):
            make_open_operations(1, seed=1, rate=10.0, put_fraction=2.0)


class TestStepValidation:
    """Malformed STEP continuations answer coded errors, not tracebacks."""

    async def step_error(self, cluster, payload):
        from repro.net.codec import (
            MessageType,
            encode_frame,
            read_frame,
        )

        address = cluster.services[0].address
        reader, writer = await asyncio.open_connection(*address)
        writer.write(encode_frame(MessageType.STEP, 1, payload))
        await writer.drain()
        try:
            reply = await asyncio.wait_for(read_frame(reader), 5)
        finally:
            writer.close()
        assert reply.kind is MessageType.ERROR
        return reply.payload

    def test_unknown_operation_is_coded(self):
        async def go():
            async with replicated_cluster() as cluster:
                payload = await self.step_error(
                    cluster, {"op": "frobnicate", "key": "k"}
                )
                assert payload["code"] == "unknown_operation"
                assert "frobnicate" in payload["error"]

        run(go())

    def test_missing_key_is_coded(self):
        async def go():
            async with replicated_cluster() as cluster:
                payload = await self.step_error(cluster, {"op": "get"})
                assert payload["code"] == "bad_request"

        run(go())

    def test_hop_limit_is_coded(self):
        async def go():
            async with replicated_cluster() as cluster:
                payload = await self.step_error(
                    cluster,
                    {"op": "get", "key": "k", "hops": 10**9},
                )
                assert payload["code"] == "hop_limit"

        run(go())

    def test_misrouted_step_is_coded_and_retryable(self):
        async def go():
            from repro.net.codec import error_is_retryable

            async with replicated_cluster(servers=2) as cluster:
                foreign = sorted(cluster.services[1].hosted)[0]
                payload = await self.step_error(
                    cluster,
                    {"op": "get", "key": "k", "current": foreign},
                )
                assert payload["code"] == "misrouted"
                assert error_is_retryable(payload["code"]) is True

        run(go())
