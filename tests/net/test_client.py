"""Client retry semantics: budget, backoff schedule, timeouts."""

import asyncio

import pytest

from repro.net.client import ClusterClient, ClusterError
from repro.net.codec import MessageType, read_frame, write_frame
from repro.sim.faults import RetryPolicy


class TestRetryPolicy:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(budget=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(
            budget=5, base_delay=0.01, multiplier=2.0, max_delay=0.05
        )
        assert policy.delays() == (0.01, 0.02, 0.04, 0.05, 0.05)

    def test_zero_budget_has_no_delays(self):
        assert RetryPolicy(budget=0).delays() == ()


def run(coro):
    return asyncio.run(coro)


async def start_black_hole():
    """A server that reads frames and never replies."""
    seen = []

    async def handle(reader, writer):
        try:
            while True:
                frame = await read_frame(reader)
                seen.append(frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[:2], seen


async def start_refuser():
    """An address with nothing listening behind it."""
    server = await asyncio.start_server(
        lambda r, w: w.close(), "127.0.0.1", 0
    )
    address = server.sockets[0].getsockname()[:2]
    server.close()
    await server.wait_closed()
    return address


class TestClientRetries:
    def test_timeout_consumes_exact_retry_budget(self):
        async def go():
            server, address, seen = await start_black_hole()
            policy = RetryPolicy(budget=2, base_delay=0.001, max_delay=0.002)
            client = ClusterClient(
                {"n0": list(address)}, retry=policy, timeout=0.05
            )
            try:
                with pytest.raises(ClusterError) as excinfo:
                    await client.lookup("k", "n0")
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            # budget b => b + 1 attempts, the engine's retry semantics.
            assert len(seen) == 3
            assert "after 3 attempts" in str(excinfo.value)
            assert "retry budget 2" in str(excinfo.value)
            assert client.retries == 2

        run(go())

    def test_zero_budget_fails_on_first_timeout(self):
        async def go():
            server, address, seen = await start_black_hole()
            client = ClusterClient(
                {"n0": list(address)},
                retry=RetryPolicy(budget=0),
                timeout=0.05,
            )
            try:
                with pytest.raises(ClusterError, match="after 1 attempts"):
                    await client.get("k", "n0")
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            assert len(seen) == 1
            assert client.retries == 0

        run(go())

    def test_connection_refused_retries_then_fails(self):
        async def go():
            address = await start_refuser()
            client = ClusterClient(
                {"n0": list(address)},
                retry=RetryPolicy(budget=1, base_delay=0.001),
                timeout=0.05,
            )
            try:
                with pytest.raises(ClusterError, match="retry budget 1"):
                    await client.ping(address)
            finally:
                await client.close()
            assert client.retries == 1

        run(go())

    def test_unknown_node_is_not_retried(self):
        client = ClusterClient({"n0": ["127.0.0.1", 1]})
        with pytest.raises(ClusterError, match="no server hosts"):
            client.address_of("missing")

    def test_server_error_reply_is_not_retried(self):
        async def go():
            async def handle(reader, writer):
                try:
                    frame = await read_frame(reader)
                    write_frame(
                        writer,
                        MessageType.ERROR,
                        frame.rpc,
                        {"error": "nope"},
                    )
                    await writer.drain()
                except (asyncio.IncompleteReadError, ConnectionError):
                    pass

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            address = server.sockets[0].getsockname()[:2]
            client = ClusterClient(
                {"n0": list(address)}, retry=RetryPolicy(budget=3)
            )
            try:
                with pytest.raises(ClusterError, match="nope"):
                    await client.lookup("k", "n0")
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            # An ERROR frame is an answer, not a transport failure.
            assert client.retries == 0

        run(go())
