"""Shared fixtures for the test suite.

Networks are deliberately small (d = 3..5, a few hundred nodes) so the
full suite stays fast; the benchmark harness exercises paper-scale
configurations.
"""

from __future__ import annotations

import pytest

from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.koorde import KoordeNetwork
from repro.util.rng import make_rng
from repro.viceroy import ViceroyNetwork


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def cycloid_small():
    """Complete 4-dimensional Cycloid (64 nodes)."""
    return CycloidNetwork.complete(4)


@pytest.fixture
def cycloid_sparse():
    """Sparse 6-dimensional Cycloid (100 of 384 ids)."""
    return CycloidNetwork.with_random_ids(100, 6, seed=7)


@pytest.fixture
def chord_small():
    """Chord with 100 nodes on an 8-bit ring."""
    return ChordNetwork.with_random_ids(100, 8, seed=7)


@pytest.fixture
def koorde_small():
    """Koorde with 100 nodes on an 8-bit ring."""
    return KoordeNetwork.with_random_ids(100, 8, seed=7)


@pytest.fixture
def viceroy_small():
    """Viceroy with 100 nodes."""
    return ViceroyNetwork.with_random_ids(100, seed=7)


@pytest.fixture(
    params=["cycloid", "chord", "koorde", "viceroy"],
    ids=["cycloid", "chord", "koorde", "viceroy"],
)
def any_network(request, cycloid_sparse, chord_small, koorde_small, viceroy_small):
    """Parametrised fixture running a test against every protocol.

    All four networks hold 100 nodes with room for joins (the Cycloid
    variant uses a 384-id space).
    """
    return {
        "cycloid": cycloid_sparse,
        "chord": chord_small,
        "koorde": koorde_small,
        "viceroy": viceroy_small,
    }[request.param]
