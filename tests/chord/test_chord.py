"""Chord protocol tests: wiring, routing, membership, failures."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chord import ChordNetwork
from repro.util.rng import make_rng, sample_pairs


class TestConstruction:
    def test_complete(self):
        network = ChordNetwork.complete(5)
        assert network.size == 32
        network.check_invariants()

    def test_random_ids_distinct(self):
        network = ChordNetwork.with_random_ids(100, 8, seed=1)
        ids = [n.id for n in network.live_nodes()]
        assert len(set(ids)) == 100

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError):
            ChordNetwork.with_random_ids(300, 8, seed=1)

    def test_explicit_ids(self):
        network = ChordNetwork.with_ids([3, 7, 200], 8)
        assert [n.id for n in network.live_nodes()] == [3, 7, 200]


class TestWiring:
    @pytest.fixture(scope="class")
    def network(self):
        return ChordNetwork.with_ids([0, 10, 50, 120, 200], 8)

    def test_successor_pointers(self, network):
        node = network.ring.get(10)
        assert node.successor.id == 50
        assert [s.id for s in node.successors][:3] == [50, 120, 200]

    def test_predecessor_pointers(self, network):
        assert network.ring.get(0).predecessor.id == 200

    def test_fingers_target_powers_of_two(self, network):
        node = network.ring.get(0)
        for i, finger in enumerate(node.fingers):
            expected = network.ring.successor_id((0 + (1 << i)) % 256)
            assert finger.id == expected

    def test_degree_is_order_log_n(self):
        network = ChordNetwork.with_random_ids(128, 10, seed=2)
        degrees = [n.degree for n in network.live_nodes()]
        assert max(degrees) <= 2 * 10 + 2  # fingers + successor list + pred

    def test_successor_list_default_is_bits(self):
        network = ChordNetwork.with_random_ids(64, 9, seed=3)
        assert network.successor_list_size == 9


class TestRouting:
    def test_exhaustive_small_network(self):
        network = ChordNetwork.with_ids([1, 5, 9, 14], 4)
        for source in network.live_nodes():
            for key in range(16):
                record = network.route(source, key)
                assert record.success, (source.id, key)
                assert record.owner == network.owner_of_id(key).name

    def test_logarithmic_path_length(self):
        network = ChordNetwork.with_random_ids(256, 10, seed=4)
        rng = make_rng(5)
        hops = [
            network.route(s, t.id).hops
            for s, t in sample_pairs(network.live_nodes(), 400, rng)
        ]
        assert sum(hops) / len(hops) <= 10  # ~0.5 log2(256) expected

    def test_owner_of_key_is_successor(self):
        network = ChordNetwork.with_ids([10, 100], 8)
        assert network.owner_of_id(50).id == 100
        assert network.owner_of_id(150).id == 10  # wraps
        assert network.owner_of_id(100).id == 100  # exact

    def test_phases_are_finger_and_successor(self):
        network = ChordNetwork.with_random_ids(100, 8, seed=6)
        rng = make_rng(7)
        source, target = next(sample_pairs(network.live_nodes(), 1, rng))
        record = network.route(source, target.id)
        assert set(record.phase_hops) == {"finger", "successor"}

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(
        ids=st.sets(st.integers(0, 255), min_size=1, max_size=30),
        key=st.integers(0, 255),
        source_index=st.integers(0, 1000),
    )
    def test_routing_matches_owner_property(self, ids, key, source_index):
        network = ChordNetwork.with_ids(sorted(ids), 8)
        nodes = network.live_nodes()
        source = nodes[source_index % len(nodes)]
        record = network.route(source, key)
        assert record.success


class TestMembership:
    def test_join_updates_ring_neighbors(self):
        network = ChordNetwork.with_ids([10, 100], 8)
        node = network.join("n")
        pred = network.ring.predecessor(node.id)
        assert pred.successor is node
        succ = network.ring.successor((node.id + 1) % 256)
        assert succ.predecessor is node

    def test_leave_splices_ring(self):
        network = ChordNetwork.with_ids([10, 100, 200], 8)
        middle = network.ring.get(100)
        network.leave(middle)
        assert network.ring.get(10).successor.id == 200
        assert network.ring.get(200).predecessor.id == 10

    def test_fingers_stale_after_leave(self):
        network = ChordNetwork.complete(6)
        rng = make_rng(8)
        for node in rng.sample(list(network.live_nodes()), 20):
            network.leave(node)
        stale = sum(
            1
            for node in network.live_nodes()
            for finger in node.fingers
            if finger is not None and not finger.alive
        )
        assert stale > 0

    def test_mass_departure_no_lookup_failures(self):
        # Table 4: Chord resolves everything thanks to its log-n
        # successor list.
        network = ChordNetwork.complete(9)
        rng = make_rng(9)
        for node in list(network.live_nodes()):
            if rng.random() < 0.5 and network.size > 1:
                network.leave(node)
        for source, target in sample_pairs(network.live_nodes(), 500, rng):
            assert network.route(source, target.id).success

    def test_timeouts_grow_with_departures(self):
        totals = []
        for probability in (0.1, 0.4):
            network = ChordNetwork.complete(9)
            rng = make_rng(10)
            for node in list(network.live_nodes()):
                if rng.random() < probability and network.size > 1:
                    network.leave(node)
            rng2 = make_rng(11)
            totals.append(
                sum(
                    network.route(s, t.id).timeouts
                    for s, t in sample_pairs(network.live_nodes(), 300, rng2)
                )
            )
        assert totals[1] > totals[0]

    def test_stabilize_clears_timeouts(self):
        network = ChordNetwork.complete(8)
        rng = make_rng(12)
        for node in rng.sample(list(network.live_nodes()), 100):
            network.leave(node)
        network.stabilize()
        network.check_invariants()
        rng2 = make_rng(13)
        for source, target in sample_pairs(network.live_nodes(), 200, rng2):
            assert network.route(source, target.id).timeouts == 0
