"""Tests for Cycloid routing internals: arc test, route state, handoff."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CycloidNetwork
from repro.core.network import _RouteState, _in_cubical_arc
from repro.dht.identifiers import CycloidId
from repro.util.rng import make_rng


class TestInCubicalArc:
    def test_plain_arc(self):
        assert _in_cubical_arc(5, 3, 8, 16)
        assert _in_cubical_arc(3, 3, 8, 16)  # closed left
        assert _in_cubical_arc(8, 3, 8, 16)  # closed right
        assert not _in_cubical_arc(9, 3, 8, 16)

    def test_wrapping_arc(self):
        assert _in_cubical_arc(1, 14, 3, 16)
        assert _in_cubical_arc(14, 14, 3, 16)
        assert not _in_cubical_arc(8, 14, 3, 16)

    def test_degenerate_single_point(self):
        assert _in_cubical_arc(4, 4, 4, 16)
        assert not _in_cubical_arc(5, 4, 4, 16)

    @given(
        st.integers(0, 15), st.integers(0, 15), st.integers(0, 15)
    )
    def test_matches_enumeration(self, point, left, right):
        members = {left}
        cursor = left
        while cursor != right:
            cursor = (cursor + 1) % 16
            members.add(cursor)
        if left == right:
            members = {left}
        assert _in_cubical_arc(point, left, right, 16) == (point in members)


class TestRouteState:
    def make_nodes(self):
        network = CycloidNetwork.complete(4)
        return network, network.live_nodes()

    def test_observe_tracks_best(self):
        network, nodes = self.make_nodes()
        key = CycloidId(2, 9, 4)
        state = _RouteState(key)
        for node in nodes[:10]:
            state.observe(node)
        best = min(nodes[:10], key=lambda n: key.distance_to(n.id))
        assert state.best is best

    def test_observe_ignores_dead(self):
        network, nodes = self.make_nodes()
        key = nodes[5].id
        state = _RouteState(key)
        network.fail(nodes[5])
        state.observe(nodes[5])
        assert state.best is None
        state.observe(nodes[6])
        assert state.best is nodes[6]

    def test_visited_and_explored_start_empty(self):
        state = _RouteState(CycloidId(0, 0, 4))
        assert not state.visited
        assert not state.explored_cycles


class TestBestObservedHandoff:
    def test_lookup_delivers_to_best_observed(self):
        """The terminating node hands the request to the closest live
        node the message saw (§3.1's termination check)."""
        network = CycloidNetwork.with_random_ids(120, 6, seed=3)
        rng = make_rng(4)
        nodes = network.live_nodes()
        for index in range(200):
            source = nodes[rng.randrange(len(nodes))]
            key = network.key_id(f"handoff-{index}")
            record = network.route(source, key)
            owner = network.owner_of_id(key)
            assert record.owner == owner.name
            # The delivered-to node is the distance-minimal node on the
            # path.
            by_name = {n.name: n for n in nodes}
            distances = [
                key.distance_to(by_name[name].id) for name in record.path
            ]
            assert min(distances) == key.distance_to(owner.id)

    def test_paths_never_revisit_nodes_when_stable(self):
        network = CycloidNetwork.complete(5)
        rng = make_rng(5)
        nodes = network.live_nodes()
        for index in range(300):
            source = nodes[rng.randrange(len(nodes))]
            target = nodes[rng.randrange(len(nodes))]
            record = network.route(source, target.id)
            assert len(record.path) == len(set(record.path)), record.path


class TestHopLimitSafety:
    def test_hop_limit_never_hit_in_stable_networks(self):
        for population, dimension in ((30, 5), (200, 7)):
            network = CycloidNetwork.with_random_ids(
                population, dimension, seed=6
            )
            rng = make_rng(7)
            nodes = network.live_nodes()
            for index in range(200):
                source = nodes[rng.randrange(len(nodes))]
                key = network.key_id(f"limit-{index}")
                record = network.route(source, key)
                assert record.hops < 6 * dimension
