"""Cycloid routing tests (paper §3.2), anchored on the Fig. 4 example."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CycloidNetwork
from repro.dht.identifiers import CycloidId, cycloid_space_size
from repro.util.rng import make_rng, sample_pairs


class TestFig4Example:
    """Routing from (0,0100) to (2,1111) in a complete 4-dim Cycloid."""

    @pytest.fixture(scope="class")
    def network(self):
        return CycloidNetwork.complete(4)

    def test_route_succeeds(self, network):
        source = network.topology.get(0, 0b0100)
        record = network.route(source, CycloidId(2, 0b1111, 4))
        assert record.success

    def test_uses_all_three_phases(self, network):
        source = network.topology.get(0, 0b0100)
        record = network.route(source, CycloidId(2, 0b1111, 4))
        assert record.phase_hops["ascending"] >= 1
        assert record.phase_hops["descending"] >= 1
        assert record.phase_hops["traverse"] >= 1

    def test_path_length_is_bounded_by_example(self, network):
        # The paper's example path takes 5 hops; the complete network
        # lets ascending reach the primary in one hop so ours is <= 5.
        source = network.topology.get(0, 0b0100)
        record = network.route(source, CycloidId(2, 0b1111, 4))
        assert record.hops <= 5

    def test_descending_corrects_prefix(self, network):
        # From (3,0010), one cubical hop must reach cycle 1010 (fix bit
        # 3), as in the example.
        node = network.topology.get(3, 0b0010)
        assert node.cubical_neighbor.cubical >> 3 == 0b1


class TestCompleteNetworkRouting:
    @pytest.fixture(scope="class", params=[3, 4, 5])
    def network(self, request):
        return CycloidNetwork.complete(request.param)

    def test_all_pairs_resolve(self, network):
        # Exhaustive for d=3; sampled beyond.
        nodes = network.live_nodes()
        rng = make_rng(1)
        pairs = (
            [(a, b) for a in nodes for b in nodes]
            if len(nodes) <= 24
            else list(sample_pairs(nodes, 600, rng))
        )
        for source, target in pairs:
            record = network.route(source, target.id)
            assert record.success, (source.id, target.id)

    def test_path_bounded_by_protocol(self, network):
        # Each phase is O(d); allow the documented constant.
        d = network.dimension
        rng = make_rng(2)
        for source, target in sample_pairs(network.live_nodes(), 300, rng):
            record = network.route(source, target.id)
            assert record.hops <= 4 * d + 4

    def test_no_timeouts_when_stable(self, network):
        rng = make_rng(3)
        for source, target in sample_pairs(network.live_nodes(), 200, rng):
            assert network.route(source, target.id).timeouts == 0


class TestAscendingPhase:
    def test_single_hop_to_primary(self):
        # §4.1: "the ascending phase in Cycloid usually takes only one
        # step because the outside leaf set entry node is the primary".
        network = CycloidNetwork.complete(5)
        rng = make_rng(4)
        ascents = []
        for source, target in sample_pairs(network.live_nodes(), 400, rng):
            record = network.route(source, target.id)
            ascents.append(record.phase_hops["ascending"])
        assert max(ascents) <= 2
        assert sum(ascents) / len(ascents) <= 1.0

    def test_ascending_small_share(self):
        # Fig. 7(a): ascending is at most ~15% of the total path.
        network = CycloidNetwork.complete(6)
        rng = make_rng(5)
        total = {"ascending": 0, "descending": 0, "traverse": 0}
        for source, target in sample_pairs(network.live_nodes(), 500, rng):
            for phase, hops in network.route(source, target.id).phase_hops.items():
                total[phase] += hops
        share = total["ascending"] / sum(total.values())
        assert share < 0.20


class TestSparseRouting:
    @pytest.mark.parametrize("population", [10, 50, 150, 300])
    def test_random_population_resolves_node_targets(self, population):
        network = CycloidNetwork.with_random_ids(population, 6, seed=9)
        rng = make_rng(6)
        for source, target in sample_pairs(network.live_nodes(), 300, rng):
            record = network.route(source, target.id)
            assert record.success, (source.id, target.id)

    @pytest.mark.parametrize("population", [10, 150])
    def test_random_population_resolves_random_keys(self, population):
        network = CycloidNetwork.with_random_ids(population, 6, seed=10)
        nodes = network.live_nodes()
        rng = make_rng(7)
        for index in range(300):
            source = nodes[rng.randrange(len(nodes))]
            record = network.lookup(source, f"sparse-{index}")
            assert record.success

    def test_singleton_network(self):
        network = CycloidNetwork.with_ids([CycloidId(1, 3, 4)], 4)
        node = network.live_nodes()[0]
        record = network.lookup(node, "anything")
        assert record.success
        assert record.hops == 0

    def test_two_node_network(self):
        network = CycloidNetwork.with_ids(
            [CycloidId(1, 3, 4), CycloidId(0, 12, 4)], 4
        )
        a, b = network.live_nodes()
        for source in (a, b):
            for index in range(20):
                assert network.lookup(source, f"k{index}").success

    def test_path_does_not_blow_up_when_sparse(self):
        # Fig. 13: sparsity must not degrade Cycloid's efficiency.
        dense = CycloidNetwork.with_random_ids(1800, 8, seed=11)
        sparse = CycloidNetwork.with_random_ids(300, 8, seed=11)
        rng = make_rng(8)
        dense_mean = sum(
            dense.route(s, t.id).hops
            for s, t in sample_pairs(dense.live_nodes(), 400, rng)
        ) / 400
        sparse_mean = sum(
            sparse.route(s, t.id).hops
            for s, t in sample_pairs(sparse.live_nodes(), 400, rng)
        ) / 400
        assert sparse_mean <= dense_mean + 1.0


class TestElevenEntryRouting:
    def test_shorter_or_equal_paths(self):
        # §3.2: the 11-entry DHT trades state for hop count.
        seven = CycloidNetwork.complete(6, leaf_radius=1)
        eleven = CycloidNetwork.complete(6, leaf_radius=2)
        rng = make_rng(9)
        pairs = list(sample_pairs(seven.live_nodes(), 500, rng))
        seven_mean = sum(seven.route(s, t.id).hops for s, t in pairs) / len(pairs)
        eleven_mean = sum(
            eleven.route(
                eleven.topology.get(s.cyclic, s.cubical),
                t.id,
            ).hops
            for s, t in pairs
        ) / len(pairs)
        assert eleven_mean < seven_mean


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(
    linears=st.sets(
        st.integers(0, cycloid_space_size(5) - 1), min_size=2, max_size=40
    ),
    key_linear=st.integers(0, cycloid_space_size(5) - 1),
    source_index=st.integers(0, 10_000),
)
def test_routing_matches_global_owner(linears, key_linear, source_index):
    """Property: from any source, any key routes to the global owner."""
    network = CycloidNetwork.with_ids(
        [CycloidId.from_linear(v, 5) for v in linears], 5
    )
    nodes = network.live_nodes()
    source = nodes[source_index % len(nodes)]
    key = CycloidId.from_linear(key_linear, 5)
    record = network.route(source, key)
    assert record.success
    assert record.owner == network.owner_of_id(key).name
