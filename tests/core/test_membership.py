"""Cycloid join / graceful-leave / stabilisation tests (paper §3.3)."""

import pytest

from repro.core import CycloidNetwork
from repro.dht.identifiers import CycloidId
from repro.util.rng import make_rng, sample_pairs


class TestJoin:
    def test_join_wires_the_joiner(self, cycloid_sparse):
        node = cycloid_sparse.join("newcomer")
        assert node.inside_left and node.inside_right
        assert node.outside_left and node.outside_right

    def test_join_updates_cycle_neighbors(self, cycloid_sparse):
        node = cycloid_sparse.join("newcomer")
        pred, succ = cycloid_sparse.topology.cycle_neighbors(
            node.cyclic, node.cubical
        )
        if pred is not node:
            assert pred.inside_right[0] is node
        if succ is not node:
            assert succ.inside_left[0] is node

    def test_join_into_empty_cycle_updates_outside_leaves(self):
        network = CycloidNetwork.with_ids(
            [CycloidId(0, 2, 4), CycloidId(1, 10, 4)], 4
        )
        # Force an id between the two cycles by name probing.
        joiner = network.join("x")
        network.check_invariants()
        for node in network.live_nodes():
            for leaf in node.leaf_entries():
                assert leaf.alive
        del joiner

    def test_collision_probes_to_free_id(self):
        network = CycloidNetwork.with_random_ids(50, 4, seed=1)
        before = {n.id for n in network.live_nodes()}
        node = network.join("collide-me")
        assert node.id not in before

    def test_space_exhaustion(self):
        network = CycloidNetwork.complete(3)
        with pytest.raises(RuntimeError):
            network.join("no-room")

    def test_lookup_for_joined_node_key(self, cycloid_sparse):
        node = cycloid_sparse.join("target")
        source = next(
            n for n in cycloid_sparse.live_nodes() if n is not node
        )
        record = cycloid_sparse.route(source, node.id)
        assert record.success
        assert record.owner == node.name


class TestLeave:
    def test_leaf_sets_never_contain_departed(self, cycloid_sparse):
        rng = make_rng(1)
        nodes = list(cycloid_sparse.live_nodes())
        for node in rng.sample(nodes, 40):
            cycloid_sparse.leave(node)
            # §3.3.2: inside/outside leaf sets are repaired immediately.
            for live in cycloid_sparse.live_nodes():
                for leaf in live.leaf_entries():
                    assert leaf.alive

    def test_routing_tables_go_stale(self):
        network = CycloidNetwork.complete(5)
        rng = make_rng(2)
        for node in rng.sample(list(network.live_nodes()), 60):
            network.leave(node)
        stale = sum(
            1
            for node in network.live_nodes()
            for entry in node.routing_entries()
            if not entry.alive
        )
        # Cubical/cyclic neighbours are stabilisation's job (§3.3.2), so
        # some must be stale after mass departures.
        assert stale > 0

    def test_stabilize_removes_staleness(self):
        network = CycloidNetwork.complete(5)
        rng = make_rng(3)
        for node in rng.sample(list(network.live_nodes()), 60):
            network.leave(node)
        network.stabilize()
        for node in network.live_nodes():
            for entry in node.routing_entries():
                assert entry.alive

    def test_lookups_survive_mass_departure_without_stabilization(self):
        # §4.3: "All lookups were successfully resolved".
        network = CycloidNetwork.complete(6)
        rng = make_rng(4)
        for node in rng.sample(list(network.live_nodes()), 150):
            network.leave(node)
        for source, target in sample_pairs(network.live_nodes(), 400, rng):
            record = network.route(source, target.id)
            assert record.success

    def test_timeouts_counted_for_dead_contacts(self):
        network = CycloidNetwork.complete(6)
        rng = make_rng(5)
        for node in rng.sample(list(network.live_nodes()), 150):
            network.leave(node)
        timeouts = sum(
            network.route(s, t.id).timeouts
            for s, t in sample_pairs(network.live_nodes(), 300, rng)
        )
        assert timeouts > 0

    def test_last_node_cannot_be_interrogated_after_leaving(self):
        network = CycloidNetwork.with_ids([CycloidId(0, 0, 3)], 3)
        node = network.live_nodes()[0]
        network.leave(node)
        assert network.size == 0


class TestStabilizeNode:
    def test_single_node_stabilization_repairs_it(self):
        network = CycloidNetwork.complete(5)
        rng = make_rng(6)
        for node in rng.sample(list(network.live_nodes()), 40):
            network.leave(node)
        victim = next(
            node
            for node in network.live_nodes()
            if any(not e.alive for e in node.routing_entries())
        )
        network.stabilize_node(victim)
        assert all(e.alive for e in victim.routing_entries())

    def test_stabilizing_dead_node_is_noop(self):
        network = CycloidNetwork.with_random_ids(10, 4, seed=7)
        node = network.live_nodes()[0]
        network.leave(node)
        network.stabilize_node(node)  # must not raise


class TestChurnMix:
    def test_interleaved_joins_and_leaves_stay_consistent(self):
        network = CycloidNetwork.with_random_ids(60, 5, seed=8)
        rng = make_rng(9)
        for step in range(120):
            if rng.random() < 0.5 and network.size < 150:
                network.join(f"mix-{step}")
            elif network.size > 2:
                nodes = network.live_nodes()
                network.leave(nodes[rng.randrange(len(nodes))])
            # Leaf sets stay fresh at every step.
            for node in network.live_nodes():
                for leaf in node.leaf_entries():
                    assert leaf.alive
        network.stabilize()
        network.check_invariants()
        for source, target in sample_pairs(network.live_nodes(), 200, rng):
            assert network.route(source, target.id).success
