"""Unit tests for the Cycloid membership/topology structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.topology import CycloidTopology
from repro.dht.identifiers import CycloidId, cycloid_space_size


def make_topology(dimension, linears):
    topology = CycloidTopology(dimension)
    for linear in linears:
        node_id = CycloidId.from_linear(linear, dimension)
        topology.add(node_id, f"node-{linear}")
    return topology


class TestMembership:
    def test_add_and_lookup(self):
        topology = CycloidTopology(4)
        node_id = CycloidId(2, 5, 4)
        topology.add(node_id, "x")
        assert node_id in topology
        assert topology.get(2, 5) == "x"
        assert len(topology) == 1

    def test_duplicate_rejected(self):
        topology = CycloidTopology(4)
        topology.add(CycloidId(2, 5, 4), "x")
        with pytest.raises(ValueError):
            topology.add(CycloidId(2, 5, 4), "y")

    def test_remove_cleans_empty_cycle(self):
        topology = CycloidTopology(4)
        topology.add(CycloidId(2, 5, 4), "x")
        topology.remove(CycloidId(2, 5, 4))
        assert topology.cycle_members(5) == []
        assert topology.cycle_count() == 0

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            CycloidTopology(4).remove(CycloidId(0, 0, 4))

    def test_nodes_in_id_order(self):
        topology = make_topology(4, [30, 2, 17])
        ids = [CycloidId.from_linear(v, 4).linear for v in (2, 17, 30)]
        assert [n for n in topology.ids()] == [
            CycloidId.from_linear(v, 4) for v in sorted([30, 2, 17])
        ] or True  # order is (cubical, cyclic), checked below
        ordered = list(topology.ids())
        assert ordered == sorted(ordered)
        del ids


class TestCycles:
    def test_cycle_members_sorted(self):
        topology = CycloidTopology(4)
        for cyclic in (3, 0, 2):
            topology.add(CycloidId(cyclic, 7, 4), cyclic)
        assert topology.cycle_members(7) == [0, 2, 3]

    def test_primary_is_largest_cyclic(self):
        topology = CycloidTopology(4)
        for cyclic in (0, 2, 3):
            topology.add(CycloidId(cyclic, 7, 4), f"n{cyclic}")
        assert topology.primary_of(7) == "n3"

    def test_cycle_neighbors_wrap(self):
        topology = CycloidTopology(4)
        for cyclic in (0, 2, 3):
            topology.add(CycloidId(cyclic, 7, 4), f"n{cyclic}")
        pred, succ = topology.cycle_neighbors(0, 7)
        assert pred == "n3" and succ == "n2"

    def test_cycle_neighbors_singleton(self):
        topology = CycloidTopology(4)
        topology.add(CycloidId(1, 7, 4), "only")
        pred, succ = topology.cycle_neighbors(1, 7)
        assert pred == "only" and succ == "only"

    def test_cycle_neighbors_missing_node(self):
        topology = CycloidTopology(4)
        topology.add(CycloidId(1, 7, 4), "only")
        with pytest.raises(KeyError):
            topology.cycle_neighbors(2, 7)


class TestLargeCycle:
    @pytest.fixture
    def topology(self):
        topology = CycloidTopology(4)
        for cubical in (1, 5, 9, 14):
            topology.add(CycloidId(0, cubical, 4), f"c{cubical}")
        return topology

    def test_preceding(self, topology):
        assert topology.preceding_cycles(5, 1) == [1]
        assert topology.preceding_cycles(5, 2) == [1, 14]

    def test_succeeding_wraps(self, topology):
        assert topology.succeeding_cycles(14, 2) == [1, 5]

    def test_query_for_empty_cycle(self, topology):
        # A point between cycles: neighbours on each side.
        assert topology.succeeding_cycles(7, 1) == [9]
        assert topology.preceding_cycles(7, 1) == [5]

    def test_never_revisits_start(self, topology):
        assert len(topology.preceding_cycles(5, 99)) == 3

    def test_lone_cycle_wraps_to_itself(self):
        topology = CycloidTopology(4)
        topology.add(CycloidId(0, 3, 4), "only")
        assert topology.preceding_cycles(3, 1) == [3]
        assert topology.succeeding_cycles(3, 2) == [3]

    def test_zero_count(self, topology):
        assert topology.preceding_cycles(5, 0) == []


class TestBlockQueries:
    @pytest.fixture
    def topology(self):
        topology = CycloidTopology(4)
        # cyclic index 2 row: cubicals 4, 6, 7, 12
        for cubical in (4, 6, 7, 12):
            topology.add(CycloidId(2, cubical, 4), f"b{cubical}")
        return topology

    def test_in_block_prefers_anchor(self, topology):
        assert topology.in_block(2, 4, 4, anchor=6) == "b6"

    def test_in_block_empty(self, topology):
        assert topology.in_block(2, 8, 4, anchor=9) is None

    def test_in_block_wrong_cyclic(self, topology):
        assert topology.in_block(1, 4, 4, anchor=6) is None

    def test_block_bounds(self, topology):
        larger, smaller = topology.block_bounds(2, 4, 4, anchor=5)
        assert larger == "b6" and smaller == "b4"

    def test_block_bounds_at_anchor(self, topology):
        larger, smaller = topology.block_bounds(2, 4, 4, anchor=6)
        assert larger == "b6" and smaller == "b6"

    def test_block_bounds_one_sided(self, topology):
        larger, smaller = topology.block_bounds(2, 4, 4, anchor=3)
        assert larger == "b4" and smaller is None

    def test_nearest_in_row_wraps(self, topology):
        assert topology.nearest_in_row(2, 14) == "b12"
        # anchor 0: b4 and b12 tie at circular distance 4; the clockwise
        # candidate (b4) wins.
        assert topology.nearest_in_row(2, 0) == "b4"

    def test_nearest_in_row_empty(self, topology):
        assert topology.nearest_in_row(3, 5) is None

    def test_row_bound_directions(self, topology):
        assert topology.row_bound(2, 5, clockwise=True) == "b6"
        assert topology.row_bound(2, 5, clockwise=False) == "b4"
        assert topology.row_bound(2, 13, clockwise=True) == "b4"  # wraps


@given(st.sets(st.integers(0, cycloid_space_size(4) - 1), min_size=1, max_size=40))
def test_indices_stay_consistent(linears):
    """All three index structures agree after arbitrary add/remove mixes."""
    topology = make_topology(4, linears)
    # Remove half the nodes again.
    for linear in sorted(linears)[::2]:
        topology.remove(CycloidId.from_linear(linear, 4))
    remaining = set(sorted(linears)[1::2])
    assert len(topology) == len(remaining)
    for linear in remaining:
        node_id = CycloidId.from_linear(linear, 4)
        assert node_id in topology
        assert node_id.cyclic in topology.cycle_members(node_id.cubical)
    total_in_cycles = sum(
        len(topology.cycle_members(c)) for c in range(16)
    )
    assert total_in_cycles == len(remaining)
