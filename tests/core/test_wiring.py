"""Cycloid routing-table and leaf-set wiring tests (paper §3.1).

Anchored on the paper's Table 2: the routing state of node
``(4, 1011 0110)`` in a complete eight-dimensional Cycloid.
"""

import pytest

from repro.core import CycloidNetwork
from repro.dht.identifiers import CycloidId
from repro.util.bitops import msdb


def node_at(network, cyclic, cubical):
    return network.topology.get(cyclic, cubical)


class TestTable2Example:
    """Routing state of (4, 10110110) in the complete d=8 Cycloid."""

    @pytest.fixture(scope="class")
    def network(self):
        return CycloidNetwork.complete(8)

    @pytest.fixture(scope="class")
    def node(self, network):
        return node_at(network, 4, 0b10110110)

    def test_cubical_neighbor_pattern(self, node):
        # Table 2: cubical neighbour is (3, 1010 xxxx): cyclic index 3,
        # bits 7..5 preserved (101), bit 4 flipped (1 -> 0).
        neighbor = node.cubical_neighbor
        assert neighbor is not None
        assert neighbor.cyclic == 3
        assert neighbor.cubical >> 4 == 0b1010

    def test_cyclic_neighbors_share_prefix(self, node):
        # Cyclic neighbours are at cyclic index 3 and agree with the
        # node's cubical index on bits 7..4 (MSDB <= 3).
        for neighbor in (node.cyclic_larger, node.cyclic_smaller):
            assert neighbor is not None
            assert neighbor.cyclic == 3
            assert msdb(neighbor.cubical, node.cubical) <= 3

    def test_cyclic_neighbor_bounds(self, node):
        # First-larger and first-smaller rule; a complete network has a
        # node at the anchor itself, so both resolve to (3, 10110110).
        assert node.cyclic_larger.cubical == 0b10110110
        assert node.cyclic_smaller.cubical == 0b10110110

    def test_inside_leaf_set(self, node):
        # Table 2: inside leaf set (3, 10110110) and (5, 10110110).
        assert node.inside_left[0].id == CycloidId(3, 0b10110110, 8)
        assert node.inside_right[0].id == CycloidId(5, 0b10110110, 8)

    def test_outside_leaf_set(self, node):
        # Table 2: outside leaf set (7, 10110101) and (7, 10110111) —
        # primaries of the preceding and succeeding remote cycles.
        assert node.outside_left[0].id == CycloidId(7, 0b10110101, 8)
        assert node.outside_right[0].id == CycloidId(7, 0b10110111, 8)

    def test_seven_entries(self, node):
        assert node.state_size == 7


class TestWiringRules:
    @pytest.fixture(scope="class")
    def network(self):
        return CycloidNetwork.complete(4)

    def test_cyclic_zero_has_no_routing_neighbors(self, network):
        # §3.1: "The node with a cyclic index k = 0 has no cubical
        # neighbor and cyclic neighbors."
        for cubical in range(16):
            node = node_at(network, 0, cubical)
            assert node.cubical_neighbor is None
            assert node.cyclic_larger is None
            assert node.cyclic_smaller is None

    def test_cubical_neighbor_flips_bit_k(self, network):
        for node in network.live_nodes():
            k = node.cyclic
            if k == 0:
                continue
            neighbor = node.cubical_neighbor
            assert neighbor is not None
            assert neighbor.cyclic == k - 1
            assert msdb(neighbor.cubical, node.cubical) == k

    def test_leaf_sets_are_cycle_neighbors(self, network):
        for node in network.live_nodes():
            d = network.dimension
            assert node.inside_left[0].cyclic == (node.cyclic - 1) % d
            assert node.inside_right[0].cyclic == (node.cyclic + 1) % d
            assert node.inside_left[0].cubical == node.cubical

    def test_outside_leaves_are_primaries(self, network):
        for node in network.live_nodes():
            assert node.outside_left[0].cyclic == network.dimension - 1
            assert node.outside_left[0].cubical == (node.cubical - 1) % 16
            assert node.outside_right[0].cubical == (node.cubical + 1) % 16

    def test_degree_bounded_by_seven(self, network):
        for node in network.live_nodes():
            assert node.degree <= 7


class TestElevenEntryVariant:
    def test_state_size(self):
        network = CycloidNetwork.complete(4, leaf_radius=2)
        for node in network.live_nodes():
            assert node.state_size == 11

    def test_two_deep_leaf_sets(self):
        network = CycloidNetwork.complete(4, leaf_radius=2)
        node = node_at(network, 1, 5)
        assert [n.cyclic for n in node.inside_left] == [0, 3]
        assert [n.cyclic for n in node.inside_right] == [2, 3]
        assert [n.cubical for n in node.outside_left] == [4, 3]
        assert [n.cubical for n in node.outside_right] == [6, 7]


class TestSparseWiring:
    def test_singleton_cycle_inside_leaves_are_self(self):
        # §3.3.1 case 2: "two nodes in X's inside leaf set are X itself".
        network = CycloidNetwork.with_ids(
            [CycloidId(2, 5, 4), CycloidId(1, 9, 4)], 4
        )
        node = node_at(network, 2, 5)
        assert node.inside_left == [node]
        assert node.inside_right == [node]

    def test_two_cycles_point_at_each_other(self):
        network = CycloidNetwork.with_ids(
            [CycloidId(2, 5, 4), CycloidId(1, 9, 4)], 4
        )
        a = node_at(network, 2, 5)
        b = node_at(network, 1, 9)
        assert a.outside_left[0] is b
        assert a.outside_right[0] is b
        assert b.outside_left[0] is a

    def test_approximate_cubical_neighbor_when_block_empty(self):
        # Nodes exist at cyclic 1 but none inside the exact flipped
        # block; the local-remote search wires the nearest instead.
        network = CycloidNetwork.with_ids(
            [CycloidId(2, 0b0101, 4), CycloidId(1, 0b0100, 4)], 4
        )
        node = node_at(network, 2, 0b0101)
        # Exact block would be cubical in [0b0000, 0b0100) at cyclic 1.
        assert node.cubical_neighbor is node_at(network, 1, 0b0100)

    def test_all_nodes_alive_invariant(self, cycloid_sparse):
        cycloid_sparse.check_invariants()
