"""Ground-truth ownership: the fast owner query vs brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CycloidNetwork
from repro.dht.identifiers import CycloidId, cycloid_space_size


def brute_force_owner(network, key):
    """Reference implementation: scan every live node."""
    return min(
        network.live_nodes(), key=lambda node: key.distance_to(node.id)
    )


class TestOwnerQuery:
    def test_exact_hit(self):
        network = CycloidNetwork.complete(4)
        node = network.live_nodes()[17]
        assert network.owner_of_id(node.id) is node

    def test_empty_network_raises(self):
        import pytest

        with pytest.raises(LookupError):
            CycloidNetwork(4).owner_of_id(CycloidId(0, 0, 4))

    def test_singleton_owns_everything(self):
        network = CycloidNetwork.with_ids([CycloidId(2, 7, 4)], 4)
        only = network.live_nodes()[0]
        for linear in range(0, 64, 7):
            assert network.owner_of_id(
                CycloidId.from_linear(linear, 4)
            ) is only

    @settings(max_examples=60)
    @given(
        linears=st.sets(
            st.integers(0, cycloid_space_size(5) - 1),
            min_size=1,
            max_size=50,
        ),
        key_linear=st.integers(0, cycloid_space_size(5) - 1),
    )
    def test_matches_brute_force(self, linears, key_linear):
        network = CycloidNetwork.with_ids(
            [CycloidId.from_linear(v, 5) for v in linears], 5
        )
        key = CycloidId.from_linear(key_linear, 5)
        assert network.owner_of_id(key) is brute_force_owner(network, key)

    @settings(max_examples=30)
    @given(
        linears=st.sets(
            st.integers(0, cycloid_space_size(4) - 1),
            min_size=2,
            max_size=30,
        ),
    )
    def test_partitions_whole_key_space(self, linears):
        """Every key has exactly one owner; owners partition the space."""
        network = CycloidNetwork.with_ids(
            [CycloidId.from_linear(v, 4) for v in linears], 4
        )
        counts = {node: 0 for node in network.live_nodes()}
        for linear in range(cycloid_space_size(4)):
            counts[network.owner_of_id(CycloidId.from_linear(linear, 4))] += 1
        assert sum(counts.values()) == cycloid_space_size(4)
        # Every node owns at least its own identifier.
        assert all(count >= 1 for count in counts.values())

    def test_owner_changes_only_locally_on_leave(self):
        """A departure re-assigns only the departed node's keys."""
        network = CycloidNetwork.with_random_ids(80, 5, seed=9)
        space = cycloid_space_size(5)
        before = {
            linear: network.owner_of_id(CycloidId.from_linear(linear, 5))
            for linear in range(space)
        }
        victim = network.live_nodes()[13]
        network.leave(victim)
        for linear in range(space):
            owner_now = network.owner_of_id(CycloidId.from_linear(linear, 5))
            if before[linear] is not victim:
                assert owner_now is before[linear], linear
