"""CAN protocol tests: zones, splits, takeover, greedy routing."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.can import CanNetwork, Zone
from repro.can.network import RESOLUTION_BITS
from repro.util.rng import make_rng, sample_pairs

M = 1 << RESOLUTION_BITS


class TestZone:
    def test_validation(self):
        with pytest.raises(ValueError):
            Zone((0, 0), (0, 10))
        with pytest.raises(ValueError):
            Zone((0,), (1, 1))

    def test_contains_half_open(self):
        zone = Zone((0, 0), (10, 10))
        assert zone.contains((0, 0))
        assert zone.contains((9, 9))
        assert not zone.contains((10, 0))

    def test_volume_and_center(self):
        zone = Zone((0, 0), (10, 20))
        assert zone.volume() == 200
        assert zone.center() == (5, 10)

    def test_split_halves(self):
        zone = Zone((0, 0), (8, 4))
        lower, upper = zone.split(0)
        assert lower == Zone((0, 0), (4, 4))
        assert upper == Zone((4, 0), (8, 4))

    def test_split_too_thin(self):
        with pytest.raises(ValueError):
            Zone((0, 0), (1, 4)).split(0)

    def test_widest_axis(self):
        assert Zone((0, 0), (8, 4)).widest_axis() == 0
        assert Zone((0, 0), (4, 8)).widest_axis() == 1
        assert Zone((0, 0), (4, 4)).widest_axis() == 0  # tie: lowest

    def test_buddy_and_merge(self):
        zone = Zone((0, 0), (8, 4))
        lower, upper = zone.split(0)
        assert lower.buddy_of(upper)
        assert lower.merge(upper) == zone

    def test_non_buddies(self):
        a = Zone((0, 0), (4, 4))
        b = Zone((4, 4), (8, 8))  # diagonal, not a buddy
        assert not a.buddy_of(b)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_abuts_plain(self):
        a = Zone((0, 0), (4, 4))
        b = Zone((4, 0), (8, 4))
        c = Zone((4, 4), (8, 8))
        assert a.abuts(b, M)
        assert not a.abuts(c, M)  # corner contact only

    def test_abuts_wraps_torus(self):
        left = Zone((0, 0), (4, M))
        right = Zone((M - 4, 0), (M, M))
        assert left.abuts(right, M)


class TestConstruction:
    def test_zones_partition_space(self):
        network = CanNetwork.with_random_zones(50, seed=1)
        network.check_invariants()
        total = sum(node.total_volume() for node in network.live_nodes())
        assert total == M * M

    def test_every_point_has_one_owner(self):
        network = CanNetwork.with_random_zones(30, seed=2)
        rng = make_rng(3)
        for _ in range(200):
            point = (rng.randrange(M), rng.randrange(M))
            owners = [n for n in network.live_nodes() if n.owns(point)]
            assert len(owners) == 1

    def test_degree_is_order_2d(self):
        network = CanNetwork.with_random_zones(200, seed=4)
        network.stabilize()
        degrees = [node.degree for node in network.live_nodes()]
        mean = sum(degrees) / len(degrees)
        assert 3 <= mean <= 8  # ~2d with split-imbalance slack

    def test_three_dimensional(self):
        network = CanNetwork.with_random_zones(40, dimensions=3, seed=5)
        network.check_invariants()
        assert network.dimensions == 3


class TestRouting:
    @pytest.fixture(scope="class")
    def network(self):
        net = CanNetwork.with_random_zones(150, seed=6)
        net.stabilize()
        return net

    def test_all_lookups_resolve(self, network):
        rng = make_rng(7)
        nodes = network.live_nodes()
        for index in range(300):
            source = nodes[rng.randrange(len(nodes))]
            record = network.lookup(source, f"can-key-{index}")
            assert record.success

    def test_self_lookup_is_free(self, network):
        node = network.live_nodes()[0]
        point = node.zones[0].center()
        record = network.route(node, point)
        assert record.success and record.hops == 0

    def test_path_scales_as_root_n(self):
        means = []
        for count in (64, 256):
            network = CanNetwork.with_random_zones(count, seed=8)
            network.stabilize()
            rng = make_rng(9)
            hops = [
                network.route(s, t.zones[0].center()).hops
                for s, t in sample_pairs(network.live_nodes(), 300, rng)
            ]
            means.append(sum(hops) / len(hops))
        # O(n^(1/2)) for d=2: quadrupling n roughly doubles the path.
        assert 1.5 <= means[1] / means[0] <= 3.0

    def test_phase_hops_consistent(self, network):
        rng = make_rng(10)
        for source, target in sample_pairs(network.live_nodes(), 50, rng):
            record = network.route(source, target.zones[0].center())
            assert record.phase_hops == {"greedy": record.hops}


class TestMembership:
    def test_join_splits_holder_zone(self):
        network = CanNetwork(seed=11)
        first = network.join("a")
        assert first.total_volume() == M * M
        network.join("b")
        network.check_invariants()
        volumes = sorted(n.total_volume() for n in network.live_nodes())
        assert volumes == [M * M // 2, M * M // 2]

    def test_leave_hands_zone_to_taker(self):
        network = CanNetwork.with_random_zones(20, seed=12)
        network.stabilize()
        victim = network.live_nodes()[5]
        network.leave(victim)
        network.check_invariants()

    def test_buddy_zones_coalesce(self):
        network = CanNetwork(seed=13)
        network.join("a")
        b = network.join("b")
        # b's zone is a's buddy: leaving must re-merge into one box.
        network.leave(b)
        survivor = network.live_nodes()[0]
        assert len(survivor.zones) == 1
        assert survivor.total_volume() == M * M

    def test_heavy_churn_keeps_partition(self):
        network = CanNetwork.with_random_zones(40, seed=14)
        network.stabilize()
        rng = make_rng(15)
        for step in range(120):
            if rng.random() < 0.5 or network.size < 5:
                network.join(f"churn-{step}")
            else:
                nodes = network.live_nodes()
                network.leave(nodes[rng.randrange(len(nodes))])
        network.stabilize()
        network.check_invariants()
        for source, target in sample_pairs(network.live_nodes(), 150, rng):
            assert network.route(source, target.zones[0].center()).success

    def test_silent_failure_then_stabilize(self):
        network = CanNetwork.with_random_zones(60, seed=16)
        network.stabilize()
        rng = make_rng(17)
        for victim in rng.sample(list(network.live_nodes()), 12):
            network.fail(victim)
        network.stabilize()
        network.check_invariants()
        for source, target in sample_pairs(network.live_nodes(), 150, rng):
            assert network.route(source, target.zones[0].center()).success

    def test_architecture_row(self):
        from repro.experiments import architecture_table

        rows = architecture_table(protocols=("can",), dimension=5)
        assert rows[0].base_network == "mesh"
        assert rows[0].key_placement == "zone owner"


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    joins=st.integers(2, 25),
    leaves=st.integers(0, 10),
    seed=st.integers(0, 100),
)
def test_partition_invariant_under_random_churn(joins, leaves, seed):
    """The zones always partition the torus exactly."""
    network = CanNetwork(seed=seed)
    for index in range(joins):
        network.join(f"j{index}")
    rng = make_rng(seed)
    for _ in range(min(leaves, network.size - 1)):
        nodes = network.live_nodes()
        network.leave(nodes[rng.randrange(len(nodes))])
    network.stabilize()
    network.check_invariants()
