"""Koorde protocol tests: de Bruijn wiring, routing, failure modes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.koorde import KoordeNetwork
from repro.koorde.network import DEBRUIJN_BACKUPS, SUCCESSOR_LIST_SIZE
from repro.util.rng import make_rng, sample_pairs


class TestWiring:
    def test_debruijn_pointer_in_complete_network(self):
        # §4.2: "all the first de Bruijn nodes identifiers are even in a
        # complete (dense) network" — d = node 2m.
        network = KoordeNetwork.complete(6)
        for node in network.live_nodes():
            assert node.debruijn.id == (2 * node.id) % 64
            assert node.debruijn.id % 2 == 0

    def test_debruijn_pointer_in_sparse_network(self):
        network = KoordeNetwork.with_ids([3, 17, 40, 58], 6)
        node = network.ring.get(17)
        # 2 * 17 = 34; at-or-before 34 is 17 itself.
        assert node.debruijn.id == 17
        node = network.ring.get(40)
        # 2 * 40 = 80 mod 64 = 16; at-or-before is 3.
        assert node.debruijn.id == 3

    def test_backups_are_debruijn_predecessors(self):
        network = KoordeNetwork.with_random_ids(64, 8, seed=1)
        for node in network.live_nodes():
            chain = [node.debruijn] + node.debruijn_backups
            for earlier, later in zip(chain, chain[1:]):
                assert network.ring.predecessor(earlier.id) is later

    def test_seven_neighbor_configuration(self):
        assert SUCCESSOR_LIST_SIZE == 3
        assert DEBRUIJN_BACKUPS == 3
        network = KoordeNetwork.with_random_ids(128, 9, seed=2)
        for node in network.live_nodes():
            assert len(node.successors) == 3
            assert len(node.debruijn_backups) == 3
            assert node.degree <= 8  # 7 routing entries + predecessor


class TestRouting:
    def test_exhaustive_small_network(self):
        network = KoordeNetwork.with_ids([1, 5, 9, 14], 4)
        for source in network.live_nodes():
            for key in range(16):
                record = network.route(source, key)
                assert record.success, (source.id, key)

    def test_complete_network_all_resolve(self):
        network = KoordeNetwork.complete(7)
        rng = make_rng(3)
        for source, target in sample_pairs(network.live_nodes(), 500, rng):
            assert network.route(source, target.id).success

    def test_phase_split_dense(self):
        # Fig. 7(c): successor hops are roughly 30% of the path when the
        # network is dense.
        network = KoordeNetwork.complete(9)
        rng = make_rng(4)
        debruijn = successor = 0
        for source, target in sample_pairs(network.live_nodes(), 500, rng):
            record = network.route(source, target.id)
            debruijn += record.phase_hops["de_bruijn"]
            successor += record.phase_hops["successor"]
        share = successor / (debruijn + successor)
        assert 0.2 < share < 0.45

    def test_successor_share_grows_with_sparsity(self):
        # Fig. 14.
        shares = []
        for population in (512, 128):
            network = KoordeNetwork.with_random_ids(population, 9, seed=5)
            rng = make_rng(6)
            debruijn = successor = 0
            for source, target in sample_pairs(
                network.live_nodes(), 400, rng
            ):
                record = network.route(source, target.id)
                debruijn += record.phase_hops["de_bruijn"]
                successor += record.phase_hops["successor"]
            shares.append(successor / (debruijn + successor))
        assert shares[1] > shares[0]

    def test_path_grows_with_sparsity(self):
        # Fig. 13: "Koorde's performance degrades with the decrease of
        # the number of actual participants."
        means = []
        for population in (512, 128):
            network = KoordeNetwork.with_random_ids(population, 9, seed=7)
            rng = make_rng(8)
            hops = [
                network.route(s, t.id).hops
                for s, t in sample_pairs(network.live_nodes(), 400, rng)
            ]
            means.append(sum(hops) / len(hops))
        assert means[1] > means[0]

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(
        ids=st.sets(st.integers(0, 127), min_size=2, max_size=25),
        key=st.integers(0, 127),
        source_index=st.integers(0, 1000),
    )
    def test_routing_matches_owner_property(self, ids, key, source_index):
        network = KoordeNetwork.with_ids(sorted(ids), 7)
        nodes = network.live_nodes()
        source = nodes[source_index % len(nodes)]
        record = network.route(source, key)
        assert record.success
        assert record.owner == network.owner_of_id(key).name


class TestFailureModes:
    def _departed_network(self, probability, seed=9, bits=9):
        network = KoordeNetwork.complete(bits)
        rng = make_rng(seed)
        for node in list(network.live_nodes()):
            if rng.random() < probability and network.size > 1:
                network.leave(node)
        return network

    def test_low_departure_rate_resolves_all(self):
        # §4.3: all queries solved when p <= 0.2.
        network = self._departed_network(0.15)
        rng = make_rng(10)
        failures = sum(
            not network.route(s, t.id).success
            for s, t in sample_pairs(network.live_nodes(), 500, rng)
        )
        assert failures == 0

    def test_high_departure_rate_causes_failures(self):
        # §4.3: lookup failures appear when p >= 0.3 because the de
        # Bruijn pointer and its backups can all be dead.
        network = self._departed_network(0.5)
        rng = make_rng(11)
        failures = sum(
            not network.route(s, t.id).success
            for s, t in sample_pairs(network.live_nodes(), 500, rng)
        )
        assert failures > 0

    def test_stabilization_eliminates_failures(self):
        # §4.4: "stabilization updates the first de Bruijn node ... in
        # time", reducing failures to zero.
        network = self._departed_network(0.5)
        network.stabilize()
        network.check_invariants()
        rng = make_rng(12)
        failures = sum(
            not network.route(s, t.id).success
            for s, t in sample_pairs(network.live_nodes(), 500, rng)
        )
        assert failures == 0

    def test_ring_spliced_on_leave(self):
        network = KoordeNetwork.with_ids([10, 100, 200], 8)
        network.leave(network.ring.get(100))
        assert network.ring.get(10).successor.id == 200
        assert network.ring.get(200).predecessor.id == 10
