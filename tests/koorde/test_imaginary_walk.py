"""Mechanics of Koorde's imaginary de Bruijn walk."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.koorde import KoordeNetwork
from repro.util.rng import make_rng, sample_pairs


class TestBitConsumption:
    def test_complete_ring_hop_budget(self):
        """In a complete ring the walk consumes one key bit per de
        Bruijn hop: at most ``bits`` de Bruijn hops plus at most one
        successor hop per bit plus the delivery hop."""
        bits = 7
        network = KoordeNetwork.complete(bits)
        rng = make_rng(1)
        for source, target in sample_pairs(network.live_nodes(), 400, rng):
            record = network.route(source, target.id)
            assert record.phase_hops["de_bruijn"] <= bits
            assert record.hops <= 2 * bits + 1

    def test_self_pointer_hops_are_free(self):
        """Node 0's de Bruijn pointer is itself (pred of 2*0); shifting
        through it must not cost hops."""
        network = KoordeNetwork.complete(6)
        zero = network.ring.get(0)
        assert zero.debruijn is zero
        record = network.route(zero, 1)
        assert record.success
        # A correct walk from 0 to 1 costs at most bits+1 hops even
        # though the imaginary node is rewritten `bits` times.
        assert record.hops <= 7

    def test_mean_path_close_to_dimension(self):
        """§4.1: 'Both of their path lengths are close to d'."""
        bits = 10
        network = KoordeNetwork.complete(bits)
        rng = make_rng(2)
        hops = [
            network.route(s, t.id).hops
            for s, t in sample_pairs(network.live_nodes(), 400, rng)
        ]
        mean = sum(hops) / len(hops)
        assert bits <= mean <= 1.8 * bits

    @settings(max_examples=25)
    @given(
        ids=st.sets(st.integers(0, 63), min_size=2, max_size=20),
        key=st.integers(0, 63),
    )
    def test_sparse_walk_terminates_well_under_limit(self, ids, key):
        network = KoordeNetwork.with_ids(sorted(ids), 6)
        source = network.live_nodes()[0]
        record = network.route(source, key)
        assert record.success
        # 6 de Bruijn hops plus gap corrections bounded by population.
        assert record.hops <= 6 + 3 * len(ids) + 1


class TestDeBruijnTopology:
    def test_every_node_reaches_every_node(self):
        """The de Bruijn walk is universal: exhaustive reachability on a
        small complete ring."""
        network = KoordeNetwork.complete(5)
        for source in network.live_nodes():
            for target in network.live_nodes():
                assert network.route(source, target.id).success

    def test_even_ids_carry_more_load(self):
        """§4.2: de Bruijn pointers are even in dense networks, so even
        identifiers receive more queries."""
        network = KoordeNetwork.complete(9)
        network.reset_query_counts()
        rng = make_rng(3)
        for source, target in sample_pairs(network.live_nodes(), 3000, rng):
            network.route(source, target.id)
        loads = dict(zip(
            [n.id for n in network.live_nodes()], network.query_counts()
        ))
        even = sum(v for k, v in loads.items() if k % 2 == 0)
        odd = sum(v for k, v in loads.items() if k % 2 == 1)
        assert even > 1.5 * odd
