"""E12 (extension) — connectivity-maintenance cost per membership event.

Quantifies the paper's concluding trade-off: Viceroy buys its
zero-timeout lookups by updating many nodes (and re-levelling) on every
membership change, Cycloid only refreshes nearby leaf sets, and the
ring DHTs notify just two neighbours (deferring the rest to
stabilisation traffic, measured by E7/E8).
"""

from repro.analysis import format_table
from repro.experiments import run_maintenance_experiment


def test_ablation_maintenance_cost(benchmark, report):
    points = benchmark.pedantic(
        run_maintenance_experiment,
        kwargs={"seed": 21},
        rounds=1,
        iterations=1,
    )
    by_protocol = {p.protocol: p for p in points}

    # Viceroy's eager in/out-link repair is the costliest.
    assert (
        by_protocol["viceroy"].updates_per_leave
        > by_protocol["cycloid"].updates_per_leave
    )
    assert (
        by_protocol["viceroy"].mass_departure_updates
        > 1.5 * by_protocol["cycloid"].mass_departure_updates
    )

    # The ring DHTs notify only the two ring neighbours per event.
    for protocol in ("chord", "koorde"):
        assert by_protocol[protocol].updates_per_join <= 2.01
        assert by_protocol[protocol].updates_per_leave <= 2.01

    # The 11-entry Cycloid pays roughly double the 7-entry's leaf
    # notifications (wider leaf sets, more holders to refresh).
    assert (
        by_protocol["cycloid-11"].updates_per_leave
        > by_protocol["cycloid"].updates_per_leave
    )

    rows = [
        [
            p.protocol,
            f"{p.updates_per_join:.2f}",
            f"{p.updates_per_leave:.2f}",
            p.mass_departure_events,
            p.mass_departure_updates,
            f"{p.updates_per_departure:.2f}",
        ]
        for p in points
    ]
    report(
        format_table(
            [
                "protocol",
                "updates/join",
                "updates/leave",
                "mass departures",
                "total updates",
                "updates/departure",
            ],
            rows,
            title=(
                "Extension — connectivity-maintenance fan-out "
                "(nodes updated per membership event)"
            ),
        )
    )
