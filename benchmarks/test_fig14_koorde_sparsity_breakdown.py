"""E10 — Fig. 14: Koorde's hop-type breakdown vs sparsity.

Shape target (paper §4.5): as the ID space grows sparse, the share of
successor (correction) hops in Koorde's lookup path grows steadily —
the de Bruijn walk must chase the imaginary node's real predecessor
across ever larger gaps.
"""

from repro.analysis import format_table
from repro.experiments import run_koorde_sparsity_breakdown

LOOKUPS = 5000


def test_fig14_koorde_sparsity_breakdown(benchmark, report):
    points = benchmark.pedantic(
        run_koorde_sparsity_breakdown,
        kwargs={
            "sparsities": (0.0, 0.2, 0.4, 0.6, 0.8),
            "lookups": LOOKUPS,
            "seed": 14,
        },
        rounds=1,
        iterations=1,
    )

    shares = [p.fraction_by_phase["successor"] for p in points]
    # Successor share grows monotonically with sparsity...
    assert all(a < b for a, b in zip(shares, shares[1:])), shares
    # ...from roughly 30% when dense to a clear majority of the extra
    # cost when sparse.
    assert shares[0] < 0.40
    assert shares[-1] > 0.50

    rows = [
        [
            f"{1 - p.size / 2048:.1f}",
            p.size,
            f"{p.mean_hops_by_phase['de_bruijn']:.2f}",
            f"{p.mean_hops_by_phase['successor']:.2f}",
            f"{p.fraction_by_phase['successor'] * 100:.0f}%",
        ]
        for p in points
    ]
    report(
        format_table(
            ["sparsity", "nodes", "de Bruijn hops", "successor hops", "succ share"],
            rows,
            title="Fig. 14 — Koorde path breakdown vs sparsity",
        )
    )
