"""E4 — Fig. 8: key distribution in a dense 2000-node network.

2000 nodes in a 2048-identifier space; 10^4..10^5 keys.  Shape targets
(paper §4.2): the spread grows linearly with the number of keys in all
DHTs; Cycloid's balance matches Koorde's and Chord's (its 2-D space
reduces to one dimension via mod/div); Viceroy's 99th percentile is far
larger because node identities never cover the real interval evenly.
"""

from repro.analysis import format_table
from repro.experiments import run_key_distribution_experiment


def test_fig8_key_distribution_dense(benchmark, report):
    points = benchmark.pedantic(
        run_key_distribution_experiment,
        kwargs={"node_count": 2000, "seed": 8},
        rounds=1,
        iterations=1,
    )

    at_max = {p.protocol: p for p in points if p.keys == 100_000}

    # Viceroy is by far the least balanced.
    assert at_max["viceroy"].summary.p99 > 2 * at_max["cycloid"].summary.p99

    # Cycloid is within a small factor of the successor-placement DHTs.
    assert at_max["cycloid"].summary.spread <= 1.5 * at_max["chord"].summary.spread

    # Spread grows with the key count for every protocol.
    for protocol in ("cycloid", "viceroy", "chord", "koorde"):
        series = sorted(
            (p for p in points if p.protocol == protocol),
            key=lambda p: p.keys,
        )
        assert series[-1].summary.spread > series[0].summary.spread

    rows = [
        [
            p.protocol,
            p.keys,
            f"{p.summary.mean:.1f}",
            f"{p.summary.p1:.0f}",
            f"{p.summary.p99:.0f}",
        ]
        for p in sorted(points, key=lambda p: (p.protocol, p.keys))
        if p.keys in (10_000, 50_000, 100_000)
    ]
    report(
        format_table(
            ["protocol", "keys", "mean/node", "p1", "p99"],
            rows,
            title="Fig. 8 — key distribution, 2000 nodes in a 2048-id space",
        )
    )
