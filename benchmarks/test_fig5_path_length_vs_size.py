"""E1 — Fig. 5: lookup path lengths vs network size.

Complete networks of n = d * 2^d nodes (d = 3..8); all five DHT
configurations route the same sampled lookup workload.

Shape targets (paper §4.1): Viceroy's mean path is more than twice
Cycloid's; Cycloid < Koorde < Viceroy at every size from 160 nodes up;
the 11-entry Cycloid trades its extra state for shorter paths.
"""

from repro.analysis import ascii_series, format_table, series_by_protocol
from repro.experiments import run_path_length_experiment

LOOKUPS = 3000


def _by(points, protocol, dimension):
    return next(
        p for p in points if p.protocol == protocol and p.dimension == dimension
    )


def test_fig5_path_length_vs_size(benchmark, report):
    points = benchmark.pedantic(
        run_path_length_experiment,
        kwargs={"lookups": LOOKUPS, "seed": 42},
        rounds=1,
        iterations=1,
    )

    # No lookup ever fails in a stable network.
    assert all(p.failures == 0 for p in points)

    for dimension in (5, 6, 7, 8):
        cycloid = _by(points, "cycloid", dimension).mean_path_length
        koorde = _by(points, "koorde", dimension).mean_path_length
        viceroy = _by(points, "viceroy", dimension).mean_path_length
        eleven = _by(points, "cycloid-11", dimension).mean_path_length
        assert viceroy > 2 * cycloid, (dimension, viceroy, cycloid)
        assert cycloid < koorde, (dimension, cycloid, koorde)
        assert eleven < cycloid
        if dimension >= 6:
            # The Koorde/Viceroy gap opens as the network grows; at
            # n = 160 the two curves are still within noise of each
            # other, as in the paper's figure.
            assert koorde < viceroy, (dimension, koorde, viceroy)

    rows = [
        [
            p.size,
            p.dimension,
            p.protocol,
            f"{p.mean_path_length:.2f}",
            f"{p.summary.p99:.0f}",
        ]
        for p in sorted(points, key=lambda p: (p.size, p.protocol))
    ]
    report(
        format_table(
            ["n", "d", "protocol", "mean path", "p99"],
            rows,
            title="Fig. 5 — path length of lookups vs network size",
        )
    )
    report(
        ascii_series(
            series_by_protocol(
                points,
                x_of=lambda p: p.size,
                y_of=lambda p: p.mean_path_length,
                protocol_of=lambda p: p.protocol,
            ),
            title="Fig. 5 series (mean hops)",
            unit=" hops",
        )
    )
