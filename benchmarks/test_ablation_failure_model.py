"""Ablation — graceful vs silent departures (the §3.4 assumption).

The paper's failure experiment (§4.3) assumes *graceful* departures:
"nodes must notify others before leaving".  This ablation quantifies
what that assumption is worth by re-running the p = 0.2 departure
experiment with silent failures (our §5-future-work extension) and
showing how each design's redundancy copes:

* Chord's Theta(log n) successor list shrugs silent failures off;
* constant-degree Cycloid and Koorde degrade sharply — the very reason
  the paper scopes ungraceful departure out of the routing design;
* one stabilisation round repairs everything.
"""

from repro.analysis import format_table
from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.experiments.common import run_lookups
from repro.koorde import KoordeNetwork
from repro.util.rng import make_rng

PROBABILITY = 0.2
LOOKUPS = 3000

FACTORIES = {
    "cycloid": lambda: CycloidNetwork.complete(8),
    "chord": lambda: ChordNetwork.complete(11),
    "koorde": lambda: KoordeNetwork.complete(11),
}


def _depart(network, silent: bool) -> None:
    rng = make_rng(17)
    for node in list(network.live_nodes()):
        if network.size > 2 and rng.random() < PROBABILITY:
            if silent:
                network.fail(node)
            else:
                network.leave(node)


def run_ablation():
    results = {}
    for protocol, factory in FACTORIES.items():
        row = {}
        for mode, silent in (("graceful", False), ("silent", True)):
            network = factory()
            _depart(network, silent)
            row[mode] = run_lookups(network, LOOKUPS, seed=18)
            network.stabilize()
            row[f"{mode}+stabilized"] = run_lookups(
                network, LOOKUPS, seed=19
            )
        results[protocol] = row
    return results


def test_ablation_failure_model(benchmark, report):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    # Graceful departures: nobody fails (Koorde's p=0.2 failures are
    # rare; see EXPERIMENTS.md E7).
    assert results["cycloid"]["graceful"].failures == 0
    assert results["chord"]["graceful"].failures == 0
    assert results["koorde"]["graceful"].failures <= 0.04 * LOOKUPS

    # Silent failures: Chord's log-n successor list still resolves
    # everything; the constant-degree DHTs lose a substantial share.
    assert results["chord"]["silent"].failures == 0
    assert results["cycloid"]["silent"].failures > 0.04 * LOOKUPS
    assert results["koorde"]["silent"].failures > results["cycloid"][
        "silent"
    ].failures

    # One stabilisation round repairs every protocol completely.
    for protocol in FACTORIES:
        assert results[protocol]["silent+stabilized"].failures == 0
        assert (
            results[protocol]["silent+stabilized"].timeout_summary().maximum
            == 0
        )

    rows = []
    for protocol, modes in results.items():
        for mode in ("graceful", "silent", "silent+stabilized"):
            stats = modes[mode]
            rows.append(
                [
                    protocol,
                    mode,
                    f"{stats.mean_path_length:.2f}",
                    f"{stats.timeout_summary().mean:.2f}",
                    stats.failures,
                ]
            )
    report(
        format_table(
            ["protocol", "departure model", "mean path", "mean timeouts", "failures"],
            rows,
            title=(
                f"Ablation — graceful vs silent departures at p = "
                f"{PROBABILITY} (n = 2048, {LOOKUPS} lookups)"
            ),
        )
    )
