"""E7 — Fig. 11 + Table 4: massive simultaneous departures, no
stabilisation.

A stable 2048-node network gracefully loses each node with probability
p in {0.1..0.5}; 10 000 lookups then measure paths, timeouts and
failures.  Shape targets (paper §4.3):

* Cycloid and Chord resolve every lookup; their timeouts and paths grow
  with p (leaf sets / successor lists absorb the dead pointers).
* Viceroy never times out (joins/leaves repair all links) and its path
  *shrinks* because the network got smaller.
* Koorde has few timeouts but real lookup failures once p >= 0.3 — the
  de Bruijn pointer plus its three backups can all be dead.
"""

from repro.analysis import format_table
from repro.experiments import run_mass_departure_experiment

LOOKUPS = 10_000


def _series(points, protocol):
    return sorted(
        (p for p in points if p.protocol == protocol),
        key=lambda p: p.probability,
    )


def test_fig11_table4_mass_departures(benchmark, report):
    points = benchmark.pedantic(
        run_mass_departure_experiment,
        kwargs={"lookups": LOOKUPS, "seed": 11},
        rounds=1,
        iterations=1,
    )

    cycloid = _series(points, "cycloid")
    eleven = _series(points, "cycloid-11")
    chord = _series(points, "chord")
    viceroy = _series(points, "viceroy")
    koorde = _series(points, "koorde")

    # Cycloid, the 11-entry variant and Chord never fail a lookup.
    for series in (cycloid, eleven, chord):
        assert all(p.lookup_failures == 0 for p in series)

    # Their timeout means grow monotonically with p (Table 4 rows).
    for series in (cycloid, eleven, chord):
        means = [p.timeout_summary.mean for p in series]
        assert all(a < b for a, b in zip(means, means[1:])), means

    # Cycloid's path grows with p (Fig. 11) but stays far below
    # Viceroy's.
    assert cycloid[-1].mean_path_length > cycloid[0].mean_path_length
    for c, v in zip(cycloid, viceroy):
        assert c.mean_path_length < v.mean_path_length

    # Viceroy: zero timeouts, shrinking path.
    assert all(p.timeout_summary.maximum == 0 for p in viceroy)
    assert viceroy[-1].mean_path_length < viceroy[0].mean_path_length

    # Koorde: essentially no failures at p <= 0.2 (the paper reports
    # exactly zero; with 10k lookups the four-dead-pointers event is
    # rare but nonzero in our run — see EXPERIMENTS.md), substantial
    # failures from p >= 0.3 growing with p.
    for point in koorde:
        if point.probability <= 0.2:
            assert point.lookup_failures <= 0.02 * point.lookups, point
        if point.probability >= 0.3:
            assert point.lookup_failures >= 0.02 * point.lookups, point
    failure_counts = [p.lookup_failures for p in koorde]
    assert failure_counts[-1] > failure_counts[2] > failure_counts[0]

    rows = [
        [
            p.protocol,
            f"{p.probability:.1f}",
            p.survivors,
            f"{p.mean_path_length:.2f}",
            p.timeout_row(),
            p.lookup_failures,
        ]
        for p in sorted(points, key=lambda p: (p.protocol, p.probability))
    ]
    report(
        format_table(
            ["protocol", "p", "survivors", "mean path", "timeouts (p1, p99)", "failures"],
            rows,
            title=(
                "Fig. 11 + Table 4 — massive node departures without "
                f"stabilisation ({LOOKUPS} lookups)"
            ),
        )
    )
