"""Benchmark-suite plumbing.

Each benchmark regenerates one table or figure of the paper at full
scale and registers its formatted output through the ``report`` fixture;
everything collected is echoed into the terminal summary so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
the reproduced tables alongside the timing data.
"""

from __future__ import annotations

from typing import List

import pytest

_REPORTS: List[str] = []


@pytest.fixture
def report():
    """Collect a formatted figure/table for the terminal summary."""

    def _collect(text: str) -> None:
        _REPORTS.append(text)

    return _collect


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced tables and figures")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
