"""E11 — Tables 1 and 3: architectural comparison, measured.

The paper's Table 1 (base network / lookup complexity / routing-table
size) and Table 3 (ID space / key placement) are analytic; here each
claim is checked against the living implementations: every Cycloid node
holds at most 7 entries (11 in the extended variant), Viceroy exactly
7 links, Koorde 7 entries, while Chord's state grows with log n.
"""

from repro.analysis import format_table
from repro.experiments import architecture_table


def test_table1_architecture(benchmark, report):
    rows = benchmark.pedantic(
        architecture_table,
        kwargs={"dimension": 6, "seed": 1},
        rounds=1,
        iterations=1,
    )

    by_protocol = {r.protocol: r for r in rows}
    assert by_protocol["cycloid"].max_observed_state == 7
    assert by_protocol["cycloid-11"].max_observed_state == 11
    assert by_protocol["viceroy"].max_observed_state == 7
    assert by_protocol["koorde"].max_observed_state <= 8
    # Chord's state is Theta(log n): far above the constant-degree DHTs.
    assert by_protocol["chord"].max_observed_state > 11

    table = [
        [
            r.label,
            r.base_network,
            r.lookup_complexity,
            r.routing_state,
            r.id_space,
            r.key_placement,
            r.max_observed_state,
        ]
        for r in rows
    ]
    report(
        format_table(
            [
                "system",
                "base network",
                "lookup",
                "state (paper)",
                "ID space",
                "key placement",
                "state (measured max)",
            ],
            table,
            title="Tables 1 and 3 — architectural comparison (measured)",
        )
    )
