"""Ablation — leaf-set radius: the state/hop-count trade-off.

The paper evaluates the 7-entry (radius 1) and 11-entry (radius 2)
Cycloid configurations; this ablation extends the sweep to radius 3
(15 entries) and quantifies the diminishing return, plus the
fault-tolerance side of the trade: wider leaf sets absorb more dead
pointers under mass departures.
"""

from repro.analysis import format_table
from repro.core import CycloidNetwork
from repro.experiments.common import fail_nodes, run_lookups
from repro.util.rng import make_rng

DIMENSION = 8
LOOKUPS = 4000
RADII = (1, 2, 3)


def _measure(radius: int, departure_probability: float = 0.0):
    network = CycloidNetwork.complete(DIMENSION, leaf_radius=radius)
    if departure_probability:
        fail_nodes(network, departure_probability, make_rng(99))
    stats = run_lookups(network, LOOKUPS, seed=41)
    return network, stats


def test_ablation_leaf_radius(benchmark, report):
    def run():
        results = {}
        for radius in RADII:
            _, stable = _measure(radius)
            net, departed = _measure(radius, departure_probability=0.3)
            results[radius] = (stable, departed, net)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    stable_means = {r: results[r][0].mean_path_length for r in RADII}
    departed_timeouts = {
        r: results[r][1].timeout_summary().mean for r in RADII
    }

    # Monotone improvement with radius, with diminishing returns: the
    # 1->2 gain exceeds the 2->3 gain.
    assert stable_means[1] > stable_means[2] > stable_means[3]
    gain_12 = stable_means[1] - stable_means[2]
    gain_23 = stable_means[2] - stable_means[3]
    assert gain_12 > gain_23 > 0

    # Wider leaf sets also reduce timeouts under mass departures.
    assert departed_timeouts[1] > departed_timeouts[3]

    # No lookup failures at any radius, stable or departed.
    for radius in RADII:
        assert results[radius][0].failures == 0
        assert results[radius][1].failures == 0

    rows = []
    for radius in RADII:
        stable, departed, network = results[radius]
        state = 3 + 4 * radius
        rows.append(
            [
                radius,
                state,
                f"{stable.mean_path_length:.2f}",
                f"{departed.mean_path_length:.2f}",
                f"{departed.timeout_summary().mean:.2f}",
            ]
        )
    report(
        format_table(
            [
                "leaf radius",
                "state size",
                "mean path (stable)",
                "mean path (p=0.3)",
                "timeouts (p=0.3)",
            ],
            rows,
            title=(
                "Ablation — Cycloid leaf-set radius "
                f"(d={DIMENSION}, n=2048): state vs hops vs robustness"
            ),
        )
    )
