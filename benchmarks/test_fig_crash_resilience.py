"""Crash resilience at paper scale (E13, the acceptance configuration).

Ungraceful crashes at p = 0.3 on d = 8 networks (n = 2048), seeded,
with 5% message loss: every overlay's lookup success rate must be
*strictly* higher with the engine's retry machinery (probes, ranked
fallbacks, lazy route repair) than with a zero retry budget, and the
retry counters must actually be exercised.
"""

from repro.analysis import format_table
from repro.experiments.crash import (
    MODE_CRASH,
    MODE_CRASH_RETRY,
    MODE_GRACEFUL,
    run_crash_experiment,
)
from repro.experiments.registry import ALL_PROTOCOLS

PROBABILITY = 0.3
DIMENSION = 8
LOOKUPS = 2000


def run_sweep():
    return run_crash_experiment(
        probabilities=(PROBABILITY,),
        protocols=ALL_PROTOCOLS,
        dimension=DIMENSION,
        lookups=LOOKUPS,
        seed=42,
    )


def test_fig_crash_resilience(benchmark, report):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    by_key = {(p.protocol, p.mode): p for p in points}
    for protocol in ALL_PROTOCOLS:
        graceful = by_key[(protocol, MODE_GRACEFUL)]
        crash = by_key[(protocol, MODE_CRASH)]
        retry = by_key[(protocol, MODE_CRASH_RETRY)]

        # graceful departures stay the easy case
        assert graceful.success_rate > crash.success_rate, protocol
        # the acceptance criterion: retries strictly improve survival
        # under the same seeded crash set
        assert retry.success_rate > crash.success_rate, protocol
        # and the retry machinery is genuinely exercised
        assert retry.retries > 0, protocol
        assert crash.retries == 0, protocol
        assert retry.departed == crash.departed > 0, protocol

    rows = [
        [
            p.protocol,
            p.mode,
            f"{p.success_rate * 100:.1f}%",
            f"{p.mean_path_length:.2f}",
            p.timeout_row(),
            f"{p.mean_retries:.2f}",
            p.route_repairs,
        ]
        for p in points
    ]
    report(
        format_table(
            [
                "protocol",
                "mode",
                "success",
                "mean path",
                "timeouts",
                "retries",
                "repairs",
            ],
            rows,
            title=(
                f"Crash resilience at p = {PROBABILITY} "
                f"(d = {DIMENSION}, {LOOKUPS} lookups, 5% message loss)"
            ),
        )
    )
