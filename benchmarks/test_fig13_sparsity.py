"""E9 — Fig. 13: path length vs degree of ID-space sparsity.

2048-identifier spaces populated at 100% down to 10%.  Shape targets
(paper §4.5): no lookup failures anywhere; Cycloid's mean path does not
degrade (it decreases slightly with the shrinking population); Viceroy
is essentially flat; Koorde's path *increases* as gaps force extra
successor hops.
"""

from repro.analysis import ascii_series, format_table, series_by_protocol
from repro.experiments import run_sparsity_experiment

LOOKUPS = 5000


def test_fig13_sparsity(benchmark, report):
    points = benchmark.pedantic(
        run_sparsity_experiment,
        kwargs={"lookups": LOOKUPS, "seed": 13},
        rounds=1,
        iterations=1,
    )

    assert all(p.lookup_failures == 0 for p in points)

    def series(protocol):
        return sorted(
            (p for p in points if p.protocol == protocol),
            key=lambda p: p.sparsity,
        )

    cycloid = series("cycloid")
    koorde = series("koorde")
    viceroy = series("viceroy")

    # Cycloid: sparsity has no adverse effect — the sparsest
    # configuration is no slower than the dense one.
    assert cycloid[-1].mean_path_length <= cycloid[0].mean_path_length + 0.5
    assert max(p.mean_path_length for p in cycloid) <= (
        cycloid[0].mean_path_length + 1.5
    )

    # Koorde: clear degradation with sparsity.
    assert koorde[-1].mean_path_length > koorde[0].mean_path_length + 3.0

    # Viceroy: roughly flat (its real-interval space is always sparse);
    # path shrinks if anything because the population shrinks.
    assert viceroy[-1].mean_path_length <= viceroy[0].mean_path_length + 1.0

    rows = [
        [
            p.protocol,
            f"{p.sparsity:.1f}",
            p.population,
            f"{p.mean_path_length:.2f}",
        ]
        for p in sorted(points, key=lambda p: (p.protocol, p.sparsity))
    ]
    report(
        format_table(
            ["protocol", "sparsity", "nodes", "mean path"],
            rows,
            title="Fig. 13 — path length vs degree of network sparsity",
        )
    )
    report(
        ascii_series(
            series_by_protocol(
                points,
                x_of=lambda p: p.sparsity,
                y_of=lambda p: p.mean_path_length,
                protocol_of=lambda p: p.protocol,
            ),
            title="Fig. 13 series (mean hops vs sparsity)",
            unit=" hops",
        )
    )
