"""E5 — Fig. 9: key distribution in a sparse 1000-node network.

1000 nodes in the 2048-identifier space.  Shape target (paper §4.2):
with only half the identifier space occupied, Cycloid's closest-node
placement splits each gap between the two surrounding nodes and beats
Koorde's successor placement on balance — the paper's answer to
Kaashoek & Karger's degree-optimal-and-balanced question.
"""

from repro.analysis import format_table
from repro.experiments import run_key_distribution_experiment


def test_fig9_key_distribution_sparse(benchmark, report):
    points = benchmark.pedantic(
        run_key_distribution_experiment,
        kwargs={
            "node_count": 1000,
            "protocols": ("cycloid", "koorde", "chord"),
            "seed": 9,
        },
        rounds=1,
        iterations=1,
    )

    for keys in (10_000, 100_000):
        at = {p.protocol: p for p in points if p.keys == keys}
        # Cycloid more balanced than Koorde in the sparse regime.
        assert at["cycloid"].summary.spread < at["koorde"].summary.spread
        assert at["cycloid"].summary.p99 <= at["koorde"].summary.p99

    rows = [
        [
            p.protocol,
            p.keys,
            f"{p.summary.mean:.1f}",
            f"{p.summary.p1:.0f}",
            f"{p.summary.p99:.0f}",
        ]
        for p in sorted(points, key=lambda p: (p.protocol, p.keys))
        if p.keys in (10_000, 50_000, 100_000)
    ]
    report(
        format_table(
            ["protocol", "keys", "mean/node", "p1", "p99"],
            rows,
            title="Fig. 9 — key distribution, 1000 nodes in a 2048-id space",
        )
    )
