"""E6 — Fig. 10: query-load variance across nodes.

Networks of 64 and 2048 nodes route a uniform lookup workload; each
node counts the queries it receives.  Shape target (paper §4.2):
Cycloid exhibits the smallest spread among the constant-degree DHTs —
Viceroy concentrates load on low-level nodes, Koorde on even
identifiers.
"""

from repro.analysis import format_table
from repro.experiments import run_query_load_experiment


def test_fig10_query_load(benchmark, report):
    points = benchmark.pedantic(
        run_query_load_experiment,
        kwargs={"lookups_per_node": 8, "seed": 10},
        rounds=1,
        iterations=1,
    )

    for dimension in (4, 8):
        at = {
            p.protocol: p for p in points if p.dimension == dimension
        }
        # Fig. 10 plots raw per-node query counts: Cycloid's p1..p99
        # band is the narrowest among the constant-degree DHTs (Koorde
        # splits into heavy even / light odd identifiers; Viceroy piles
        # load onto its low levels).
        assert (
            at["cycloid"].summary.spread < at["viceroy"].summary.spread
        ), dimension
        assert (
            at["cycloid"].summary.spread < at["koorde"].summary.spread
        ), dimension
        assert at["cycloid"].summary.p99 < at["koorde"].summary.p99

    rows = [
        [
            p.protocol,
            p.size,
            p.lookups,
            f"{p.summary.mean:.1f}",
            f"{p.summary.p1:.0f}",
            f"{p.summary.p99:.0f}",
            f"{p.relative_spread:.2f}",
        ]
        for p in sorted(points, key=lambda p: (p.size, p.protocol))
    ]
    report(
        format_table(
            ["protocol", "n", "lookups", "mean load", "p1", "p99", "spread/mean"],
            rows,
            title="Fig. 10 — query load received per node",
        )
    )
