"""E8 — Fig. 12 + Table 5: lookups during continuous joins and leaves.

The §4.4 setting: 2048 starting nodes, lookups at 1/s, joins and leaves
Poisson at R in {0.05..0.40} each, per-node stabilisation every 30 s
with uniform phases.  Shape targets:

* path lengths sit at their steady-state values and do not drift with
  R for any DHT;
* stabilisation removes the majority of timeouts (compare Table 4) and
  every lookup succeeds;
* Viceroy still shows zero timeouts.
"""

from repro.analysis import format_table
from repro.experiments import run_churn_experiment

RATES = (0.05, 0.10, 0.20, 0.30, 0.40)
DURATION = 1000.0


def test_fig12_table5_churn(benchmark, report):
    points = benchmark.pedantic(
        run_churn_experiment,
        kwargs={"rates": RATES, "duration": DURATION, "seed": 12},
        rounds=1,
        iterations=1,
    )

    # Zero lookup failures anywhere ("There are no failures in all test
    # cases").
    assert all(p.lookup_failures == 0 for p in points)

    # Timeouts stay tiny: stabilisation removes the staleness that
    # Table 4 measured (mean well below one per lookup).
    for point in points:
        assert point.timeout_summary.mean < 0.6, point
        if point.protocol == "viceroy":
            assert point.timeout_summary.maximum == 0

    # Path lengths do not drift with R: max-min within each protocol is
    # small relative to the mean.
    for protocol in ("cycloid", "cycloid-11", "chord", "koorde", "viceroy"):
        series = [p for p in points if p.protocol == protocol]
        paths = [p.mean_path_length for p in series]
        assert max(paths) - min(paths) < 0.25 * (sum(paths) / len(paths)), (
            protocol,
            paths,
        )

    # Cycloid remains far more lookup-efficient than Viceroy under
    # churn.
    for rate in RATES:
        cycloid = next(
            p for p in points if p.protocol == "cycloid" and p.rate == rate
        )
        viceroy = next(
            p for p in points if p.protocol == "viceroy" and p.rate == rate
        )
        assert cycloid.mean_path_length < 0.6 * viceroy.mean_path_length

    rows = [
        [
            p.protocol,
            f"{p.rate:.2f}",
            f"{p.mean_path_length:.2f}",
            p.timeout_row(),
            p.lookup_failures,
            p.joins,
            p.leaves,
            p.final_size,
        ]
        for p in sorted(points, key=lambda p: (p.protocol, p.rate))
    ]
    report(
        format_table(
            [
                "protocol",
                "R (/s)",
                "mean path",
                "timeouts (p1, p99)",
                "failures",
                "joins",
                "leaves",
                "final n",
            ],
            rows,
            title=(
                "Fig. 12 + Table 5 — lookups during churn with 30 s "
                "stabilisation"
            ),
        )
    )
