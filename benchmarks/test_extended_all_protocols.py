"""Extension — the full Table 1 roster on one workload.

Runs every implemented system (the paper's five evaluated
configurations plus Pastry and CAN) on identical lookup workloads at
two sizes and checks the complexity classes of Table 1 show up as
measured behaviour:

* state: constant for Cycloid/Viceroy/Koorde/CAN; Theta(log n) for
  Chord and Pastry (their state grows with n, the others' does not);
* hops: Pastry/Chord shortest (paying state for it), Cycloid the best
  constant-state system, CAN's O(n^(1/2)) curve rising fastest.
"""

from repro.analysis import format_table
from repro.experiments import build_complete_network, protocol_label, run_lookups
from repro.experiments.registry import ALL_PROTOCOLS

DIMENSIONS = (5, 7)  # 160 and 896 nodes
LOOKUPS = 2000


def _max_state(network) -> int:
    return max(
        getattr(node, "state_size", node.degree)
        for node in network.live_nodes()
    )


def run_roster():
    results = {}
    for dimension in DIMENSIONS:
        for protocol in ALL_PROTOCOLS:
            network = build_complete_network(protocol, dimension, seed=31)
            if protocol == "can":
                network.stabilize()  # CAN wires neighbours lazily on build
            stats = run_lookups(network, LOOKUPS, seed=32)
            results[(protocol, dimension)] = (
                network.size,
                _max_state(network),
                stats.mean_path_length,
                stats.failures,
            )
    return results


def test_extended_all_protocols(benchmark, report):
    results = benchmark.pedantic(run_roster, rounds=1, iterations=1)

    # No failures anywhere.
    assert all(row[3] == 0 for row in results.values())

    small, large = DIMENSIONS
    for protocol in ("cycloid", "cycloid-11", "viceroy", "koorde", "can"):
        # Constant-state systems: state does not grow with n.
        assert (
            results[(protocol, large)][1] <= results[(protocol, small)][1] + 3
        ), protocol
    for protocol in ("chord", "pastry"):
        # Log-state systems: state clearly grows.
        assert results[(protocol, large)][1] > results[(protocol, small)][1]

    # Among constant-state systems, Cycloid routes shortest at both sizes.
    for dimension in DIMENSIONS:
        cycloid_hops = results[("cycloid", dimension)][2]
        for protocol in ("viceroy", "koorde", "can"):
            assert cycloid_hops < results[(protocol, dimension)][2], (
                protocol,
                dimension,
            )

    rows = [
        [
            protocol_label(protocol),
            results[(protocol, dimension)][0],
            results[(protocol, dimension)][1],
            f"{results[(protocol, dimension)][2]:.2f}",
        ]
        for dimension in DIMENSIONS
        for protocol in ALL_PROTOCOLS
    ]
    report(
        format_table(
            ["system", "nodes", "max state", "mean hops"],
            rows,
            title=(
                "Extension — full Table 1 roster on one workload "
                f"({LOOKUPS} lookups per point)"
            ),
        )
    )
