"""E2 — Fig. 6: lookup path lengths as a function of network dimension.

Same measurements as Fig. 5, read against the dimension axis.  Shape
targets (paper §4.1): Cycloid's path grows roughly linearly in d and
stays lowest; Viceroy's path climbs much faster with the dimension
because one extra Cycloid dimension multiplies the population by
(d+1) * 2 while Viceroy/Koorde only double.
"""

from repro.analysis import ascii_series, format_table, series_by_protocol
from repro.experiments import run_path_length_experiment

LOOKUPS = 3000


def test_fig6_path_length_vs_dimension(benchmark, report):
    points = benchmark.pedantic(
        run_path_length_experiment,
        kwargs={"lookups": LOOKUPS, "seed": 24},
        rounds=1,
        iterations=1,
    )

    cycloid = sorted(
        (p for p in points if p.protocol == "cycloid"),
        key=lambda p: p.dimension,
    )
    viceroy = sorted(
        (p for p in points if p.protocol == "viceroy"),
        key=lambda p: p.dimension,
    )

    # Cycloid grows monotonically and sub-linearly: about one extra hop
    # per extra dimension.
    for previous, current in zip(cycloid, cycloid[1:]):
        growth = current.mean_path_length - previous.mean_path_length
        assert 0.0 < growth < 2.5, (previous.dimension, growth)

    # Viceroy's total growth over d = 3..8 far exceeds Cycloid's.
    viceroy_growth = viceroy[-1].mean_path_length - viceroy[0].mean_path_length
    cycloid_growth = cycloid[-1].mean_path_length - cycloid[0].mean_path_length
    assert viceroy_growth > 2 * cycloid_growth

    # At every dimension Cycloid is the most lookup-efficient
    # *constant-degree* DHT, and stays within a factor of two of Chord,
    # which buys its short paths with O(log n) routing state.
    for dimension in range(3, 9):
        at = {
            p.protocol: p.mean_path_length
            for p in points
            if p.dimension == dimension
        }
        assert at["cycloid"] < at["koorde"]
        assert at["cycloid"] < at["viceroy"]
        assert at["cycloid"] <= 2.0 * at["chord"]

    rows = [
        [p.dimension, p.protocol, f"{p.mean_path_length:.2f}"]
        for p in sorted(points, key=lambda p: (p.dimension, p.protocol))
    ]
    report(
        format_table(
            ["d", "protocol", "mean path"],
            rows,
            title="Fig. 6 — path length vs network dimension",
        )
    )
    report(
        ascii_series(
            series_by_protocol(
                points,
                x_of=lambda p: p.dimension,
                y_of=lambda p: p.mean_path_length,
                protocol_of=lambda p: p.protocol,
            ),
            title="Fig. 6 series (mean hops vs d)",
            unit=" hops",
        )
    )
