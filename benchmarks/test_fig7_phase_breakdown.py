"""E3 — Fig. 7: breakdown of the lookup cost by routing phase.

(a) Cycloid: ascending / descending / traverse — ascending is a small
    share (<= ~15%) because the outside leaf set points straight at a
    primary node.
(b) Viceroy: ascending ~30%, descending ~20%, traverse more than the
    rest — most of the cost sits in the final ring walk.
(c) Koorde: de Bruijn vs successor hops — successors are roughly 30%
    in dense networks.
"""

from repro.analysis import format_table
from repro.experiments import run_phase_breakdown_experiment

LOOKUPS = 3000


def test_fig7_phase_breakdown(benchmark, report):
    points = benchmark.pedantic(
        run_phase_breakdown_experiment,
        kwargs={"dimensions": (4, 5, 6, 7, 8), "lookups": LOOKUPS, "seed": 7},
        rounds=1,
        iterations=1,
    )

    for point in points:
        fractions = point.fraction_by_phase
        if point.protocol == "cycloid":
            assert fractions["ascending"] <= 0.16, point
        elif point.protocol == "viceroy":
            assert 0.12 <= fractions["ascending"] <= 0.45, point
            assert fractions["traverse"] >= 0.30, point
        elif point.protocol == "koorde":
            # ~30% successor hops in *dense* rings (paper Fig. 7c);
            # Koorde's ring fills to a power of two, so for network
            # sizes well below it the share rises (that effect is
            # Fig. 14's subject).
            ring = 1 << max(1, (point.size - 1).bit_length())
            density = point.size / ring
            if density == 1.0:  # complete ring (n = 64 and n = 2048)
                assert 0.20 <= fractions["successor"] <= 0.40, point
            else:
                assert fractions["successor"] <= 0.60, point

    # Cycloid's ascending share is well below Viceroy's at every size.
    for dimension in (4, 5, 6, 7, 8):
        cycloid = next(
            p for p in points
            if p.protocol == "cycloid" and p.dimension == dimension
        )
        viceroy = next(
            p for p in points
            if p.protocol == "viceroy" and p.dimension == dimension
        )
        assert (
            cycloid.fraction_by_phase["ascending"]
            < viceroy.fraction_by_phase["ascending"]
        )

    rows = []
    for point in sorted(points, key=lambda p: (p.protocol, p.dimension)):
        for phase in sorted(point.fraction_by_phase):
            rows.append(
                [
                    point.protocol,
                    point.size,
                    phase,
                    f"{point.mean_hops_by_phase[phase]:.2f}",
                    f"{point.fraction_by_phase[phase] * 100:.0f}%",
                ]
            )
    report(
        format_table(
            ["protocol", "n", "phase", "mean hops", "share"],
            rows,
            title="Fig. 7 — path length breakdown by phase",
        )
    )
