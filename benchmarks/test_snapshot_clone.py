"""§S21 micro-benchmarks: build-once snapshots and the ring hot path.

Two guards ride the benchmark suite:

* ``run_clone_bench`` at full fig-5 scale (d = 8, n = 2048) must show a
  snapshot restore at least 3x cheaper than the full join-protocol
  rebuild it replaces, with bit-identical digests.
* ``SortedRing.successor_run`` is called once per node per capture and
  inside Chord/Koorde maintenance; the two-slice implementation must
  stay well under the cost of a per-step modular walk (guarded here as
  an absolute budget on a 2048-node ring).
"""

import time

from repro.analysis import format_clone_bench_table
from repro.dht.ring import SortedRing
from repro.experiments import run_clone_bench

RING_BITS = 16
RING_NODES = 2048
RUN_LENGTH = 16


def test_snapshot_restore_vs_rebuild(benchmark, report):
    cells = benchmark.pedantic(
        run_clone_bench,
        kwargs={"dimension": 8, "lookups": 400, "seed": 42, "repeats": 5},
        rounds=1,
        iterations=1,
    )
    report(format_clone_bench_table(cells))
    assert all(cell.digest_match for cell in cells)
    assert all(cell.population == 2048 for cell in cells)
    for cell in cells:
        assert cell.restore_speedup >= 3.0, (
            cell.protocol,
            cell.restore_speedup,
        )


def test_successor_run_two_slice_budget(benchmark):
    ring = SortedRing(RING_BITS)
    step = (1 << RING_BITS) // RING_NODES
    ids = [i * step for i in range(RING_NODES)]
    for node_id in ids:
        ring.add(node_id, node_id)

    def sweep():
        for node_id in ids:
            ring.successor_run(node_id, RUN_LENGTH)

    benchmark.pedantic(sweep, rounds=3, iterations=1)

    # Absolute guard, generous enough for CI noise: the full sweep is
    # 2048 runs of 16 successors; the two-slice form does it in a few
    # milliseconds where the per-step modular walk took tens.
    start = time.perf_counter()
    sweep()
    elapsed = time.perf_counter() - start
    assert elapsed < 0.25, f"successor_run sweep took {elapsed:.3f}s"
