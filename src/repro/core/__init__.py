"""Cycloid — the paper's primary contribution.

A constant-degree DHT emulating a cube-connected-cycles (CCC) graph.
Each node ``(k, a_{d-1}...a_0)`` keeps seven routing entries (one cubical
neighbour, two cyclic neighbours, two-node inside leaf set, two-node
outside leaf set); the 11-entry variant doubles each leaf set.  Lookups
resolve in O(d) hops through ascending, descending and traverse-cycle
phases (paper §3).
"""

from repro.core.network import CycloidNetwork
from repro.core.node import CycloidNode
from repro.core.topology import CycloidTopology

__all__ = ["CycloidNetwork", "CycloidNode", "CycloidTopology"]
