"""Cycloid node state: routing table plus inside/outside leaf sets.

The paper's seven-entry configuration (§3.1, Table 2):

* one **cubical neighbour** ``(k-1, a_{d-1}..a_{k+1} ~a_k x..x)`` — same
  prefix above bit ``k``, bit ``k`` flipped, low bits arbitrary;
* two **cyclic neighbours** at cyclic index ``k-1`` sharing the prefix
  above bit ``k-1`` — the first larger and first smaller cubical indices;
* a two-node **inside leaf set**: predecessor and successor on the local
  cycle (nodes sharing the cubical index, ordered by cyclic index);
* a two-node **outside leaf set**: the primary node (largest cyclic
  index) of the preceding and succeeding non-empty remote cycles on the
  large cycle of cubical indices.

The 11-entry variant (§3.2, end) keeps ``leaf_radius = 2`` nodes per
leaf-set side instead of one.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.dht.base import Node
from repro.dht.identifiers import CycloidId

__all__ = ["CycloidNode"]


class CycloidNode(Node):
    """A Cycloid participant."""

    __slots__ = (
        "id",
        "cubical_neighbor",
        "cyclic_larger",
        "cyclic_smaller",
        "inside_left",
        "inside_right",
        "outside_left",
        "outside_right",
    )

    def __init__(self, name: object, node_id: CycloidId) -> None:
        super().__init__(name)
        self.id = node_id
        #: routing table (stale after churn until stabilisation)
        self.cubical_neighbor: Optional["CycloidNode"] = None
        self.cyclic_larger: Optional["CycloidNode"] = None
        self.cyclic_smaller: Optional["CycloidNode"] = None
        #: leaf sets, closest entry first (kept fresh by join/leave
        #: notifications).  ``inside_left`` holds local-cycle
        #: predecessors, ``inside_right`` successors; ``outside_left``
        #: holds primaries of preceding remote cycles, ``outside_right``
        #: of succeeding ones.
        self.inside_left: List["CycloidNode"] = []
        self.inside_right: List["CycloidNode"] = []
        self.outside_left: List["CycloidNode"] = []
        self.outside_right: List["CycloidNode"] = []

    @property
    def node_id(self) -> CycloidId:
        return self.id

    @property
    def cyclic(self) -> int:
        return self.id.cyclic

    @property
    def cubical(self) -> int:
        return self.id.cubical

    @property
    def dimension(self) -> int:
        return self.id.dimension

    def leaf_entries(self) -> Iterator["CycloidNode"]:
        """All leaf-set entries (may repeat a node across sides)."""
        yield from self.inside_left
        yield from self.inside_right
        yield from self.outside_left
        yield from self.outside_right

    def routing_entries(self) -> Iterator["CycloidNode"]:
        """The (at most three) routing-table entries that are present."""
        if self.cubical_neighbor is not None:
            yield self.cubical_neighbor
        if self.cyclic_larger is not None:
            yield self.cyclic_larger
        if self.cyclic_smaller is not None:
            yield self.cyclic_smaller

    @property
    def degree(self) -> int:
        unique = {
            entry.id for entry in self.leaf_entries() if entry is not self
        }
        unique.update(entry.id for entry in self.routing_entries())
        unique.discard(self.id)
        return len(unique)

    @property
    def state_size(self) -> int:
        """Total routing-state slots (7 for radius 1, 11 for radius 2)."""
        return 3 + sum(
            len(side)
            for side in (
                self.inside_left,
                self.inside_right,
                self.outside_left,
                self.outside_right,
            )
        )
