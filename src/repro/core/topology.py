"""Global (omniscient) view of a Cycloid population.

Maintains the live membership indexed three ways:

* per local cycle — sorted cyclic indices for each non-empty cubical
  index (inside leaf sets, primaries);
* the large cycle — sorted non-empty cubical indices (outside leaf
  sets);
* per cyclic index — sorted cubical indices (cubical / cyclic neighbour
  block queries).

Like :class:`repro.dht.ring.SortedRing` for the ring DHTs, this is the
substrate for ground-truth owners and for (idealised) wiring; routing
itself only ever reads per-node state.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dht.identifiers import CycloidId, cycloid_space_size
from repro.dht.snapshot import register_composite

__all__ = ["CycloidTopology"]


class CycloidTopology:
    """Live Cycloid membership with the index structures wiring needs."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        self.dimension = dimension
        self.space = cycloid_space_size(dimension)
        self._nodes: Dict[Tuple[int, int], object] = {}
        #: cubical index -> sorted cyclic indices present in that cycle
        self._cycles: Dict[int, List[int]] = {}
        #: sorted non-empty cubical indices (the large cycle)
        self._cubicals: List[int] = []
        #: cyclic index -> sorted cubical indices having that cyclic index
        self._by_cyclic: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: CycloidId) -> bool:
        return (node_id.cyclic, node_id.cubical) in self._nodes

    def add(self, node_id: CycloidId, node: object) -> None:
        key = (node_id.cyclic, node_id.cubical)
        if key in self._nodes:
            raise ValueError(f"duplicate cycloid id {node_id}")
        self._nodes[key] = node
        cycle = self._cycles.get(node_id.cubical)
        if cycle is None:
            self._cycles[node_id.cubical] = [node_id.cyclic]
            bisect.insort(self._cubicals, node_id.cubical)
        else:
            bisect.insort(cycle, node_id.cyclic)
        bisect.insort(
            self._by_cyclic.setdefault(node_id.cyclic, []), node_id.cubical
        )

    def remove(self, node_id: CycloidId) -> object:
        key = (node_id.cyclic, node_id.cubical)
        if key not in self._nodes:
            raise KeyError(node_id)
        node = self._nodes.pop(key)
        cycle = self._cycles[node_id.cubical]
        cycle.remove(node_id.cyclic)
        if not cycle:
            del self._cycles[node_id.cubical]
            self._cubicals.remove(node_id.cubical)
        row = self._by_cyclic[node_id.cyclic]
        row.remove(node_id.cubical)
        if not row:
            del self._by_cyclic[node_id.cyclic]
        return node

    def get(self, cyclic: int, cubical: int) -> object:
        return self._nodes[(cyclic, cubical)]

    def try_get(self, cyclic: int, cubical: int) -> Optional[object]:
        return self._nodes.get((cyclic, cubical))

    def nodes(self) -> Iterator[object]:
        """Live nodes ordered by (cubical, cyclic) — the ID-space order."""
        for cubical in self._cubicals:
            for cyclic in self._cycles[cubical]:
                yield self._nodes[(cyclic, cubical)]

    def ids(self) -> Iterator[CycloidId]:
        for cubical in self._cubicals:
            for cyclic in self._cycles[cubical]:
                yield CycloidId(cyclic, cubical, self.dimension)

    # ------------------------------------------------------------------
    # local cycles
    # ------------------------------------------------------------------

    def cycle_members(self, cubical: int) -> List[int]:
        """Sorted cyclic indices present in cycle ``cubical`` ([] if empty)."""
        return list(self._cycles.get(cubical, ()))

    def cycle_count(self) -> int:
        return len(self._cubicals)

    def primary_of(self, cubical: int) -> object:
        """The primary node (largest cyclic index) of a non-empty cycle."""
        cycle = self._cycles[cubical]
        return self._nodes[(cycle[-1], cubical)]

    def cycle_neighbors(
        self, cyclic: int, cubical: int
    ) -> Tuple[Optional[object], Optional[object]]:
        """Predecessor and successor of ``(cyclic, cubical)`` on its cycle.

        Wraps around (cyclic indices mod d); a node alone in its cycle is
        its own predecessor and successor (paper §3.3.1 case 2).
        """
        cycle = self._cycles.get(cubical)
        if not cycle:
            return None, None
        index = bisect.bisect_left(cycle, cyclic)
        if index >= len(cycle) or cycle[index] != cyclic:
            raise KeyError((cyclic, cubical))
        pred = cycle[(index - 1) % len(cycle)]
        succ = cycle[(index + 1) % len(cycle)]
        return self._nodes[(pred, cubical)], self._nodes[(succ, cubical)]

    # ------------------------------------------------------------------
    # large cycle (non-empty cubical indices)
    # ------------------------------------------------------------------

    def preceding_cycles(self, cubical: int, count: int) -> List[int]:
        """Up to ``count`` non-empty cubical indices counter-clockwise of
        ``cubical`` (nearest first), excluding ``cubical`` itself unless
        it is the only non-empty cycle."""
        return self._cycle_walk(cubical, count, step=-1)

    def succeeding_cycles(self, cubical: int, count: int) -> List[int]:
        """Clockwise counterpart of :meth:`preceding_cycles`."""
        return self._cycle_walk(cubical, count, step=+1)

    def _cycle_walk(self, cubical: int, count: int, step: int) -> List[int]:
        if not self._cubicals or count <= 0:
            return []
        total = len(self._cubicals)
        index = bisect.bisect_left(self._cubicals, cubical)
        present = index < total and self._cubicals[index] == cubical
        if present and total == 1:
            # The only non-empty cycle wraps onto itself (a lone cycle's
            # outside leaf set refers back to its own primary).
            return [cubical]
        if step > 0:
            position = (index + 1) if present else index
        else:
            position = index - 1
        # Never revisit the starting cycle; each other cycle at most once.
        remaining = total - (1 if present else 0)
        result: List[int] = []
        for _ in range(min(count, remaining)):
            result.append(self._cubicals[position % total])
            position += step
        return result

    # ------------------------------------------------------------------
    # neighbour block queries (per cyclic index)
    # ------------------------------------------------------------------

    def in_block(
        self, cyclic: int, block_start: int, block_size: int, anchor: int
    ) -> Optional[object]:
        """A node with cyclic index ``cyclic`` and cubical index within
        ``[block_start, block_start + block_size)``, preferring the one
        numerically closest to ``anchor``; ``None`` if the block is empty.
        """
        row = self._by_cyclic.get(cyclic)
        if not row:
            return None
        lo = bisect.bisect_left(row, block_start)
        hi = bisect.bisect_left(row, block_start + block_size)
        if lo == hi:
            return None
        best = min(row[lo:hi], key=lambda cubical: abs(cubical - anchor))
        return self._nodes[(cyclic, best)]

    def nearest_in_row(self, cyclic: int, anchor: int) -> Optional[object]:
        """The node with cyclic index ``cyclic`` whose cubical index is
        circularly closest to ``anchor`` (ties clockwise); ``None`` if no
        node has that cyclic index.

        Models the §3.3.1 local-remote search outcome when the exact
        neighbour block is empty: the slot is filled with the nearest
        available node of the right cyclic index.
        """
        row = self._by_cyclic.get(cyclic)
        if not row:
            return None
        modulus = 1 << self.dimension
        index = bisect.bisect_left(row, anchor % modulus)
        best = None
        best_key = None
        for candidate in (row[index % len(row)], row[(index - 1) % len(row)]):
            forward = (candidate - anchor) % modulus
            backward = (anchor - candidate) % modulus
            key = (min(forward, backward), 0 if forward <= backward else 1)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        return self._nodes[(cyclic, best)]

    def row_bound(
        self, cyclic: int, anchor: int, clockwise: bool
    ) -> Optional[object]:
        """First node with cyclic index ``cyclic`` at-or-after ``anchor``
        clockwise (or at-or-before, counter-clockwise), wrapping."""
        row = self._by_cyclic.get(cyclic)
        if not row:
            return None
        if clockwise:
            index = bisect.bisect_left(row, anchor)
            cubical = row[index % len(row)]
        else:
            index = bisect.bisect_right(row, anchor) - 1
            cubical = row[index]  # -1 wraps to the largest entry
        return self._nodes[(cyclic, cubical)]

    def block_bounds(
        self, cyclic: int, block_start: int, block_size: int, anchor: int
    ) -> Tuple[Optional[object], Optional[object]]:
        """The paper's cyclic-neighbour pair within a block.

        Returns ``(first_larger, first_smaller)``: the node with the
        smallest cubical index ``>= anchor`` and the node with the largest
        cubical index ``<= anchor``, both restricted to cyclic index
        ``cyclic`` and cubical index in
        ``[block_start, block_start + block_size)``.
        """
        row = self._by_cyclic.get(cyclic)
        if not row:
            return None, None
        lo = bisect.bisect_left(row, block_start)
        hi = bisect.bisect_left(row, block_start + block_size)
        if lo == hi:
            return None, None
        split = bisect.bisect_left(row, anchor, lo, hi)
        larger = self._nodes[(cyclic, row[split])] if split < hi else None
        smaller_index = bisect.bisect_right(row, anchor, lo, hi) - 1
        smaller = (
            self._nodes[(cyclic, row[smaller_index])]
            if smaller_index >= lo
            else None
        )
        return larger, smaller


register_composite(CycloidTopology)
