"""Cycloid overlay network simulator (paper §3).

Routing implements the three phases of Fig. 3:

* **ascending** — while the cyclic index is below the MSDB (most
  significant different cubical bit with the key), climb via the outside
  leaf set toward a primary node, choosing the side whose cubical index
  is numerically closest to the destination;
* **descending** — when ``k == MSDB`` take the cubical neighbour (fixing
  bit ``k``, Pastry-style left-to-right prefix correction); when
  ``k > MSDB`` take a cyclic neighbour or inside-leaf node with cyclic
  index in ``[MSDB, k)``, whichever is cubically closest to the key;
* **traverse-cycle** — once the key's cubical index is within leaf-set
  range, greedily forward to the numerically closest leaf entry until
  the closest node is the current node itself.

Whenever a preferred entry is void or dead, "the node that is
numerically closer to the destination among the leaf sets is chosen"
(§3.2), at the cost of one timeout per dead node contacted (§4.3).

Join and graceful leave keep every affected *leaf set* fresh (the
notifications of §3.3) but deliberately leave cubical/cyclic neighbours
of other nodes stale: "updating cubical and cyclic neighbors are the
responsibility of system stabilization, as in Chord."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.node import CycloidNode
from repro.core.topology import CycloidTopology
from repro.dht.base import Network
from repro.dht.hashing import hash_to_cycloid
from repro.dht.identifiers import CycloidId, cycloid_space_size
from repro.dht.routing import RoutingDecision
from repro.sim.latency import LatencyModel, stable_unit
from repro.util.bitops import circular_distance, clockwise_distance, msdb
from repro.util.rng import make_rng

__all__ = ["CycloidNetwork", "LEAF_SELECTIONS"]

#: How a node picks its outside-leaf representative of a remote cycle
#: (DESIGN §S25).  ``"primary"`` is the paper's rule (largest cyclic
#: index) and the bit-exact default; ``"random"`` picks a deterministic
#: stable-hash member (the proximity baseline); ``"proximity"`` picks
#: the member with the lowest modeled RTT from the observer (requires a
#: :class:`~repro.sim.latency.LatencyModel`).
LEAF_SELECTIONS = ("primary", "random", "proximity")

PHASE_ASCENDING = "ascending"
PHASE_DESCENDING = "descending"
PHASE_TRAVERSE = "traverse"


def _in_cubical_arc(point: int, left: int, right: int, modulus: int) -> bool:
    """True iff ``point`` lies on the closed clockwise arc [left, right].

    A single-cycle network degenerates to ``left == right``, covering
    only that cubical index.
    """
    if left == right:
        return point == left
    return (point - left) % modulus <= (right - left) % modulus


class _RouteState:
    """Per-lookup bookkeeping carried by the (simulated) message."""

    __slots__ = ("key_id", "visited", "explored_cycles", "best", "best_distance")

    def __init__(self, key_id: CycloidId) -> None:
        self.key_id = key_id
        #: nodes the message has passed through
        self.visited: Set[CycloidId] = set()
        #: cycles already examined during last-mile tie exploration
        self.explored_cycles: Set[int] = set()
        #: numerically closest live node observed so far
        self.best: Optional[CycloidNode] = None
        self.best_distance: Optional[Tuple[int, int, int, int]] = None

    def observe(self, node: CycloidNode) -> None:
        if not node.alive:
            return
        distance = self.key_id.distance_to(node.id)
        if self.best_distance is None or distance < self.best_distance:
            self.best = node
            self.best_distance = distance


class CycloidNetwork(Network):
    """A Cycloid overlay of dimension ``d`` (ID space ``d * 2^d``).

    ``leaf_radius=1`` gives the seven-entry DHT of the paper's §3;
    ``leaf_radius=2`` the eleven-entry variant evaluated alongside it.

    ``leaf_selection`` chooses which member of a remote cycle each
    outside-leaf slot points at (:data:`LEAF_SELECTIONS`); the paper's
    ``"primary"`` rule is the default, and everything else about
    routing is member-invariant (the traverse-arc test and the
    ascending cube-distance metric consult only the cubical index), so
    non-default selections change which links the ascent rides, never
    whether lookups resolve.  ``"proximity"`` requires ``latency``, the
    :class:`~repro.sim.latency.LatencyModel` whose RTTs it minimises.
    """

    protocol_name = "cycloid"
    ROUTING_PHASES = (PHASE_ASCENDING, PHASE_DESCENDING, PHASE_TRAVERSE)

    def __init__(
        self,
        dimension: int,
        leaf_radius: int = 1,
        seed: Optional[int] = None,
        leaf_selection: str = "primary",
        latency: Optional[LatencyModel] = None,
    ) -> None:
        super().__init__()
        if leaf_radius < 1:
            raise ValueError("leaf_radius must be >= 1")
        if leaf_selection not in LEAF_SELECTIONS:
            raise ValueError(
                f"unknown leaf_selection {leaf_selection!r}; "
                f"expected one of {LEAF_SELECTIONS}"
            )
        if leaf_selection == "proximity" and latency is None:
            raise ValueError(
                "leaf_selection='proximity' needs a LatencyModel to "
                "rank neighbours by"
            )
        self.dimension = dimension
        self.leaf_radius = leaf_radius
        self.leaf_selection = leaf_selection
        self.latency = latency
        self.topology = CycloidTopology(dimension)
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def with_ids(
        cls,
        node_ids: Iterable[CycloidId],
        dimension: int,
        leaf_radius: int = 1,
        seed: Optional[int] = None,
        leaf_selection: str = "primary",
        latency: Optional[LatencyModel] = None,
    ) -> "CycloidNetwork":
        """Build a fully-stabilised network containing ``node_ids``."""
        network = cls(dimension, leaf_radius, seed, leaf_selection, latency)
        for node_id in node_ids:
            node = CycloidNode(f"n{node_id.linear}", node_id)
            network.topology.add(node_id, node)
        network.stabilize()
        return network

    @classmethod
    def with_random_ids(
        cls,
        count: int,
        dimension: int,
        leaf_radius: int = 1,
        seed: Optional[int] = None,
        leaf_selection: str = "primary",
        latency: Optional[LatencyModel] = None,
    ) -> "CycloidNetwork":
        """``count`` distinct uniformly-random identifiers."""
        space = cycloid_space_size(dimension)
        if count > space:
            raise ValueError(f"{count} nodes exceed the {space}-id space")
        rng = make_rng(seed)
        ids = [
            CycloidId.from_linear(value, dimension)
            for value in rng.sample(range(space), count)
        ]
        return cls.with_ids(
            ids, dimension, leaf_radius, seed, leaf_selection, latency
        )

    @classmethod
    def complete(
        cls,
        dimension: int,
        leaf_radius: int = 1,
        leaf_selection: str = "primary",
        latency: Optional[LatencyModel] = None,
    ) -> "CycloidNetwork":
        """The complete CCC: all ``d * 2^d`` identifiers occupied."""
        space = cycloid_space_size(dimension)
        ids = (CycloidId.from_linear(value, dimension) for value in range(space))
        return cls.with_ids(
            ids, dimension, leaf_radius, leaf_selection=leaf_selection,
            latency=latency,
        )

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def live_nodes(self) -> Sequence[CycloidNode]:
        return list(self.topology.nodes())

    @property
    def size(self) -> int:
        return len(self.topology)

    def key_id(self, key: object) -> CycloidId:
        return hash_to_cycloid(key, self.dimension)

    def owner_of_id(self, key_id: CycloidId) -> CycloidNode:
        """Ground truth: the live node numerically closest to the key —
        first in cubical index, then in cyclic index, ties to the key's
        successor (§3.1)."""
        if len(self.topology) == 0:
            raise LookupError("empty network")
        exact = self.topology.try_get(key_id.cyclic, key_id.cubical)
        if exact is not None:
            return exact  # type: ignore[return-value]
        best: Optional[CycloidNode] = None
        best_distance: Optional[Tuple[int, int, int, int]] = None
        for cubical in self._nearest_cubicals(key_id.cubical):
            for cyclic in self.topology.cycle_members(cubical):
                node = self.topology.get(cyclic, cubical)
                distance = key_id.distance_to(node.id)  # type: ignore[attr-defined]
                if best_distance is None or distance < best_distance:
                    best, best_distance = node, distance  # type: ignore[assignment]
        assert best is not None
        return best

    def _nearest_cubicals(self, cubical: int) -> List[int]:
        """Non-empty cubical indices at minimal circular distance."""
        if self.topology.cycle_members(cubical):
            return [cubical]
        modulus = 1 << self.dimension
        after = self.topology.succeeding_cycles(cubical, 1)
        before = self.topology.preceding_cycles(cubical, 1)
        candidates = {c for c in after + before}
        if not candidates:
            return []
        best = min(
            circular_distance(c, cubical, modulus) for c in candidates
        )
        return [
            c
            for c in candidates
            if circular_distance(c, cubical, modulus) == best
        ]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def begin_route(
        self, source: CycloidNode, key_id: CycloidId
    ) -> "_RouteState":
        state = _RouteState(key_id)
        state.observe(source)
        return state

    def next_hop(
        self, current: CycloidNode, key_id: CycloidId, state: "_RouteState"
    ) -> RoutingDecision:
        if current.id == key_id:
            return RoutingDecision.terminate()
        state.visited.add(current.id)
        node, phase, timeouts, alternates = self._choose_next(
            current, key_id, state
        )
        if node is None:
            # No live entry improves on what has been seen.
            return RoutingDecision.terminate(timeouts)
        return RoutingDecision.forward(node, phase, timeouts, alternates)

    def finish_route(
        self, current: CycloidNode, key_id: CycloidId, state: "_RouteState"
    ) -> Optional[RoutingDecision]:
        """The lookup message tracked the numerically closest live node
        it observed ("the leaf sets help ... check the termination
        condition", §3.1); if the walk ended elsewhere, one direct hop
        hands the request over."""
        best = state.best
        if best is not current and best is not None and best.alive:
            return RoutingDecision.deliver(best, PHASE_TRAVERSE)
        return None

    def pack_route_state(self, state: "_RouteState") -> object:
        """Wire form of the §3.1 message state (repro.net, DESIGN S22).

        Everything is reduced to linear identifiers; membership sets are
        sorted only to keep frames canonical — routing consults them by
        membership, never by order.
        """
        return {
            "visited": sorted(i.linear for i in state.visited),
            "explored": sorted(state.explored_cycles),
            "best": None if state.best is None else state.best.id.linear,
        }

    def unpack_route_state(
        self, blob: object, key_id: CycloidId
    ) -> "_RouteState":
        dimension = self.dimension
        state = _RouteState(key_id)
        state.visited = {
            CycloidId.from_linear(value, dimension)
            for value in blob["visited"]
        }
        state.explored_cycles = set(blob["explored"])
        if blob["best"] is not None:
            best_id = CycloidId.from_linear(blob["best"], dimension)
            best = self.topology.try_get(best_id.cyclic, best_id.cubical)
            if best is not None:
                # observe() recomputes best_distance exactly as the
                # original observation did (distance_to is pure).
                state.observe(best)
        return state

    def _choose_next(
        self,
        current: CycloidNode,
        key_id: CycloidId,
        state: "_RouteState",
    ) -> Tuple[
        Optional[CycloidNode],
        str,
        int,
        Tuple[Tuple[CycloidNode, str], ...],
    ]:
        """One Cycloid routing decision (Fig. 3 + the §3.2 fallback).

        Returns ``(node, phase, timeouts, alternates)``.  In fault mode
        (``self.fault_detection``) the decision cascade keeps collecting
        instead of returning at the first live candidate: the whole
        preference order — ascending/descending choice first, then the
        traverse-cycle leaf fallback — comes back unfiltered as primary
        plus ranked alternates, and the engine's probe loop does the
        dead-node detection that ``try_candidates`` does here otherwise.
        """
        fault_mode = self.fault_detection
        collected: List[Tuple[CycloidNode, str]] = []
        offered: Set[CycloidId] = set()
        timeouts = 0
        dead_tried: Set[CycloidId] = set()
        modulus = 1 << self.dimension
        current_distance = key_id.distance_to(current.id)

        def cube_distance(node: CycloidNode) -> int:
            return circular_distance(node.cubical, key_id.cubical, modulus)

        current_cube = cube_distance(current)
        current_bit = msdb(current.cubical, key_id.cubical)

        def try_candidates(
            candidates: Iterable[CycloidNode],
            phase: str,
            allow_visited: bool = False,
        ) -> Optional[Tuple[CycloidNode, str]]:
            nonlocal timeouts
            if fault_mode:
                # Collect unfiltered (the engine probes for liveness);
                # returning None keeps the cascade going so later
                # branches contribute the lower-ranked fallbacks.
                for candidate in candidates:
                    if candidate.alive:
                        state.observe(candidate)
                    if candidate.id in state.visited and not allow_visited:
                        continue
                    if candidate.id in offered:
                        continue
                    offered.add(candidate.id)
                    collected.append((candidate, phase))
                return None
            for candidate in candidates:
                if not candidate.alive:
                    if candidate.id not in dead_tried:
                        dead_tried.add(candidate.id)
                        timeouts += 1
                    continue
                state.observe(candidate)
                if candidate.id in state.visited and not allow_visited:
                    continue
                return candidate, phase
            return None

        leaves = self._unique_leaves(current)
        for leaf in leaves:
            state.observe(leaf)

        # Traverse-cycle trigger: the key's cubical index falls within
        # the arc of the large cycle covered by the outside leaf set.
        # The outside leaves are the *nearest* non-empty cycles on each
        # side, so a key inside the arc is owned by a node in the
        # current cycle or a leaf cycle — no cubical descent can help,
        # and leaving the arc (as prefix-correction might) would move
        # away from the owner.
        arc_left = (
            current.outside_left[-1].cubical
            if current.outside_left
            else current.cubical
        )
        arc_right = (
            current.outside_right[-1].cubical
            if current.outside_right
            else current.cubical
        )
        traversing = _in_cubical_arc(
            key_id.cubical, arc_left, arc_right, modulus
        )

        if not traversing:
            bit = current_bit
            if current.cyclic < bit:
                # Ascending via the outside leaf set, preferring the
                # side cubically closest to the destination; a hop must
                # make cubical progress.
                candidates = [
                    leaf
                    for leaf in current.outside_left + current.outside_right
                    if leaf is not current
                    and cube_distance(leaf) < current_cube
                ]
                candidates.sort(
                    key=lambda n: (cube_distance(n), -n.cyclic, n.cubical)
                )
                found = try_candidates(candidates, PHASE_ASCENDING)
                if found is not None:
                    return found[0], found[1], timeouts, ()
            elif current.cyclic == bit:
                # Descending: the cubical neighbour corrects bit `k`.
                # Convergence criterion from §3.2: the next node either
                # shares a longer prefix with the key, or shares as long
                # a prefix but is numerically closer.
                neighbor = current.cubical_neighbor
                if neighbor is not None and self._phi(
                    neighbor, key_id
                ) < (bit, current_cube):
                    found = try_candidates([neighbor], PHASE_DESCENDING)
                    if found is not None:
                        return found[0], found[1], timeouts, ()
            else:
                # Descending: cyclic neighbours / inside leaves lower the
                # cyclic index toward the MSDB without losing prefix or
                # cubical progress.
                prefer_larger = (
                    clockwise_distance(
                        current.cubical, key_id.cubical, modulus
                    )
                    <= modulus // 2
                )
                ranked = []
                for entry in (
                    current.cyclic_larger,
                    current.cyclic_smaller,
                    *current.inside_left,
                    *current.inside_right,
                ):
                    if entry is None or entry is current:
                        continue
                    if not bit <= entry.cyclic < current.cyclic:
                        continue
                    if self._phi(entry, key_id) > (bit, current_cube):
                        continue  # would lose corrected-prefix progress
                    # "whichever is closer to the target" (§3.2): rank by
                    # the key-closeness metric.  The paper's clockwise
                    # rule for picking between the two cyclic neighbours
                    # falls out of it (the neighbour on the key's side is
                    # cubically closer) and survives as the tie-break.
                    larger_side = entry.cubical >= current.cubical
                    ranked.append(
                        (
                            key_id.distance_to(entry.id),
                            0 if larger_side == prefer_larger else 1,
                            entry,
                        )
                    )
                ranked.sort(key=lambda item: item[:2])
                found = try_candidates(
                    [item[2] for item in ranked], PHASE_DESCENDING
                )
                if found is not None:
                    return found[0], found[1], timeouts, ()

        # Traverse-cycle / fallback: the numerically closest leaf entry
        # that makes strict progress toward the key.
        closer = [
            leaf
            for leaf in leaves
            if key_id.distance_to(leaf.id) < current_distance
        ]
        closer.sort(key=lambda n: key_id.distance_to(n.id))
        found = try_candidates(closer, PHASE_TRAVERSE)
        if found is not None:
            return found[0], found[1], timeouts, ()

        # Last-mile resolution.  The owner lives in one of the cycles
        # with minimal cubical distance to the key; when greedy progress
        # stalls, examine the not-yet-explored tied cycle across the key
        # (via its primary in the outside leaf set) and the unvisited
        # members of the current cycle, relying on the best-observed
        # handoff in :meth:`route` for the final delivery.
        live_outside = [
            leaf
            for leaf in current.outside_left + current.outside_right
            if leaf is not current and leaf.alive
        ]
        locally_minimal = all(
            cube_distance(leaf) >= current_cube for leaf in live_outside
        )
        if locally_minimal:
            inside_unvisited = [
                leaf
                for leaf in (*current.inside_left, *current.inside_right)
                if leaf is not current and leaf.id not in state.visited
            ]
            inside_unvisited.sort(key=lambda n: key_id.distance_to(n.id))
            found = try_candidates(inside_unvisited, PHASE_TRAVERSE)
            if found is not None:
                return found[0], found[1], timeouts, ()
            tied_cycles = [
                leaf
                for leaf in live_outside
                if cube_distance(leaf) == current_cube
                and leaf.cubical not in state.explored_cycles
            ]
            tied_cycles.sort(key=lambda n: key_id.distance_to(n.id))
            state.explored_cycles.add(current.cubical)
            # Re-entering an already-visited primary is allowed here:
            # the walk may have skimmed a tied cycle without examining
            # its members, and the explored_cycles guard bounds each
            # cycle to one tie-hop per lookup.
            found = try_candidates(
                tied_cycles, PHASE_TRAVERSE, allow_visited=True
            )
            if found is not None:
                return found[0], found[1], timeouts, ()

        if collected:
            primary, phase = collected[0]
            return primary, phase, timeouts, tuple(collected[1:5])
        return None, PHASE_TRAVERSE, timeouts, ()

    def _phi(
        self, node: CycloidNode, key_id: CycloidId
    ) -> Tuple[int, int]:
        """The §3.2 convergence potential: (prefix MSDB, cubical distance)."""
        modulus = 1 << self.dimension
        return (
            msdb(node.cubical, key_id.cubical),
            circular_distance(node.cubical, key_id.cubical, modulus),
        )

    @staticmethod
    def _unique_leaves(node: CycloidNode) -> List[CycloidNode]:
        unique: Dict[CycloidId, CycloidNode] = {}
        for leaf in node.leaf_entries():
            if leaf is not node:
                unique.setdefault(leaf.id, leaf)
        return list(unique.values())

    # ------------------------------------------------------------------
    # membership changes (§3.3)
    # ------------------------------------------------------------------

    def join(self, name: object) -> CycloidNode:
        """Node arrival: wire the joiner, notify affected leaf sets.

        The joiner's routing table and leaf sets are initialised from
        the network (the §3.3.1 local-remote search finds the same
        entries); nodes in its own and neighbouring cycles refresh their
        leaf sets — everyone else's cubical/cyclic neighbours stay stale
        until stabilisation.
        """
        self.invalidate_owner_cache()
        node_id = self._free_id_for(name)
        node = CycloidNode(name, node_id)
        self.topology.add(node_id, node)
        self._wire_routing(node)
        self.maintenance_updates += self._refresh_leaves_around(
            node_id.cubical, exclude=node
        )
        return node

    def leave(self, node: CycloidNode) -> None:
        """Graceful departure (§3.3.2): inside leaf set always notified;
        outside leaf sets notified when the leaver was a primary node.
        Cubical/cyclic neighbours of other nodes are left stale."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.topology.remove(node.id)
        self.maintenance_updates += self._refresh_leaves_around(
            node.id.cubical
        )

    def fail(self, node: CycloidNode) -> None:
        """Silent failure (paper §5 future work): no notifications at
        all — even leaf sets go stale until the next stabilisation, so
        lookups must survive on timeouts and fallbacks alone."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.topology.remove(node.id)

    def on_dead_entry(self, observer: CycloidNode, dead: CycloidNode) -> int:
        """Lazy repair after a timeout on ``dead``: null the stale
        cubical/cyclic neighbour pointers (stabilisation's job to
        replace, as with Chord fingers) and re-derive the leaf sets
        from the live membership when a leaf entry was the casualty —
        the §3.2 leaf-set successor fallback made durable."""
        repaired = 0
        if observer.cubical_neighbor is dead:
            observer.cubical_neighbor = None
            repaired += 1
        if observer.cyclic_larger is dead:
            observer.cyclic_larger = None
            repaired += 1
        if observer.cyclic_smaller is dead:
            observer.cyclic_smaller = None
            repaired += 1
        if any(leaf is dead for leaf in observer.leaf_entries()):
            if self._wire_leaves(observer):
                repaired += 1
        return repaired

    def _free_id_for(self, name: object) -> CycloidId:
        node_id = hash_to_cycloid(name, self.dimension)
        space = cycloid_space_size(self.dimension)
        if len(self.topology) >= space:
            raise RuntimeError("identifier space exhausted")
        linear = node_id.linear
        while node_id in self.topology:
            linear = (linear + 1) % space
            node_id = CycloidId.from_linear(linear, self.dimension)
        return node_id

    def _refresh_leaves_around(
        self, cubical: int, exclude: Optional[CycloidNode] = None
    ) -> int:
        """Re-derive leaf sets for every node whose leaf sets the §3.3
        notifications would have updated: the changed cycle plus the
        ``leaf_radius`` nearest non-empty cycles on each side.

        Returns the number of nodes (other than ``exclude``) whose leaf
        sets actually changed — the notification fan-out of the event.
        """
        affected = set()
        if self.topology.cycle_members(cubical):
            affected.add(cubical)
        affected.update(
            self.topology.preceding_cycles(cubical, self.leaf_radius)
        )
        affected.update(
            self.topology.succeeding_cycles(cubical, self.leaf_radius)
        )
        changed = 0
        for cycle in affected:
            for cyclic in self.topology.cycle_members(cycle):
                node = self.topology.get(cyclic, cycle)
                if self._wire_leaves(node) and node is not exclude:
                    changed += 1
        return changed

    def stabilize(self) -> None:
        """Restore every node's routing table and leaf sets."""
        for node in list(self.topology.nodes()):
            self._wire_routing(node)

    def stabilize_node(self, node: CycloidNode) -> None:
        """One node's stabilisation: refresh cubical/cyclic neighbours
        (leaf sets are already maintained by the §3.3 notifications)."""
        if node.alive:
            self._wire_routing(node)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _wire_routing(self, node: CycloidNode) -> None:
        """Cubical and cyclic neighbours (§3.1), then the leaf sets."""
        k = node.cyclic
        a = node.cubical
        if k == 0:
            # "The node with a cyclic index k = 0 has no cubical
            # neighbor and cyclic neighbors."
            node.cubical_neighbor = None
            node.cyclic_larger = None
            node.cyclic_smaller = None
        else:
            block = 1 << k
            flipped_base = ((a >> k) ^ 1) << k
            anchor = flipped_base | (a & (block - 1))
            cubical = self.topology.in_block(k - 1, flipped_base, block, anchor)
            if cubical is None:
                # Exact block empty: the §3.3.1 local-remote search fills
                # the slot with the nearest node of cyclic index k-1.
                cubical = self.topology.nearest_in_row(k - 1, anchor)
            node.cubical_neighbor = (
                None if cubical is node else cubical  # type: ignore[assignment]
            )
            shared_base = (a >> k) << k
            larger, smaller = self.topology.block_bounds(
                k - 1, shared_base, block, a
            )
            if larger is None:
                larger = self.topology.row_bound(k - 1, a, clockwise=True)
            if smaller is None:
                smaller = self.topology.row_bound(k - 1, a, clockwise=False)
            node.cyclic_larger = larger  # type: ignore[assignment]
            node.cyclic_smaller = smaller  # type: ignore[assignment]
        self._wire_leaves(node)

    def _wire_leaves(self, node: CycloidNode) -> bool:
        """Inside and outside leaf sets from the live membership.

        Returns whether anything changed (used for maintenance-cost
        accounting: an unchanged node would not have been messaged).
        """
        before = (
            [n.id for n in node.inside_left],
            [n.id for n in node.inside_right],
            [n.id for n in node.outside_left],
            [n.id for n in node.outside_right],
        )
        cycle = self.topology.cycle_members(node.cubical)
        radius = self.leaf_radius
        index = cycle.index(node.cyclic)
        size = len(cycle)
        if size == 1:
            # "two nodes in X's inside leaf set are X itself"
            node.inside_left = [node]
            node.inside_right = [node]
        else:
            take = min(radius, size - 1)
            node.inside_left = [
                self.topology.get(cycle[(index - 1 - i) % size], node.cubical)
                for i in range(take)
            ]  # type: ignore[assignment]
            node.inside_right = [
                self.topology.get(cycle[(index + 1 + i) % size], node.cubical)
                for i in range(take)
            ]  # type: ignore[assignment]
        node.outside_left = [
            self._outside_pick(node, c)
            for c in self.topology.preceding_cycles(node.cubical, radius)
        ]
        node.outside_right = [
            self._outside_pick(node, c)
            for c in self.topology.succeeding_cycles(node.cubical, radius)
        ]
        after = (
            [n.id for n in node.inside_left],
            [n.id for n in node.inside_right],
            [n.id for n in node.outside_left],
            [n.id for n in node.outside_right],
        )
        return before != after

    def _outside_pick(self, node: CycloidNode, cubical: int) -> CycloidNode:
        """The outside-leaf representative of remote cycle ``cubical``
        as seen by ``node`` (:data:`LEAF_SELECTIONS`).

        All three rules are pure functions of the live membership (plus
        the observer's name and the latency seed), never of an RNG
        stream — re-wiring after churn reproduces the same choices, and
        snapshot restores re-derive nothing.
        """
        selection = self.leaf_selection
        if selection == "primary":
            return self.topology.primary_of(cubical)  # type: ignore[return-value]
        members = self.topology.cycle_members(cubical)
        if selection == "random":
            # Stable-hash pick, keyed per (observer, cycle): arbitrary
            # but deterministic, and independent of any latency model —
            # the fair baseline proximity selection is measured against.
            pick = int(
                stable_unit(0, "leaf-pick", str(node.name), cubical)
                * len(members)
            )
            return self.topology.get(members[pick], cubical)  # type: ignore[return-value]
        # "proximity": the member with the lowest modeled RTT from the
        # observer; ties (same link delay never happens, but be exact)
        # fall back to the paper's primary preference (highest cyclic).
        delay_ms = self.latency.delay_ms
        name = node.name
        best = None
        best_key = None
        for cyclic in members:
            member = self.topology.get(cyclic, cubical)
            key = (delay_ms(name, member.name), -cyclic)
            if best_key is None or key < best_key:
                best, best_key = member, key
        return best  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        for node in self.topology.nodes():
            assert isinstance(node, CycloidNode)
            pred, succ = self.topology.cycle_neighbors(
                node.cyclic, node.cubical
            )
            if node.inside_left and node.inside_left[0] is not node:
                assert node.inside_left[0] is pred, (
                    f"{node!r} inside-left {node.inside_left[0]!r} != {pred!r}"
                )
            if node.inside_right and node.inside_right[0] is not node:
                assert node.inside_right[0] is succ, (
                    f"{node!r} inside-right {node.inside_right[0]!r} != {succ!r}"
                )
            for leaf in node.leaf_entries():
                assert leaf.alive, f"{node!r} has dead leaf {leaf!r}"
            assert node.state_size <= 3 + 4 * self.leaf_radius