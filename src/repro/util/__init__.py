"""Shared low-level utilities: bit manipulation, statistics, seeded RNG.

These helpers are deliberately dependency-light; everything in
:mod:`repro` builds on them.
"""

from repro.util.bitops import (
    bit_at,
    circular_distance,
    clockwise_distance,
    counterclockwise_distance,
    flip_bit,
    msdb,
    to_bits,
)
from repro.util.rng import derive_rng, make_rng, sample_pairs
from repro.util.stats import (
    DistributionSummary,
    PhaseBreakdown,
    mean,
    percentile,
    summarize,
)

__all__ = [
    "bit_at",
    "flip_bit",
    "msdb",
    "to_bits",
    "circular_distance",
    "clockwise_distance",
    "counterclockwise_distance",
    "make_rng",
    "derive_rng",
    "sample_pairs",
    "mean",
    "percentile",
    "summarize",
    "DistributionSummary",
    "PhaseBreakdown",
]
