"""Deterministic random-number helpers.

Every experiment in the reproduction is seeded so that test and benchmark
runs are repeatable.  We standardise on :class:`random.Random` for the
protocol simulators (tiny state, cheap integers) and expose helpers to
derive independent child streams for sub-components — deriving instead of
sharing keeps, e.g., the churn process and the lookup workload decoupled
so adding lookups never perturbs the arrival sequence.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence, Tuple, TypeVar

__all__ = ["make_rng", "derive_rng", "shard_rng", "sample_pairs"]

T = TypeVar("T")

_DERIVE_SALT = 0x9E3779B97F4A7C15  # golden-ratio constant, decorrelates streams


def make_rng(seed: int | None) -> random.Random:
    """Return a fresh :class:`random.Random`; ``None`` seeds from the OS."""
    return random.Random(seed)


def derive_rng(rng: random.Random, stream: int) -> random.Random:
    """Derive an independent child stream from ``rng``.

    The child is seeded from the parent's state plus a stream index, so
    distinct ``stream`` values give decorrelated sequences while the whole
    tree stays a pure function of the root seed.
    """
    base = rng.getrandbits(64)
    return random.Random((base ^ (stream * _DERIVE_SALT)) & (2**64 - 1))


def shard_rng(seed: int, shard: int) -> random.Random:
    """The RNG stream of shard ``shard`` of an experiment seeded ``seed``.

    Sharded experiments (see :mod:`repro.sim.parallel`) split one
    workload into fixed shards, each drawing from its own stream so
    results do not depend on execution order or worker count.  The
    stream is a pure function of ``(seed, shard)``: shard 3 of a
    workload draws the same sequence whether it runs first, last, in
    another process, or alone.
    """
    if shard < 0:
        raise ValueError("shard index must be non-negative")
    return derive_rng(make_rng(seed), shard)


def sample_pairs(
    population: Sequence[T], count: int, rng: random.Random
) -> Iterator[Tuple[T, T]]:
    """Yield ``count`` uniform (source, target) pairs from ``population``.

    Pairs are drawn independently with replacement; source and target may
    coincide, matching the paper's "random sources and destinations".
    """
    if not population:
        raise ValueError("population must be non-empty")
    n = len(population)
    for _ in range(count):
        yield population[rng.randrange(n)], population[rng.randrange(n)]
