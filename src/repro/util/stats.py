"""Statistics used throughout the evaluation.

The paper reports three quantities for nearly every experiment: the mean
and the 1st/99th percentiles of a per-node or per-lookup distribution
(Figs 8-10, Tables 4-5).  :func:`summarize` packages exactly that.
Percentiles use the inclusive linear-interpolation definition (numpy's
default), which is what matters for reproducing the *spread* shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = [
    "mean",
    "percentile",
    "summarize",
    "DistributionSummary",
    "PhaseBreakdown",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (an empty experiment)."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # Clamp: float rounding must never push a percentile past the sample
    # bounds (possible by one ulp for extreme magnitude mixes).
    return min(max(value, ordered[0]), ordered[-1])


@dataclass(frozen=True)
class DistributionSummary:
    """Mean and 1st/99th percentiles of a sample, as reported in the paper."""

    mean: float
    p1: float
    p99: float
    minimum: float
    maximum: float
    count: int

    def as_row(self) -> str:
        """Render in the paper's ``mean (p1, p99)`` table style."""
        return f"{self.mean:.2f} ({self.p1:g}, {self.p99:g})"

    @property
    def spread(self) -> float:
        """99th-to-1st percentile span — the load-imbalance indicator."""
        return self.p99 - self.p1


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Summarise a sample into a :class:`DistributionSummary`."""
    data = list(values)
    if not data:
        return DistributionSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0)
    return DistributionSummary(
        mean=mean(data),
        p1=percentile(data, 1.0),
        p99=percentile(data, 99.0),
        minimum=float(min(data)),
        maximum=float(max(data)),
        count=len(data),
    )


@dataclass
class PhaseBreakdown:
    """Accumulates per-phase hop counts across many lookups (Figs 7, 14).

    ``totals`` maps a phase label (e.g. ``"ascending"`` or ``"de_bruijn"``)
    to the summed hop count over all recorded lookups.
    """

    totals: Dict[str, int] = field(default_factory=dict)
    lookups: int = 0

    def record(self, phase_hops: Mapping[str, int]) -> None:
        """Add one lookup's per-phase hop counts."""
        for phase, hops in phase_hops.items():
            self.totals[phase] = self.totals.get(phase, 0) + hops
        self.lookups += 1

    @property
    def total_hops(self) -> int:
        return sum(self.totals.values())

    def mean_hops(self, phase: str) -> float:
        """Mean hops spent in ``phase`` per lookup."""
        if self.lookups == 0:
            return 0.0
        return self.totals.get(phase, 0) / self.lookups

    def fraction(self, phase: str) -> float:
        """Share of all hops spent in ``phase`` (the stacked-bar heights)."""
        total = self.total_hops
        if total == 0:
            return 0.0
        return self.totals.get(phase, 0) / total

    def fractions(self) -> Dict[str, float]:
        return {phase: self.fraction(phase) for phase in sorted(self.totals)}

    def phases(self) -> List[str]:
        return sorted(self.totals)
