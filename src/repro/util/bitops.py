"""Bit-level helpers for DHT identifier arithmetic.

All DHTs in this package work over power-of-two identifier rings; the
Cycloid cubical index in particular needs most-significant-different-bit
(MSDB) computations and prefix comparisons. These are hot-path functions
for the routing simulators, so they stay small and allocation-free.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "bit_at",
    "flip_bit",
    "msdb",
    "shares_prefix_above",
    "to_bits",
    "from_bits",
    "circular_distance",
    "clockwise_distance",
    "counterclockwise_distance",
]


def bit_at(value: int, position: int) -> int:
    """Return bit ``position`` (0 = least significant) of ``value``."""
    return (value >> position) & 1


def flip_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` inverted."""
    return value ^ (1 << position)


def msdb(a: int, b: int) -> int:
    """Most significant different bit position between ``a`` and ``b``.

    Returns ``-1`` when ``a == b``.  This is the quantity the Cycloid
    routing algorithm compares against the cyclic index (paper §3.2).
    """
    diff = a ^ b
    if diff == 0:
        return -1
    return diff.bit_length() - 1


def shares_prefix_above(a: int, b: int, position: int) -> bool:
    """True iff ``a`` and ``b`` agree on every bit strictly above ``position``.

    Equivalently, their MSDB is ``<= position``.
    """
    return (a >> (position + 1)) == (b >> (position + 1))


def to_bits(value: int, width: int) -> List[int]:
    """Binary expansion of ``value``, most significant bit first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width - 1, -1, -1)]


def from_bits(bits: List[int]) -> int:
    """Inverse of :func:`to_bits` (MSB-first bit list to integer)."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"invalid bit {bit!r}")
        value = (value << 1) | bit
    return value


def clockwise_distance(start: int, end: int, modulus: int) -> int:
    """Steps from ``start`` to ``end`` moving clockwise (increasing) mod ``modulus``."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return (end - start) % modulus


def counterclockwise_distance(start: int, end: int, modulus: int) -> int:
    """Steps from ``start`` to ``end`` moving counter-clockwise mod ``modulus``."""
    return (start - end) % modulus


def circular_distance(a: int, b: int, modulus: int) -> int:
    """Shortest circular distance between ``a`` and ``b`` mod ``modulus``."""
    d = (a - b) % modulus
    return min(d, modulus - d)
