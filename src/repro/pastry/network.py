"""Pastry overlay network simulator.

Routing follows §2.1's description: correct one digit at a time in
left-to-right order via the prefix routing table; once the key falls
within leaf-set range, deliver to the numerically closest node.  When
the required table cell is void or dead, fall back to any known node
that shares at least as long a prefix and is numerically closer — the
"rare case" rule of the Pastry paper.

Key placement: the numerically closest node (ties clockwise), the rule
Cycloid §3.1 inherits.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.dht.base import Network
from repro.dht.hashing import hash_to_ring
from repro.dht.ring import SortedRing, in_interval
from repro.dht.routing import RoutingDecision
from repro.pastry.node import PastryNode
from repro.util.bitops import circular_distance, clockwise_distance
from repro.util.rng import make_rng

__all__ = ["PastryNetwork"]

PHASE_PREFIX = "prefix"
PHASE_LEAF = "leaf"

DEFAULT_BITS = 16
DEFAULT_DIGIT_BITS = 2
DEFAULT_LEAF_SET = 8  # |L|: half smaller, half larger


class PastryNetwork(Network):
    """A Pastry overlay on a ``2^bits`` ring of base-``2^digit_bits``
    digit strings."""

    protocol_name = "pastry"
    ROUTING_PHASES = (PHASE_PREFIX, PHASE_LEAF)

    def __init__(
        self,
        bits: int = DEFAULT_BITS,
        digit_bits: int = DEFAULT_DIGIT_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if bits % digit_bits != 0:
            raise ValueError("bits must be a multiple of digit_bits")
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise ValueError("leaf_set_size must be even and >= 2")
        self.bits = bits
        self.digit_bits = digit_bits
        self.leaf_set_size = leaf_set_size
        self.ring: SortedRing[PastryNode] = SortedRing(bits)
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def with_ids(
        cls,
        node_ids: Iterable[int],
        bits: int = DEFAULT_BITS,
        digit_bits: int = DEFAULT_DIGIT_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET,
        seed: Optional[int] = None,
    ) -> "PastryNetwork":
        network = cls(bits, digit_bits, leaf_set_size, seed)
        for node_id in node_ids:
            network.ring.add(
                node_id, PastryNode(f"n{node_id}", node_id, bits, digit_bits)
            )
        network.stabilize()
        return network

    @classmethod
    def with_random_ids(
        cls,
        count: int,
        bits: int = DEFAULT_BITS,
        digit_bits: int = DEFAULT_DIGIT_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET,
        seed: Optional[int] = None,
    ) -> "PastryNetwork":
        space = 1 << bits
        if count > space:
            raise ValueError(f"{count} nodes exceed the 2^{bits} ID space")
        rng = make_rng(seed)
        return cls.with_ids(
            rng.sample(range(space), count), bits, digit_bits,
            leaf_set_size, seed,
        )

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def live_nodes(self) -> Sequence[PastryNode]:
        return self.ring.nodes()

    @property
    def size(self) -> int:
        return len(self.ring)

    def key_id(self, key: object) -> int:
        return hash_to_ring(key, self.bits)

    def owner_of_id(self, key_id: int) -> PastryNode:
        """The numerically closest live node (ties clockwise)."""
        successor = self.ring.successor(key_id)
        predecessor = self.ring.at_or_before(key_id)
        return min(
            (successor, predecessor),
            key=lambda node: self._distance(key_id, node.id),
        )

    def _distance(self, key_id: int, node_id: int) -> Tuple[int, int]:
        modulus = self.ring.modulus
        return (
            circular_distance(node_id, key_id, modulus),
            0
            if clockwise_distance(key_id, node_id, modulus)
            <= modulus // 2
            else 1,
        )

    # ------------------------------------------------------------------
    # digits
    # ------------------------------------------------------------------

    def shared_prefix_digits(self, a: int, b: int) -> int:
        """Number of leading base-``2^digit_bits`` digits ``a``/``b`` share."""
        rows = self.bits // self.digit_bits
        for position in range(rows):
            shift = self.bits - (position + 1) * self.digit_bits
            if (a >> shift) != (b >> shift):
                return position
        return rows

    def digit_of(self, value: int, position: int) -> int:
        shift = self.bits - (position + 1) * self.digit_bits
        return (value >> shift) & ((1 << self.digit_bits) - 1)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def begin_route(self, source: PastryNode, key_id: int) -> Set[int]:
        return set()  # ids the message has passed through

    def pack_route_state(self, state: Set[int]) -> object:
        """Wire form of the visited-id set (repro.net, DESIGN S22);
        sorted only to keep frames canonical, routing tests membership."""
        return {"visited": sorted(state)}

    def unpack_route_state(self, blob: object, key_id: int) -> Set[int]:
        return set(blob["visited"])

    def next_hop(
        self, current: PastryNode, key_id: int, visited: Set[int]
    ) -> RoutingDecision:
        if current.id == key_id:
            return RoutingDecision.terminate()
        visited.add(current.id)
        node, phase, timeouts, alternates = self._choose_next(
            current, key_id, visited
        )
        if node is None:
            # current believes it is numerically closest
            return RoutingDecision.terminate(timeouts)
        return RoutingDecision.forward(node, phase, timeouts, alternates)

    def _choose_next(
        self, current: PastryNode, key_id: int, visited: Set[int]
    ) -> Tuple[
        Optional[PastryNode], str, int, Tuple[Tuple[PastryNode, str], ...]
    ]:
        """One Pastry decision: ``(node, phase, timeouts, alternates)``.

        In fault mode (``self.fault_detection``) the cascade collects
        its whole preference order unfiltered — leaf/prefix choice
        first, the rare-case fallbacks after — and the engine's probe
        loop performs the dead-node detection ``try_chain`` does here
        otherwise.
        """
        fault_mode = self.fault_detection
        collected: List[Tuple[PastryNode, str]] = []
        offered: Set[int] = set()
        timeouts = 0
        dead_tried: Set[int] = set()

        def try_chain(
            candidates: Iterable[PastryNode], phase: str
        ) -> Optional[Tuple[PastryNode, str]]:
            nonlocal timeouts
            if fault_mode:
                for candidate in candidates:
                    if candidate is current or candidate.id in visited:
                        continue
                    if candidate.id in offered:
                        continue
                    offered.add(candidate.id)
                    collected.append((candidate, phase))
                return None
            for candidate in candidates:
                if candidate is current or candidate.id in visited:
                    continue
                if not candidate.alive:
                    if candidate.id not in dead_tried:
                        dead_tried.add(candidate.id)
                        timeouts += 1
                    continue
                return candidate, phase
            return None

        def resolved() -> Tuple[
            Optional[PastryNode], str, int, Tuple[Tuple[PastryNode, str], ...]
        ]:
            if collected:
                primary, phase = collected[0]
                return primary, phase, timeouts, tuple(collected[1:5])
            return None, PHASE_LEAF, timeouts, ()

        current_distance = self._distance(key_id, current.id)
        leaves = current.leaf_entries()

        # Leaf-set range check: the key lies within the arc the leaf set
        # covers, so deliver to the numerically closest leaf.
        if self._within_leaf_range(current, key_id):
            closer = [
                leaf
                for leaf in leaves
                if self._distance(key_id, leaf.id) < current_distance
            ]
            closer.sort(key=lambda n: self._distance(key_id, n.id))
            found = try_chain(closer, PHASE_LEAF)
            if found is not None:
                return found[0], found[1], timeouts, ()
            return resolved()

        # Prefix routing: fix the next digit.
        shared = self.shared_prefix_digits(current.id, key_id)
        if shared < current.rows:
            wanted = self.digit_of(key_id, shared)
            entry = current.routing_rows[shared][wanted]
            if entry is not None:
                found = try_chain([entry], PHASE_PREFIX)
                if found is not None:
                    return found[0], found[1], timeouts, ()

        # Rare case: any known node with at least as long a prefix and
        # numerically closer to the key.
        fallback = []
        for candidate in list(leaves) + [
            entry
            for row in current.routing_rows
            for entry in row
            if entry is not None
        ]:
            if candidate is current:
                continue
            if self.shared_prefix_digits(candidate.id, key_id) < shared:
                continue
            if self._distance(key_id, candidate.id) >= current_distance:
                continue
            fallback.append(candidate)
        fallback.sort(key=lambda n: self._distance(key_id, n.id))
        found = try_chain(fallback, PHASE_LEAF)
        if found is not None:
            return found[0], found[1], timeouts, ()
        return resolved()

    def _within_leaf_range(self, node: PastryNode, key_id: int) -> bool:
        if len(self.ring) <= self.leaf_set_size:
            return True  # the leaf set covers the whole population
        if not node.leaf_smaller or not node.leaf_larger:
            return True
        left = node.leaf_smaller[-1].id
        right = node.leaf_larger[-1].id
        return in_interval(
            key_id, (left - 1) % self.ring.modulus, right, self.ring.modulus
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def join(self, name: object) -> PastryNode:
        self.invalidate_owner_cache()
        node_id = self._free_id_for(name)
        node = PastryNode(name, node_id, self.bits, self.digit_bits)
        self.ring.add(node_id, node)
        self._wire(node)
        self.maintenance_updates += self._refresh_leaves_near(
            node_id, exclude=node
        )
        return node

    def leave(self, node: PastryNode) -> None:
        """Graceful departure: leaf-set holders are notified; routing
        tables stay stale until stabilisation (the Pastry repair
        model)."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.ring.remove(node.id)
        self.maintenance_updates += self._refresh_leaves_near(node.id)

    def fail(self, node: PastryNode) -> None:
        """Silent failure: nothing is repaired until stabilisation."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.ring.remove(node.id)

    def on_dead_entry(self, observer: PastryNode, dead: PastryNode) -> int:
        """Lazy repair after a timeout on ``dead``: re-derive the leaf
        sets when it was a leaf (Pastry's contact-the-farthest-leaf
        repair, idealised) and null any routing-table cell holding it
        (refilled by stabilisation, as in the Pastry paper)."""
        repaired = 0
        if any(leaf is dead for leaf in observer.leaf_entries()):
            if self._wire_leaves(observer):
                repaired += 1
        for row in observer.routing_rows:
            for column, entry in enumerate(row):
                if entry is dead:
                    row[column] = None
                    repaired += 1
        return repaired

    def _free_id_for(self, name: object) -> int:
        node_id = hash_to_ring(name, self.bits)
        space = 1 << self.bits
        if len(self.ring) >= space:
            raise RuntimeError("identifier space exhausted")
        while node_id in self.ring:
            node_id = (node_id + 1) % space
        return node_id

    def _refresh_leaves_near(
        self, point: int, exclude: Optional[PastryNode] = None
    ) -> int:
        """Refresh leaf sets of the nodes numerically near ``point``
        (those whose leaf sets a membership change there can affect)."""
        if len(self.ring) == 0:
            return 0
        half = self.leaf_set_size // 2
        affected: List[PastryNode] = []
        cursor = point
        for _ in range(min(half + 1, len(self.ring))):
            node = self.ring.successor(cursor)
            affected.append(node)
            cursor = (node.id + 1) % self.ring.modulus
        cursor = point
        for _ in range(min(half + 1, len(self.ring))):
            node = self.ring.predecessor(cursor)
            if node not in affected:
                affected.append(node)
            cursor = node.id
        changed = 0
        for node in affected:
            if self._wire_leaves(node) and node is not exclude:
                changed += 1
        return changed

    def stabilize(self) -> None:
        for node in self.ring.nodes():
            self._wire(node)

    def stabilize_node(self, node: PastryNode) -> None:
        if node.alive:
            self._wire(node)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _wire(self, node: PastryNode) -> None:
        self._wire_leaves(node)
        base = node.base
        for row in range(node.rows):
            prefix_bits = row * self.digit_bits
            suffix_bits = self.bits - prefix_bits - self.digit_bits
            prefix = node.id >> (self.bits - prefix_bits) if prefix_bits else 0
            own_digit = node.digit(row)
            for column in range(base):
                if column == own_digit:
                    node.routing_rows[row][column] = None
                    continue
                block_start = (
                    (prefix << self.digit_bits | column) << suffix_bits
                )
                anchor = block_start | (node.id & ((1 << suffix_bits) - 1))
                node.routing_rows[row][column] = self._pick_in_range(
                    block_start, 1 << suffix_bits, anchor
                )

    def _pick_in_range(
        self, start: int, size: int, anchor: int
    ) -> Optional[PastryNode]:
        """A live node with id in [start, start + size), nearest to
        ``anchor`` — the deterministic stand-in for Pastry's
        pick-by-proximity among the many eligible suffixes."""
        ids = self.ring.ids()
        lo = bisect.bisect_left(ids, start)
        hi = bisect.bisect_left(ids, start + size)
        if lo == hi:
            return None
        index = bisect.bisect_left(ids, anchor, lo, hi)
        best = None
        best_gap = None
        for candidate_index in (index - 1, index):
            if lo <= candidate_index < hi:
                candidate = ids[candidate_index]
                gap = abs(candidate - anchor)
                if best_gap is None or gap < best_gap:
                    best, best_gap = candidate, gap
        return self.ring.get(best) if best is not None else None

    def _wire_leaves(self, node: PastryNode) -> bool:
        before = (
            [n.id for n in node.leaf_smaller],
            [n.id for n in node.leaf_larger],
        )
        half = self.leaf_set_size // 2
        take = min(half, len(self.ring) - 1)
        smaller: List[PastryNode] = []
        cursor = node.id
        for _ in range(take):
            neighbor = self.ring.predecessor(cursor)
            smaller.append(neighbor)
            cursor = neighbor.id
        larger: List[PastryNode] = []
        cursor = (node.id + 1) % self.ring.modulus
        for _ in range(take):
            neighbor = self.ring.successor(cursor)
            larger.append(neighbor)
            cursor = (neighbor.id + 1) % self.ring.modulus
        node.leaf_smaller = smaller
        node.leaf_larger = larger
        after = (
            [n.id for n in node.leaf_smaller],
            [n.id for n in node.leaf_larger],
        )
        return before != after

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        for node in self.ring.nodes():
            if len(self.ring) > 1:
                assert node.leaf_smaller and node.leaf_larger
                assert node.leaf_smaller[0].id == self.ring.predecessor_id(
                    node.id
                )
            for leaf in node.leaf_entries():
                assert leaf.alive, f"{node!r} has dead leaf {leaf!r}"