"""Pastry DHT (Rowstron & Druschel, Middleware 2001).

The hypercube-based, O(log n)-state DHT that Cycloid's descending phase
borrows its prefix routing from (paper §2.1) and that Table 1 compares
against.  Implemented with the paper's three state components: a
prefix routing table (rows x digit base), a leaf set of the |L|
numerically closest nodes, and key placement on the numerically
closest node.  The neighbourhood set M carries only locality
information in real Pastry (our simulator has no geography), so it is
represented but never used for routing decisions.
"""

from repro.pastry.network import PastryNetwork
from repro.pastry.node import PastryNode

__all__ = ["PastryNetwork", "PastryNode"]
