"""Pastry node state.

Identifiers are sequences of base-``2^b`` digits on a ``2^bits`` ring.
Per paper §2.1, a node keeps:

* a **routing table** with one row per digit position and one column
  per digit value: row ``r``, column ``c`` holds some node sharing the
  first ``r`` digits with this node and having digit ``c`` at position
  ``r`` ("there are many such neighbors ... no restriction on the
  suffix" — the abundance that gives Pastry its fault resilience);
* a **leaf set** L of the |L| numerically closest nodes, half smaller
  and half larger;
* a **neighbourhood set** M of geographically close nodes — locality
  only, unused by our topology-level simulator and kept empty.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dht.base import Node

__all__ = ["PastryNode"]


class PastryNode(Node):
    """A Pastry participant."""

    __slots__ = (
        "id",
        "bits",
        "digit_bits",
        "routing_rows",
        "leaf_smaller",
        "leaf_larger",
        "neighborhood",
    )

    def __init__(
        self, name: object, node_id: int, bits: int, digit_bits: int
    ) -> None:
        super().__init__(name)
        if bits % digit_bits != 0:
            raise ValueError("bits must be a multiple of digit_bits")
        if not 0 <= node_id < (1 << bits):
            raise ValueError(f"id {node_id} outside [0, 2^{bits})")
        self.id = node_id
        self.bits = bits
        self.digit_bits = digit_bits
        rows = bits // digit_bits
        base = 1 << digit_bits
        #: routing_rows[r][c]: shares r leading digits, digit r == c.
        self.routing_rows: List[List[Optional["PastryNode"]]] = [
            [None] * base for _ in range(rows)
        ]
        #: numerically closest nodes, nearest first on each side.
        self.leaf_smaller: List["PastryNode"] = []
        self.leaf_larger: List["PastryNode"] = []
        self.neighborhood: List["PastryNode"] = []

    @property
    def node_id(self) -> int:
        return self.id

    @property
    def rows(self) -> int:
        return self.bits // self.digit_bits

    @property
    def base(self) -> int:
        return 1 << self.digit_bits

    def digit(self, position: int) -> int:
        """Digit ``position`` of the id (0 = most significant)."""
        shift = self.bits - (position + 1) * self.digit_bits
        return (self.id >> shift) & (self.base - 1)

    def leaf_entries(self) -> List["PastryNode"]:
        return self.leaf_smaller + self.leaf_larger

    @property
    def degree(self) -> int:
        unique = {
            entry.id
            for row in self.routing_rows
            for entry in row
            if entry is not None
        }
        unique.update(leaf.id for leaf in self.leaf_entries())
        unique.discard(self.id)
        return len(unique)

    @property
    def state_size(self) -> int:
        """Occupied routing-table cells plus leaf entries (Table 1's
        O(|L|) + O(log n) row)."""
        filled = sum(
            1
            for row in self.routing_rows
            for entry in row
            if entry is not None
        )
        return filled + len(self.leaf_smaller) + len(self.leaf_larger)
