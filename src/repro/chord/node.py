"""Chord node state.

Each node keeps a finger table of ``m`` entries (finger ``i`` targets
``id + 2^i``), a successor list, and a predecessor pointer.  Graceful
departure notifies only the predecessor and successor; fingers pointing
at the departed node go stale until stabilisation (the model the paper's
§4.3 failure experiment assumes).
"""

from __future__ import annotations

from typing import List, Optional

from repro.dht.base import Node

__all__ = ["ChordNode"]


class ChordNode(Node):
    """A Chord participant on the ``2^bits`` identifier ring."""

    __slots__ = ("id", "bits", "fingers", "successors", "predecessor")

    def __init__(self, name: object, node_id: int, bits: int) -> None:
        super().__init__(name)
        if not 0 <= node_id < (1 << bits):
            raise ValueError(f"id {node_id} outside [0, 2^{bits})")
        self.id = node_id
        self.bits = bits
        #: finger[i] is the first node at or after id + 2^i; may be stale.
        self.fingers: List[Optional["ChordNode"]] = [None] * bits
        #: the next ``r`` nodes clockwise; the fault-tolerance backstop.
        self.successors: List["ChordNode"] = []
        self.predecessor: Optional["ChordNode"] = None

    @property
    def node_id(self) -> int:
        return self.id

    @property
    def successor(self) -> Optional["ChordNode"]:
        return self.successors[0] if self.successors else None

    @property
    def degree(self) -> int:
        unique = {f.id for f in self.fingers if f is not None}
        unique.update(s.id for s in self.successors)
        if self.predecessor is not None:
            unique.add(self.predecessor.id)
        unique.discard(self.id)
        return len(unique)

    def pointer_targets(self) -> List["ChordNode"]:
        """Every node this node currently points at (for tests)."""
        targets = [f for f in self.fingers if f is not None]
        targets.extend(self.successors)
        if self.predecessor is not None:
            targets.append(self.predecessor)
        return targets
