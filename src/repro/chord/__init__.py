"""Chord DHT (Stoica et al., 2003) — the O(log n)-degree reference system.

Included because the paper reports Chord alongside the three
constant-degree DHTs in every experiment.
"""

from repro.chord.network import ChordNetwork
from repro.chord.node import ChordNode

__all__ = ["ChordNetwork", "ChordNode"]
