"""Chord overlay network simulator.

Implements iterative Chord lookups with hop, timeout and query-load
accounting, graceful departures that notify only the immediate ring
neighbours (leaving fingers stale), joins that wire the joiner and its
ring neighbours, and an idealised full-round stabilisation that restores
every pointer from the live membership — the role periodic stabilisation
plays in the paper's §4.4 churn experiment.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.chord.node import ChordNode
from repro.dht.base import Network
from repro.dht.hashing import hash_to_ring
from repro.dht.ring import SortedRing, in_interval
from repro.dht.routing import RoutingDecision
from repro.util.rng import make_rng

__all__ = ["ChordNetwork"]

PHASE_FINGER = "finger"
PHASE_SUCCESSOR = "successor"


class ChordNetwork(Network):
    """A Chord ring over the ``2^bits`` identifier space.

    ``successor_list_size`` defaults to ``bits`` — Chord's design point of
    ``r = Theta(log n)`` backups, which is what lets it resolve every
    lookup under the paper's massive-departure experiment (§4.3) while
    the constant-degree DHTs make do with O(1) backups.
    """

    protocol_name = "chord"
    ROUTING_PHASES = (PHASE_FINGER, PHASE_SUCCESSOR)

    def __init__(
        self,
        bits: int,
        successor_list_size: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if successor_list_size is None:
            successor_list_size = bits
        if successor_list_size < 1:
            raise ValueError("successor_list_size must be >= 1")
        self.bits = bits
        self.successor_list_size = successor_list_size
        self.ring: SortedRing[ChordNode] = SortedRing(bits)
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def with_ids(
        cls,
        node_ids: Iterable[int],
        bits: int,
        successor_list_size: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "ChordNetwork":
        """Build a stabilised network containing exactly ``node_ids``."""
        network = cls(bits, successor_list_size, seed)
        for node_id in node_ids:
            network._insert(ChordNode(f"n{node_id}", node_id, bits))
        network.stabilize()
        return network

    @classmethod
    def with_random_ids(
        cls,
        count: int,
        bits: int,
        successor_list_size: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "ChordNetwork":
        """Build a stabilised network of ``count`` distinct random ids."""
        space = 1 << bits
        if count > space:
            raise ValueError(f"{count} nodes exceed the 2^{bits} ID space")
        rng = make_rng(seed)
        ids = rng.sample(range(space), count)
        return cls.with_ids(ids, bits, successor_list_size, seed)

    @classmethod
    def complete(
        cls,
        bits: int,
        successor_list_size: Optional[int] = None,
    ) -> "ChordNetwork":
        """Every identifier occupied — the paper's dense configuration."""
        return cls.with_ids(range(1 << bits), bits, successor_list_size)

    def _insert(self, node: ChordNode) -> None:
        self.ring.add(node.id, node)

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def live_nodes(self) -> Sequence[ChordNode]:
        return self.ring.nodes()

    @property
    def size(self) -> int:
        return len(self.ring)

    def key_id(self, key: object) -> int:
        return hash_to_ring(key, self.bits)

    def owner_of_id(self, key_id: int) -> ChordNode:
        """Ground truth: the key's live successor."""
        return self.ring.successor(key_id)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def next_hop(
        self, current: ChordNode, key_id: int, state: object
    ) -> RoutingDecision:
        if current.id == key_id or self._believes_responsible(
            current, key_id
        ):
            return RoutingDecision.terminate()
        node, phase, timeouts, final, alternates = self._choose_next(
            current, key_id
        )
        if node is None:
            # No live pointer toward the key: the lookup dies here.
            return RoutingDecision.dead_end(timeouts)
        if node is current:
            return RoutingDecision.terminate(timeouts)
        if final:
            # Delivered to the key's believed successor.
            return RoutingDecision.deliver(node, phase, timeouts, alternates)
        return RoutingDecision.forward(node, phase, timeouts, alternates)

    def _believes_responsible(self, node: ChordNode, key_id: int) -> bool:
        """True when the node's local state says it stores the key
        (key in (predecessor, node])."""
        predecessor = node.predecessor
        if predecessor is None:
            return not node.successors  # singleton owns everything
        return in_interval(key_id, predecessor.id, node.id, self.ring.modulus)

    def _choose_next(self, current: ChordNode, key_id: int):
        """One Chord routing decision at ``current``.

        Returns ``(next_node_or_None, phase, timeouts, final,
        alternates)``.  Dead entries the node attempts to contact each
        cost one timeout (§4.3).  ``final`` is set on the delivery step
        — the key fell in ``(current, successor]`` so the successor is
        responsible.

        In fault mode the preference order comes back unfiltered: the
        believed successor (backup list as alternates) on the delivery
        step, otherwise the best preceding pointer with the lower-ranked
        pointers and then the successor list as alternates, leaving
        dead-node detection to the engine's probe loop.
        """
        timeouts = 0
        dead_seen: Set[int] = set()
        fault_mode = self.fault_detection

        if not current.successors:
            # Singleton ring: current believes it owns the whole space.
            return current, PHASE_SUCCESSOR, 0, True, ()

        # Final-step rule: the node believes successors[0] is its
        # successor; if the key falls in (current, successors[0]] it
        # forwards there, walking the backup list on timeouts.
        believed = current.successors[0]
        if in_interval(key_id, current.id, believed.id, self.ring.modulus):
            if fault_mode:
                alternates = tuple(
                    (backup, PHASE_SUCCESSOR)
                    for backup in current.successors[1:5]
                )
                return believed, PHASE_SUCCESSOR, 0, True, alternates
            for candidate in current.successors:
                if candidate.alive:
                    return candidate, PHASE_SUCCESSOR, timeouts, True, ()
                if candidate.id not in dead_seen:
                    dead_seen.add(candidate.id)
                    timeouts += 1
            return None, PHASE_SUCCESSOR, timeouts, False, ()

        # Otherwise try the closest preceding pointers best-first; only
        # pointers actually contacted can incur a timeout.
        candidates = []
        for candidate, phase in self._pointer_candidates(current):
            if candidate.id == current.id:
                continue
            if not in_interval(
                candidate.id, current.id, key_id, self.ring.modulus
            ):
                continue  # would overshoot the key
            distance = (candidate.id - current.id) % self.ring.modulus
            candidates.append((distance, candidate, phase))
        candidates.sort(key=lambda item: item[0], reverse=True)
        if fault_mode:
            ordered = [(c, phase) for _, c, phase in candidates]
            offered = {c.id for c, _ in ordered}
            # The successor list is the last resort (the fault-free
            # cascade's live-successor delivery): append any entries the
            # preceding-pointer ranking did not already offer.
            for backup in current.successors:
                if backup.id != current.id and backup.id not in offered:
                    offered.add(backup.id)
                    ordered.append((backup, PHASE_SUCCESSOR))
            if not ordered:
                return None, PHASE_SUCCESSOR, 0, False, ()
            primary, phase = ordered[0]
            return primary, phase, 0, False, tuple(ordered[1:5])
        for _, candidate, phase in candidates:
            if candidate.alive:
                return candidate, phase, timeouts, False, ()
            if candidate.id not in dead_seen:
                dead_seen.add(candidate.id)
                timeouts += 1
        # Every pointer strictly preceding the key is dead.  The first
        # live successor must then cover the key (all list entries before
        # it were tried above), so this is a delivery step.
        live_successor = next(
            (s for s in current.successors if s.alive), None
        )
        if live_successor is None:
            return None, PHASE_SUCCESSOR, timeouts, False, ()
        return live_successor, PHASE_SUCCESSOR, timeouts, True, ()

    @staticmethod
    def _pointer_candidates(node: ChordNode):
        for finger in node.fingers:
            if finger is not None:
                yield finger, PHASE_FINGER
        for successor in node.successors:
            yield successor, PHASE_SUCCESSOR

    # ------------------------------------------------------------------
    # membership changes
    # ------------------------------------------------------------------

    def join(self, name: object) -> ChordNode:
        """Join via consistent hashing; wires the joiner and its neighbours.

        The joiner's own pointers are initialised correctly (in the real
        protocol it learns them by routing through any contact node) and
        its immediate ring neighbours are notified; everyone else's
        fingers stay stale until stabilisation, per the paper's model.
        """
        node_id = self._free_id_for(name)
        self.invalidate_owner_cache()
        node = ChordNode(name, node_id, self.bits)
        had_peers = len(self.ring) > 0
        self._insert(node)
        if had_peers:
            self._wire(node)
            successor = node.successor
            if successor is not None:
                successor.predecessor = node
                self.maintenance_updates += 1
            predecessor = node.predecessor
            if predecessor is not None:
                predecessor.successors = self._successor_list(predecessor)
                self.maintenance_updates += 1
        else:
            self._wire(node)
        return node

    def _free_id_for(self, name: object) -> int:
        """Hash ``name``; linear-probe past ids already in use."""
        node_id = hash_to_ring(name, self.bits)
        space = 1 << self.bits
        if len(self.ring) >= space:
            raise RuntimeError("identifier space exhausted")
        while node_id in self.ring:
            node_id = (node_id + 1) % space
        return node_id

    def leave(self, node: ChordNode) -> None:
        """Graceful departure: notify predecessor and successor only."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.ring.remove(node.id)
        predecessor = node.predecessor
        # Notify the first *live* successor (the departing node walks its
        # backup list exactly as a lookup would).
        successor = next((s for s in node.successors if s.alive), None)
        if successor is not None and successor.predecessor is node:
            successor.predecessor = (
                predecessor
                if predecessor is not None and predecessor.alive
                else None
            )
            self.maintenance_updates += 1
        if predecessor is not None and predecessor.alive:
            # Splice the departed node out of the predecessor's list and
            # extend it with the departed node's knowledge.
            merged = [s for s in predecessor.successors if s is not node]
            for candidate in node.successors:
                if candidate is not predecessor and candidate not in merged:
                    merged.append(candidate)
            predecessor.successors = merged[: self.successor_list_size]
            self.maintenance_updates += 1

    def fail(self, node: ChordNode) -> None:
        """Silent failure: no ring splicing — successor lists and
        predecessor pointers stay stale until stabilisation."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.ring.remove(node.id)

    def on_dead_entry(self, observer: ChordNode, dead: ChordNode) -> int:
        """Lazy repair after a timeout on ``dead``: splice it out of the
        successor list, clear a stale predecessor pointer, and re-point
        any finger at it to its interval's current live successor — the
        walk-down repair Chord performs when a finger probe fails."""
        repaired = 0
        if any(s is dead for s in observer.successors):
            observer.successors = [
                s for s in observer.successors if s is not dead
            ]
            repaired += 1
        if observer.predecessor is dead:
            observer.predecessor = None
            repaired += 1
        space = 1 << self.bits
        for index, finger in enumerate(observer.fingers):
            if finger is dead:
                observer.fingers[index] = self.ring.successor(
                    (observer.id + (1 << index)) % space
                )
                repaired += 1
        return repaired

    def stabilize(self) -> None:
        """Restore every live node's pointers from the live membership."""
        for node in self.ring.nodes():
            self._wire(node)

    def stabilize_node(self, node: ChordNode) -> None:
        """One node's stabilisation: refresh successors and fingers."""
        if node.alive:
            self._wire(node)

    def _wire(self, node: ChordNode) -> None:
        node.successors = self._successor_list(node)
        node.predecessor = (
            self.ring.predecessor(node.id) if len(self.ring) > 1 else None
        )
        space = 1 << self.bits
        node.fingers = [
            self.ring.successor((node.id + (1 << i)) % space)
            for i in range(self.bits)
        ]

    def _successor_list(self, node: ChordNode) -> List[ChordNode]:
        return self.ring.successor_run(node.id, self.successor_list_size)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        nodes = self.ring.nodes()
        for node in nodes:
            if len(nodes) == 1:
                assert node.successors == [], "singleton must have no successors"
                continue
            assert node.successors, f"{node!r} has an empty successor list"
            expected = self.ring.successor_id((node.id + 1) % self.ring.modulus)
            assert node.successor is not None
            assert node.successor.id == expected, (
                f"{node!r} successor {node.successor.id}, expected {expected}"
            )
