"""E7 — massive simultaneous departures without stabilisation
(Fig. 11 + Table 4).

A stable 2048-node network suffers graceful departures with per-node
probability p in {0.1..0.5}; 10 000 lookups with random sources and
destinations then measure the mean path length, the timeout
distribution (dead nodes contacted) and the number of lookups that
failed to reach the key's correct storing node.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.dht.routing import TraceObserver
from repro.experiments.common import fail_nodes
from repro.experiments.registry import PROTOCOLS, build_complete_network
from repro.sim.parallel import run_sharded_lookups
from repro.util.rng import make_rng
from repro.util.stats import DistributionSummary

__all__ = ["FailurePoint", "run_mass_departure_experiment"]

DEFAULT_PROBABILITIES: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)


def departed_setup(
    protocol: str,
    dimension: int,
    seed: int,
    probability: float,
    departure_seed: int,
):
    """Shard setup: a complete network after seeded graceful departures.

    Module-level (and built with ``functools.partial``) so shard tasks
    pickle into worker processes; every shard rebuilds the identical
    post-departure topology because both the build and the departure
    draw are pure functions of the seeds.
    """
    network = build_complete_network(protocol, dimension, seed=seed)
    fail_nodes(network, probability, make_rng(departure_seed))
    return network, None


@dataclass(frozen=True)
class FailurePoint:
    """One (protocol, departure probability) measurement."""

    protocol: str
    probability: float
    survivors: int
    mean_path_length: float
    timeout_summary: DistributionSummary
    lookup_failures: int
    lookups: int

    def timeout_row(self) -> str:
        """Table-4 style ``mean (p1, p99)`` cell."""
        return self.timeout_summary.as_row()


def run_mass_departure_experiment(
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
    protocols: Sequence[str] = PROTOCOLS,
    dimension: int = 8,
    lookups: int = 10_000,
    seed: int = 42,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
) -> List[FailurePoint]:
    """Fig. 11 (mean path length vs p) and Table 4 (timeouts vs p).

    The path-length mean is taken over *completed* lookups — a lookup
    that dies at a dead end contributes to the failure count instead.
    """
    points: List[FailurePoint] = []
    for protocol in protocols:
        for probability in probabilities:
            merged = run_sharded_lookups(
                partial(
                    departed_setup,
                    protocol,
                    dimension,
                    seed,
                    probability,
                    seed + int(probability * 100),
                ),
                lookups,
                seed + 1,
                workers=workers,
                distribution=distribution,
                observer=observer,
            )
            stats = merged.stats
            completed = [r.hops for r in stats.records if r.success]
            mean_path = (
                sum(completed) / len(completed) if completed else 0.0
            )
            points.append(
                FailurePoint(
                    protocol=protocol,
                    probability=probability,
                    survivors=merged.population,
                    mean_path_length=mean_path,
                    timeout_summary=stats.timeout_summary(),
                    lookup_failures=stats.failures,
                    lookups=len(stats),
                )
            )
    return points
