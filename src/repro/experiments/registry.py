"""Protocol registry: uniform construction of comparable networks.

The paper compares networks *of the same node count*: a complete
``d``-dimensional Cycloid has ``n = d * 2^d`` nodes; Chord and Koorde
then get ``n`` random identifiers on a ``2^ceil(log2 n)`` ring, and
Viceroy ``n`` identities in [0, 1).  For the sparsity and key-balance
experiments the ID space is pinned to 2048 identifiers (Cycloid d = 8,
Chord/Koorde 11 bits) and only the population varies.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.chord import ChordNetwork
from repro.core import CycloidNetwork
from repro.dht.base import Network
from repro.dht.identifiers import cycloid_space_size
from repro.can import CanNetwork
from repro.koorde import KoordeNetwork
from repro.pastry import PastryNetwork
from repro.viceroy import ViceroyNetwork

__all__ = [
    "PROTOCOLS",
    "CYCLOID_11",
    "build_complete_network",
    "build_sized_network",
    "protocol_label",
    "dimension_for_space",
]

#: Protocol keys in the order the paper's figures list them.  Pastry is
#: implemented too (the paper's §2.1 base system and a Table 1 row) but
#: excluded from the figure sweeps, which compare only the paper's five
#: evaluated configurations.
CYCLOID = "cycloid"
CYCLOID_11 = "cycloid-11"
VICEROY = "viceroy"
CHORD = "chord"
KOORDE = "koorde"
PASTRY = "pastry"
CAN = "can"
PROTOCOLS = (CYCLOID, CYCLOID_11, VICEROY, CHORD, KOORDE)
ALL_PROTOCOLS = PROTOCOLS + (PASTRY, CAN)

_LABELS: Dict[str, str] = {
    CYCLOID: "7-entry Cycloid",
    CYCLOID_11: "11-entry Cycloid",
    VICEROY: "Viceroy",
    CHORD: "Chord",
    KOORDE: "Koorde",
    PASTRY: "Pastry",
    CAN: "CAN",
}


def protocol_label(protocol: str) -> str:
    """Human-readable label used in printed tables."""
    try:
        return _LABELS[protocol]
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r}") from None


def _ring_bits_for(count: int) -> int:
    """Smallest power-of-two ring that fits ``count`` nodes."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return max(1, math.ceil(math.log2(count)))


def build_complete_network(protocol: str, dimension: int, seed: int = 0) -> Network:
    """A network with the node count of a complete d-dimensional Cycloid.

    Cycloid variants are built *complete* (every CCC position occupied,
    the Fig. 5/6 configuration); the other DHTs get the same number of
    nodes placed randomly in their own identifier spaces.
    """
    count = cycloid_space_size(dimension)
    if protocol == CYCLOID:
        return CycloidNetwork.complete(dimension, leaf_radius=1)
    if protocol == CYCLOID_11:
        return CycloidNetwork.complete(dimension, leaf_radius=2)
    return build_sized_network(protocol, count, seed=seed)


def build_sized_network(
    protocol: str,
    count: int,
    seed: int = 0,
    id_space_bits: Optional[int] = None,
    cycloid_dimension: Optional[int] = None,
) -> Network:
    """``count`` randomly-placed nodes in each protocol's ID space.

    ``id_space_bits`` / ``cycloid_dimension`` pin the identifier space
    for the sparsity and key-distribution experiments ("the network ID
    space is of 2048 nodes": 11 bits, Cycloid dimension 8).
    """
    if protocol in (CYCLOID, CYCLOID_11):
        radius = 2 if protocol == CYCLOID_11 else 1
        dimension = cycloid_dimension
        if dimension is None:
            dimension = dimension_for_space(count)
        return CycloidNetwork.with_random_ids(
            count, dimension, leaf_radius=radius, seed=seed
        )
    if protocol == CHORD:
        bits = id_space_bits or _ring_bits_for(count)
        return ChordNetwork.with_random_ids(count, bits, seed=seed)
    if protocol == KOORDE:
        bits = id_space_bits or _ring_bits_for(count)
        return KoordeNetwork.with_random_ids(count, bits, seed=seed)
    if protocol == VICEROY:
        return ViceroyNetwork.with_random_ids(count, seed=seed)
    if protocol == PASTRY:
        bits = id_space_bits or _ring_bits_for(count)
        # Pastry ids are digit strings; round the ring up to a whole
        # number of base-4 digits.
        bits += (-bits) % 2
        return PastryNetwork.with_random_ids(count, bits=bits, seed=seed)
    if protocol == CAN:
        return CanNetwork.with_random_zones(count, seed=seed)
    raise ValueError(f"unknown protocol {protocol!r}")


def dimension_for_space(count: int) -> int:
    """Smallest dimension whose Cycloid ID space holds ``count`` nodes."""
    dimension = 1
    while cycloid_space_size(dimension) < count:
        dimension += 1
    return dimension
