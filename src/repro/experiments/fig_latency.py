"""fig-latency — end-to-end lookup milliseconds under a link model (§S25).

The paper's figures count hops; this experiment re-runs the Fig. 5-style
complete-overlay comparison under a seeded
:class:`~repro.sim.latency.LatencyModel` and reports *milliseconds*: the
same workload, the same overlays, but every record now carries the sum
of its path's modeled link delays.  Two extra Cycloid cells isolate what
neighbour selection buys:

* ``cycloid/random`` wires each node's outside leaf sets to a
  stable-hash-picked cycle member — the no-information baseline;
* ``cycloid/proximity`` picks the cycle member with the lowest modeled
  RTT from the observing node (:mod:`repro.core.network`,
  ``leaf_selection="proximity"``) — the paper §5's proximity-aware
  variant.

Every cell runs through :func:`repro.sim.parallel.run_sharded_lookups`,
so the report — including each cell's record ``digest`` — is
bit-identical at every worker count; the CI smoke job diffs a
``--workers 1`` run against ``--workers 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.network import CycloidNetwork
from repro.dht.identifiers import cycloid_space_size
from repro.dht.kernel import DEFAULT_BACKEND
from repro.dht.routing import TraceObserver
from repro.experiments.registry import PROTOCOLS, build_complete_network
from repro.sim.latency import LatencyModel
from repro.sim.parallel import (
    DEFAULT_SHARD_SIZE,
    plain_setup,
    run_sharded_lookups,
)

__all__ = [
    "LATENCY_BENCH_SCHEMA",
    "LatencyPoint",
    "build_cycloid_variant",
    "run_latency_experiment",
    "latency_report",
    "validate_latency_report",
]

#: Schema tag of the ``BENCH_latency.json`` report.
LATENCY_BENCH_SCHEMA = "repro/latency-bench/v1"

#: Default link model of the experiment: 4 regions, 5 ms intra-region
#: floor, 40-160 ms inter-region bases, 10 ms per-link jitter.
DEFAULT_MODEL = LatencyModel(seed=7)


@dataclass(frozen=True)
class LatencyPoint:
    """One (overlay variant) milliseconds measurement."""

    label: str
    protocol: str
    selection: str
    dimension: int
    size: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_path_length: float
    failures: int
    #: sha256 over the cell's canonical records — the workers-parity pin.
    digest: str


def build_cycloid_variant(
    dimension: int,
    leaf_selection: str,
    latency: Optional[LatencyModel] = None,
) -> CycloidNetwork:
    """A complete Cycloid overlay wired with ``leaf_selection``.

    Module-level (and all arguments picklable) so ``functools.partial``
    over it crosses the process pool of a sharded run.
    """
    return CycloidNetwork.complete(
        dimension, leaf_selection=leaf_selection, latency=latency
    )


def run_latency_experiment(
    dimension: int = 8,
    protocols: Sequence[str] = PROTOCOLS,
    lookups: int = 2000,
    seed: int = 42,
    model: LatencyModel = DEFAULT_MODEL,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
    backend: str = DEFAULT_BACKEND,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> List[LatencyPoint]:
    """Measure modeled end-to-end lookup milliseconds per overlay.

    One cell per protocol at the complete ``dimension`` build (all on
    primary/default wiring), plus the ``cycloid/random`` and
    ``cycloid/proximity`` leaf-selection variants under the same
    ``model``.  Every cell's workload and merge runs through the
    sharded runner, so each point — digest included — is a pure
    function of the arguments, independent of ``workers``.
    """
    cells = [
        (
            protocol,
            protocol,
            "primary" if protocol.startswith("cycloid") else "default",
            partial(
                plain_setup,
                build_complete_network,
                protocol,
                dimension,
                seed=seed,
            ),
        )
        for protocol in protocols
    ]
    for selection in ("random", "proximity"):
        cells.append(
            (
                f"cycloid/{selection}",
                "cycloid",
                selection,
                partial(
                    plain_setup,
                    build_cycloid_variant,
                    dimension,
                    selection,
                    model,
                ),
            )
        )
    size = cycloid_space_size(dimension)
    points: List[LatencyPoint] = []
    for label, protocol, selection, setup in cells:
        merged = run_sharded_lookups(
            setup,
            lookups,
            seed + dimension,
            workers=workers,
            shard_size=shard_size,
            observer=observer,
            distribution=distribution,
            backend=backend,
            latency=model,
        )
        stats = merged.stats
        percentiles = stats.latency_percentiles()
        points.append(
            LatencyPoint(
                label=label,
                protocol=protocol,
                selection=selection,
                dimension=dimension,
                size=size,
                mean_ms=percentiles["mean"],
                p50_ms=percentiles["p50"],
                p95_ms=percentiles["p95"],
                p99_ms=percentiles["p99"],
                mean_path_length=stats.mean_path_length,
                failures=stats.failures,
                digest=stats.digest(),
            )
        )
    return points


def latency_report(
    points: Sequence[LatencyPoint],
    dimension: int,
    lookups: int,
    seed: int,
    model: LatencyModel,
    workers: int,
) -> Dict[str, object]:
    """The ``BENCH_latency.json`` document for one experiment run.

    ``workers`` is recorded for provenance only — every other field is
    independent of it, which is exactly what the CI smoke job checks by
    diffing two runs at different worker counts (after dropping the
    ``workers`` line).
    """
    by_label = {p.label: p for p in points}
    report: Dict[str, object] = {
        "schema": LATENCY_BENCH_SCHEMA,
        "model": model.to_config(),
        "dimension": dimension,
        "size": cycloid_space_size(dimension),
        "lookups": lookups,
        "seed": seed,
        "workers": workers,
        "cells": [
            {
                "label": p.label,
                "protocol": p.protocol,
                "selection": p.selection,
                "size": p.size,
                "mean_ms": p.mean_ms,
                "p50_ms": p.p50_ms,
                "p95_ms": p.p95_ms,
                "p99_ms": p.p99_ms,
                "mean_path_length": p.mean_path_length,
                "failures": p.failures,
                "digest": p.digest,
            }
            for p in points
        ],
    }
    random_cell = by_label.get("cycloid/random")
    proximity_cell = by_label.get("cycloid/proximity")
    if random_cell is not None and proximity_cell is not None:
        report["proximity"] = {
            "random_mean_ms": random_cell.mean_ms,
            "proximity_mean_ms": proximity_cell.mean_ms,
            "improvement_ms": random_cell.mean_ms - proximity_cell.mean_ms,
            #: the §S25 acceptance bar: proximity wiring must not lose.
            "proximity_wins": proximity_cell.mean_ms < random_cell.mean_ms,
        }
    return report


_LATENCY_REPORT_KEYS = (
    "schema",
    "model",
    "dimension",
    "size",
    "lookups",
    "seed",
    "cells",
)
_LATENCY_CELL_KEYS = (
    "label",
    "protocol",
    "selection",
    "size",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "mean_path_length",
    "failures",
    "digest",
)


def validate_latency_report(report: Dict[str, object]) -> None:
    """Schema-guard a ``BENCH_latency.json`` document.

    Raises ``ValueError`` naming the first violation: missing keys,
    malformed cells, or digests that are not sha256 hex strings.
    """
    if not isinstance(report, dict):
        raise ValueError("latency report must be a JSON object")
    if report.get("schema") != LATENCY_BENCH_SCHEMA:
        raise ValueError(
            f"latency report schema is {report.get('schema')!r}, "
            f"expected {LATENCY_BENCH_SCHEMA!r}"
        )
    for key in _LATENCY_REPORT_KEYS:
        if key not in report:
            raise ValueError(f"latency report is missing {key!r}")
    # Round-trips iff the model block is well-formed.
    LatencyModel.from_config(report["model"])
    cells = report["cells"]
    if not isinstance(cells, list) or not cells:
        raise ValueError("latency report has no cells")
    for cell in cells:
        if not isinstance(cell, dict):
            raise ValueError("latency report cells must be objects")
        for key in _LATENCY_CELL_KEYS:
            if key not in cell:
                raise ValueError(
                    f"latency cell {cell.get('label')!r} is missing {key!r}"
                )
        digest = cell["digest"]
        if not (isinstance(digest, str) and len(digest) == 64):
            raise ValueError(
                f"latency cell {cell['label']!r} digest is not a sha256 "
                "hex digest"
            )
    proximity = report.get("proximity")
    if proximity is not None:
        for key in (
            "random_mean_ms",
            "proximity_mean_ms",
            "improvement_ms",
            "proximity_wins",
        ):
            if key not in proximity:
                raise ValueError(
                    f"latency report proximity section is missing {key!r}"
                )
        wins = (
            proximity["proximity_mean_ms"] < proximity["random_mean_ms"]
        )
        if bool(proximity["proximity_wins"]) != wins:
            raise ValueError(
                "latency report proximity_wins is inconsistent with the "
                "means"
            )
