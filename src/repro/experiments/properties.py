"""E11 — architectural comparison (Tables 1 and 3).

The paper's Tables 1/3 are analytic; here they are *measured*: the
routing-state size, base graph, lookup complexity class, ID space and
key-placement rule are read off the living implementations, so the test
suite can assert them (e.g. every Cycloid node holds at most 7 entries,
every Viceroy node exactly 7 links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dht.base import Network
from repro.experiments.registry import build_complete_network, protocol_label

__all__ = ["ArchitectureRow", "architecture_table"]


@dataclass(frozen=True)
class ArchitectureRow:
    """One protocol's row of Table 1 / Table 3."""

    protocol: str
    label: str
    base_network: str
    lookup_complexity: str
    routing_state: str
    id_space: str
    key_placement: str
    max_observed_state: int
    size: int


_STATIC = {
    "cycloid": (
        "CCC",
        "O(d)",
        "7",
        "([0,d), [0, d*2^d))",
        "numerically closest node",
    ),
    "cycloid-11": (
        "CCC",
        "O(d)",
        "11",
        "([0,d), [0, d*2^d))",
        "numerically closest node",
    ),
    "viceroy": ("butterfly", "O(log n)", "7", "[0, 1)", "successor"),
    "chord": ("cycle", "O(log n)", "O(log n)", "[0, 2^m)", "successor"),
    "koorde": ("de Bruijn", "O(log n)", "7", "[0, 2^m)", "successor"),
    "pastry": (
        "hypercube",
        "O(log n)",
        "O(|L|) + O(log n)",
        "[0, 2^m)",
        "numerically closest node",
    ),
    "can": (
        "mesh",
        "O(d * n^(1/d))",
        "O(d)",
        "d-dimensional torus",
        "zone owner",
    ),
}


def architecture_table(
    protocols: Sequence[str] = tuple(_STATIC),
    dimension: int = 5,
    seed: int = 42,
) -> List[ArchitectureRow]:
    """Build each protocol at a modest size and measure its state."""
    rows: List[ArchitectureRow] = []
    for protocol in protocols:
        base, complexity, state, space, placement = _STATIC[protocol]
        network = build_complete_network(protocol, dimension, seed=seed)
        rows.append(
            ArchitectureRow(
                protocol=protocol,
                label=protocol_label(protocol),
                base_network=base,
                lookup_complexity=complexity,
                routing_state=state,
                id_space=space,
                key_placement=placement,
                max_observed_state=_max_state(network),
                size=network.size,
            )
        )
    return rows


def _max_state(network: Network) -> int:
    """The largest routing-state footprint observed on any node."""
    largest = 0
    for node in network.live_nodes():
        state = getattr(node, "state_size", None)
        largest = max(largest, state if state is not None else node.degree)
    return largest
