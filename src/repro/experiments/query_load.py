"""E6 — query-load balance (Fig. 10).

Runs a random lookup workload on networks of 64 and 2048 nodes and
summarises how many queries each node *receives* as an intermediate or
final hop.  The paper's claim: Cycloid shows the smallest spread among
the constant-degree DHTs (Viceroy concentrates load on high levels,
Koorde on even identifiers).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.dht.identifiers import cycloid_space_size
from repro.dht.routing import TraceObserver
from repro.experiments.registry import build_complete_network
from repro.sim.parallel import plain_setup, run_sharded_lookups
from repro.util.stats import DistributionSummary, summarize

__all__ = ["QueryLoadPoint", "run_query_load_experiment"]

#: Fig. 10 uses 64- and 2048-node networks: dimensions 4 and 8.
DEFAULT_DIMENSIONS: Tuple[int, ...] = (4, 8)
DEFAULT_PROTOCOLS: Tuple[str, ...] = ("cycloid", "viceroy", "chord", "koorde")


@dataclass(frozen=True)
class QueryLoadPoint:
    """Per-node received-query distribution for one (protocol, size)."""

    protocol: str
    dimension: int
    size: int
    lookups: int
    summary: DistributionSummary

    @property
    def relative_spread(self) -> float:
        """p99 - p1 spread normalised by the mean load."""
        if self.summary.mean == 0:
            return 0.0
        return self.summary.spread / self.summary.mean


def run_query_load_experiment(
    dimensions: Sequence[int] = DEFAULT_DIMENSIONS,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    lookups_per_node: int = 4,
    seed: int = 42,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
) -> List[QueryLoadPoint]:
    """Measure the query-load spread for each protocol and size.

    Each shard routes on its own locally built network and reports a
    per-node received-query counter; the merge sums counters across
    shards, which is exact because query accounting is additive and
    never feeds back into routing.
    """
    points: List[QueryLoadPoint] = []
    for dimension in dimensions:
        for protocol in protocols:
            total_lookups = lookups_per_node * cycloid_space_size(dimension)
            merged = run_sharded_lookups(
                partial(
                    plain_setup,
                    build_complete_network,
                    protocol,
                    dimension,
                    seed=seed,
                ),
                total_lookups,
                seed + dimension,
                workers=workers,
                distribution=distribution,
                observer=observer,
            )
            summary = summarize(
                [float(c) for c in merged.query_counts.values()]
            )
            points.append(
                QueryLoadPoint(
                    protocol=protocol,
                    dimension=dimension,
                    size=merged.population,
                    lookups=total_lookups,
                    summary=summary,
                )
            )
    return points
