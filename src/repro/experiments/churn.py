"""E8 — lookups during continuous node joining and leaving
(Fig. 12 + Table 5).

The §4.4 setting (taken verbatim from the Chord paper): the network
starts with 2048 stable nodes; lookups arrive at 1/s; joins and leaves
are Poisson with rate R in {0.05..0.40} each; every node stabilises
once per 30 s at a uniformly distributed phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.dht.identifiers import cycloid_space_size
from repro.dht.routing import TraceObserver
from repro.experiments.registry import PROTOCOLS, build_sized_network
from repro.sim.churn import ChurnConfig, run_churn_simulation
from repro.sim.parallel import run_cells
from repro.util.stats import DistributionSummary

__all__ = ["ChurnPoint", "run_churn_experiment", "DEFAULT_RATES"]

DEFAULT_RATES: Tuple[float, ...] = (
    0.05,
    0.10,
    0.15,
    0.20,
    0.25,
    0.30,
    0.35,
    0.40,
)


@dataclass(frozen=True)
class ChurnPoint:
    """One (protocol, join/leave rate) measurement."""

    protocol: str
    rate: float
    mean_path_length: float
    timeout_summary: DistributionSummary
    lookup_failures: int
    lookups: int
    joins: int
    leaves: int
    final_size: int

    def timeout_row(self) -> str:
        """Table-5 style ``mean (p1, p99)`` cell."""
        return self.timeout_summary.as_row()


def _churn_cell(
    protocol: str,
    rate: float,
    population: int,
    duration: float,
    seed: int,
    ring_bits: int,
    cycloid_dimension: int,
    observer: Optional[TraceObserver] = None,
) -> ChurnPoint:
    """One (protocol, rate) churn simulation, fully self-seeding.

    A churn run is a single event-driven timeline — joins, leaves and
    lookups interleave on one mutating network — so the cell, not the
    lookup, is the unit of parallelism.  Module-level so cell tasks
    pickle into worker processes.
    """
    network = build_sized_network(
        protocol,
        population,
        seed=seed,
        id_space_bits=ring_bits,
        cycloid_dimension=cycloid_dimension,
    )
    config = ChurnConfig(
        join_leave_rate=rate,
        duration=duration,
        seed=seed + int(rate * 1000),
    )
    result = run_churn_simulation(network, config, observer=observer)
    completed = [r.hops for r in result.stats.records if r.success]
    mean_path = sum(completed) / len(completed) if completed else 0.0
    return ChurnPoint(
        protocol=protocol,
        rate=rate,
        mean_path_length=mean_path,
        timeout_summary=result.stats.timeout_summary(),
        lookup_failures=result.stats.failures,
        lookups=len(result.stats),
        joins=result.joins,
        leaves=result.leaves,
        final_size=result.final_size,
    )


def run_churn_experiment(
    rates: Sequence[float] = DEFAULT_RATES,
    protocols: Sequence[str] = PROTOCOLS,
    population: int = 2048,
    duration: float = 1000.0,
    seed: int = 42,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
) -> List[ChurnPoint]:
    """Fig. 12 (path length vs R) and Table 5 (timeouts vs R).

    The network starts with ``population`` stable nodes placed in an ID
    space with head-room for arrivals (joins must find free
    identifiers), then churns for ``duration`` simulated seconds.
    (protocol, rate) cells are independent and self-seeding, so they
    fan out over ``workers`` processes with bit-identical output; a
    trace ``observer`` holds a file handle and forces in-process runs.
    """
    # One dimension (and ring width) up from the smallest space that
    # fits the starting population, leaving room for joins.
    cycloid_dimension = 1
    while cycloid_space_size(cycloid_dimension) < population:
        cycloid_dimension += 1
    cycloid_dimension += 1
    ring_bits = max(2, population.bit_length() + 1)
    tasks = [
        partial(
            _churn_cell,
            protocol,
            rate,
            population,
            duration,
            seed,
            ring_bits,
            cycloid_dimension,
            observer,
        )
        for protocol in protocols
        for rate in rates
    ]
    return run_cells(tasks, workers=1 if observer is not None else workers)
