"""E1/E2 — lookup path length vs network size and dimension (Figs 5-6).

Networks of ``n = d * 2^d`` nodes for d = 3..8; every DHT handles the
same lookup workload; the figure series are the mean hop counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.dht.identifiers import cycloid_space_size
from repro.dht.routing import TraceObserver
from repro.experiments.registry import PROTOCOLS, build_complete_network
from repro.sim.parallel import plain_setup, run_sharded_lookups
from repro.util.stats import DistributionSummary

__all__ = ["PathLengthPoint", "run_path_length_experiment"]

DEFAULT_DIMENSIONS: Tuple[int, ...] = (3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class PathLengthPoint:
    """One (protocol, network) measurement."""

    protocol: str
    dimension: int
    size: int
    mean_path_length: float
    summary: DistributionSummary
    failures: int


def run_path_length_experiment(
    dimensions: Sequence[int] = DEFAULT_DIMENSIONS,
    protocols: Sequence[str] = PROTOCOLS,
    lookups: int = 5000,
    seed: int = 42,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
    backend: str = "object",
) -> List[PathLengthPoint]:
    """Measure mean lookup path length for every protocol and dimension.

    Fig. 5 plots the result against network size, Fig. 6 against the
    dimension; both read off the same points.  Each (protocol,
    dimension) cell runs as deterministic shards fanned out over
    ``workers`` processes (:mod:`repro.sim.parallel`) — the points are
    bit-identical for every worker count, and for either lookup
    execution ``backend`` (DESIGN §S23).  ``observer`` receives the
    per-hop trace of every lookup across the whole sweep (and forces
    in-process execution).
    """
    points: List[PathLengthPoint] = []
    for dimension in dimensions:
        size = cycloid_space_size(dimension)
        for protocol in protocols:
            merged = run_sharded_lookups(
                partial(
                    plain_setup,
                    build_complete_network,
                    protocol,
                    dimension,
                    seed=seed,
                ),
                lookups,
                seed + dimension,
                workers=workers,
                distribution=distribution,
                observer=observer,
                backend=backend,
            )
            stats = merged.stats
            points.append(
                PathLengthPoint(
                    protocol=protocol,
                    dimension=dimension,
                    size=size,
                    mean_path_length=stats.mean_path_length,
                    summary=stats.path_length_summary(),
                    failures=stats.failures,
                )
            )
    return points
