"""E9 — impact of ID-space sparsity on lookup efficiency (Fig. 13).

The identifier space is pinned at 2048 ids; the live population drops
as the degree of sparsity (fraction of non-existent nodes) grows.  The
paper's claims: Cycloid's mean path *decreases slightly*, Viceroy is
flat (its [0, 1) space is always sparse), Koorde's path *increases* as
larger gaps force more successor hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.dht.routing import TraceObserver
from repro.experiments.registry import build_sized_network
from repro.sim.parallel import plain_setup, run_sharded_lookups
from repro.util.stats import DistributionSummary

__all__ = ["SparsityPoint", "run_sparsity_experiment"]

DEFAULT_SPARSITIES: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
DEFAULT_PROTOCOLS: Tuple[str, ...] = ("cycloid", "viceroy", "chord", "koorde")


@dataclass(frozen=True)
class SparsityPoint:
    """One (protocol, sparsity) measurement."""

    protocol: str
    sparsity: float
    population: int
    mean_path_length: float
    summary: DistributionSummary
    lookup_failures: int


def run_sparsity_experiment(
    sparsities: Sequence[float] = DEFAULT_SPARSITIES,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    id_space: int = 2048,
    lookups: int = 10_000,
    seed: int = 42,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
) -> List[SparsityPoint]:
    """Fig. 13: mean path length vs degree of network sparsity."""
    bits = (id_space - 1).bit_length()
    if (1 << bits) != id_space:
        raise ValueError("id_space must be a power of two")
    cycloid_dimension = _dimension_for(id_space)
    points: List[SparsityPoint] = []
    for protocol in protocols:
        for sparsity in sparsities:
            if not 0.0 <= sparsity < 1.0:
                raise ValueError("sparsity must be in [0, 1)")
            population = max(2, round(id_space * (1.0 - sparsity)))
            stats = run_sharded_lookups(
                partial(
                    plain_setup,
                    build_sized_network,
                    protocol,
                    population,
                    seed=seed,
                    id_space_bits=bits,
                    cycloid_dimension=cycloid_dimension,
                ),
                lookups,
                seed + population,
                workers=workers,
                distribution=distribution,
                observer=observer,
            ).stats
            points.append(
                SparsityPoint(
                    protocol=protocol,
                    sparsity=sparsity,
                    population=population,
                    mean_path_length=stats.mean_path_length,
                    summary=stats.path_length_summary(),
                    lookup_failures=stats.failures,
                )
            )
    return points


def _dimension_for(id_space: int) -> int:
    dimension = 1
    while dimension * (1 << dimension) < id_space:
        dimension += 1
    if dimension * (1 << dimension) != id_space:
        raise ValueError(f"id_space {id_space} is not of the form d * 2^d")
    return dimension
