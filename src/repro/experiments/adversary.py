"""fig-adversary — sybil/eclipse attacks and hotspot caching (§S27).

Two questions, one report:

* **How much does a seeded adversary capture?**  For each overlay and
  each attacker fraction ``f``, a :class:`~repro.sim.adversary
  .AdversaryPlan` inserts ``round(f * population)`` sybils clustered
  around a target key and eclipse-poisons fraction ``f`` of honest
  nodes' repairable routing entries.  The cell reports the
  keyspace-capture fraction (seeded owner probes), whether the target
  key itself fell, the lookup-interception rate (fraction of recorded
  paths crossing an attacker), and the success/hops degradation against
  the same overlay's ``f = 0`` baseline cell.
* **How bad is a hotspot, and how much does caching recover?**  A
  Zipf-skewed workload (:class:`~repro.sim.workload.ZipfSampler`) runs
  against each honest overlay twice — uncached and through a bounded
  :class:`~repro.dht.cache.PathCacheLayer` — reporting mean hops and
  the cache hit rate.

The attacked overlays are built *sparse* (the id space holds about
twice the population) so crafted attacker identifiers have free slots
to land on — a complete overlay has none, and a real adversary attacks
the id space, not the census.  Attack cells run through
:func:`repro.sim.parallel.run_sharded_lookups` and hotspot cells
through :func:`repro.sim.parallel.run_cells` with self-seeding cells,
so the report — every digest included — is bit-identical at any
``--workers``; capture metrics are routing-free owner probes and do not
depend on workers at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.dht.cache import PathCacheLayer
from repro.dht.kernel import DEFAULT_BACKEND
from repro.dht.metrics import LookupStats
from repro.dht.routing import TraceObserver
from repro.experiments.registry import (
    _ring_bits_for,
    build_sized_network,
    dimension_for_space,
)
from repro.sim.adversary import (
    Adversary,
    AdversaryPlan,
    capture_fraction,
    interception_rate,
)
from repro.sim.parallel import (
    DEFAULT_SHARD_SIZE,
    plain_setup,
    run_cells,
    run_sharded_lookups,
)
from repro.sim.workload import ZipfSampler
from repro.util.rng import make_rng

__all__ = [
    "ADVERSARY_BENCH_SCHEMA",
    "ADVERSARY_PROTOCOLS",
    "DEFAULT_FRACTIONS",
    "AdversaryPoint",
    "HotspotPoint",
    "build_adversary_network",
    "hotspot_cell",
    "run_adversary_experiment",
    "adversary_report",
    "validate_adversary_report",
]

#: Schema tag of the ``BENCH_adversary.json`` report.
ADVERSARY_BENCH_SCHEMA = "repro/adversary-bench/v1"

#: Overlays with crafted-id infiltration + poisoning support.
ADVERSARY_PROTOCOLS = ("cycloid", "cycloid-11", "chord", "koorde")

#: Attacker fractions swept by default; 0.0 is the honest baseline the
#: degradation deltas are computed against.
DEFAULT_FRACTIONS = (0.0, 0.02, 0.05, 0.1)

#: The application key every sybil cluster surrounds.
DEFAULT_TARGET_KEY = "adversary-target"

#: Owner probes behind each capture-fraction estimate.
CAPTURE_PROBES = 1024

#: Hotspot workload shape: Zipf exponent, corpus size, cache bound.
DEFAULT_ZIPF_S = 1.1
DEFAULT_KEY_UNIVERSE = 128
DEFAULT_CACHE_CAPACITY = 32


@dataclass(frozen=True)
class AdversaryPoint:
    """One (overlay, attacker fraction) attack measurement."""

    label: str
    protocol: str
    fraction: float
    sybils: int
    eclipse_fraction: float
    population: int
    space: int
    victims: int
    poisoned_entries: int
    capture_fraction: float
    target_captured: bool
    interception_rate: float
    success_rate: float
    mean_hops: float
    failures: int
    #: sha256 over the cell's canonical records — the workers-parity pin.
    digest: str


@dataclass(frozen=True)
class HotspotPoint:
    """One (overlay, cache capacity) hotspot measurement."""

    label: str
    protocol: str
    capacity: int
    mean_hops: float
    success_rate: float
    hit_rate: float
    hits: int
    misses: int
    evictions: int
    digest: str


def _space_of(protocol: str, population: int) -> int:
    """Size of the sparse id space the attacked build uses."""
    if protocol.startswith("cycloid"):
        dimension = dimension_for_space(2 * population)
        return dimension * (1 << dimension)
    return 1 << (_ring_bits_for(population) + 1)


def build_adversary_network(
    protocol: str, population: int, seed: int, plan: AdversaryPlan
):
    """Build the sparse overlay, then apply ``plan``'s adversary.

    Module-level with picklable arguments (``AdversaryPlan`` is a
    frozen dataclass) so ``functools.partial`` over it crosses the
    sharded runner's process pool; both the snapshot and rebuild
    distributions therefore see the identical attacked topology.
    """
    if protocol.startswith("cycloid"):
        network = build_sized_network(
            protocol,
            population,
            seed=seed,
            cycloid_dimension=dimension_for_space(2 * population),
        )
    else:
        network = build_sized_network(
            protocol,
            population,
            seed=seed,
            id_space_bits=_ring_bits_for(population) + 1,
        )
    Adversary(plan).apply(network)
    return network


def hotspot_cell(
    protocol: str,
    population: int,
    seed: int,
    lookups: int,
    key_universe: int,
    zipf_s: float,
    capacity: int,
) -> dict:
    """One self-seeding hotspot cell (module-level for ``run_cells``).

    Builds the honest sparse overlay, draws a Zipf(``zipf_s``) workload
    over ``key_universe`` keys, and routes it through a
    :class:`PathCacheLayer` of the given ``capacity`` (``0`` = the
    uncached baseline, bit-exact to the plain engine).  Lookup order is
    part of the cache semantics, so the cell runs serially; worker
    invariance comes from every cell seeding itself.
    """
    network = build_adversary_network(
        protocol, population, seed, AdversaryPlan(seed=seed)
    )
    nodes = network.live_nodes()
    sampler = ZipfSampler.from_universe(key_universe, make_rng(seed), s=zipf_s)
    rng = make_rng(seed + 1)
    pairs = [
        (nodes[rng.randrange(len(nodes))], sampler.draw(rng))
        for _ in range(lookups)
    ]
    layer = PathCacheLayer(network, capacity)
    stats = LookupStats(layer.lookup_many(pairs))
    return {
        "label": f"{protocol}/cache-{capacity}",
        "protocol": protocol,
        "capacity": capacity,
        "mean_hops": stats.mean_path_length,
        "success_rate": (stats.count - stats.failures) / stats.count,
        "hit_rate": layer.stats.hit_rate,
        "hits": layer.stats.hits,
        "misses": layer.stats.misses,
        "evictions": layer.stats.evictions,
        "digest": stats.digest(),
    }


def run_adversary_experiment(
    population: int = 2048,
    protocols: Sequence[str] = ADVERSARY_PROTOCOLS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    lookups: int = 1000,
    seed: int = 23,
    target_key: str = DEFAULT_TARGET_KEY,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
    backend: str = DEFAULT_BACKEND,
    shard_size: int = DEFAULT_SHARD_SIZE,
    zipf_s: float = DEFAULT_ZIPF_S,
    key_universe: int = DEFAULT_KEY_UNIVERSE,
    cache_capacity: int = DEFAULT_CACHE_CAPACITY,
) -> Dict[str, object]:
    """Sweep attacker fractions per overlay, plus the hotspot cells.

    Returns ``{"attacks": [AdversaryPoint...], "hotspots":
    [HotspotPoint...]}``.  Every number is a pure function of the
    arguments; ``workers`` only fans the work out.
    """
    attacks: List[AdversaryPoint] = []
    for protocol in protocols:
        for fraction in fractions:
            sybils = round(fraction * population)
            plan = AdversaryPlan(
                seed=seed,
                sybils=sybils,
                target_key=target_key,
                eclipse_fraction=fraction,
            )
            # Driver-side twin of the sharded setup: same builder, same
            # arguments, hence the identical attacked topology.  Capture
            # metrics are owner probes against it — routing-free, so no
            # worker dependence is possible.
            adversary = Adversary(plan)
            network = build_adversary_network(
                protocol, population, seed, AdversaryPlan(seed=seed)
            )
            adversary.apply(network)
            names = adversary.attacker_names
            capture = capture_fraction(network, names, probes=CAPTURE_PROBES)
            target_owner = network.owner_of_id(network.key_id(target_key))
            merged = run_sharded_lookups(
                partial(
                    plain_setup,
                    build_adversary_network,
                    protocol,
                    population,
                    seed,
                    plan,
                ),
                lookups,
                seed + 1,
                workers=workers,
                shard_size=shard_size,
                observer=observer,
                distribution=distribution,
                backend=backend,
            )
            stats = merged.stats
            attacks.append(
                AdversaryPoint(
                    label=f"{protocol}/f={fraction:g}",
                    protocol=protocol,
                    fraction=fraction,
                    sybils=adversary.inserted,
                    eclipse_fraction=fraction,
                    population=population,
                    space=_space_of(protocol, population),
                    victims=adversary.victims,
                    poisoned_entries=adversary.poisoned_entries,
                    capture_fraction=capture,
                    target_captured=str(target_owner.name) in set(names),
                    interception_rate=interception_rate(stats.records, names),
                    success_rate=(stats.count - stats.failures) / stats.count,
                    mean_hops=stats.mean_path_length,
                    failures=stats.failures,
                    digest=stats.digest(),
                )
            )
    hotspot_tasks = [
        partial(
            hotspot_cell,
            protocol,
            population,
            seed,
            lookups,
            key_universe,
            zipf_s,
            capacity,
        )
        for protocol in protocols
        for capacity in (0, cache_capacity)
    ]
    hotspots = [
        HotspotPoint(**cell) for cell in run_cells(hotspot_tasks, workers)
    ]
    return {"attacks": attacks, "hotspots": hotspots}


def adversary_report(
    results: Dict[str, object],
    population: int,
    lookups: int,
    seed: int,
    target_key: str,
    workers: int,
    zipf_s: float = DEFAULT_ZIPF_S,
    key_universe: int = DEFAULT_KEY_UNIVERSE,
    cache_capacity: int = DEFAULT_CACHE_CAPACITY,
) -> Dict[str, object]:
    """The ``BENCH_adversary.json`` document for one experiment run.

    ``workers`` is recorded for provenance only — every other field is
    independent of it (the CI smoke job diffs two runs at different
    worker counts after dropping the ``workers`` line).
    """
    attacks: Sequence[AdversaryPoint] = results["attacks"]
    hotspots: Sequence[HotspotPoint] = results["hotspots"]
    degradation: Dict[str, dict] = {}
    for point in attacks:
        base = degradation.setdefault(
            point.protocol,
            {
                "baseline_success": None,
                "worst_success": None,
                "baseline_hops": None,
                "worst_hops": None,
            },
        )
        if point.fraction == 0.0:
            base["baseline_success"] = point.success_rate
            base["baseline_hops"] = point.mean_hops
        worst = base["worst_success"]
        if worst is None or point.success_rate < worst:
            base["worst_success"] = point.success_rate
        hops = base["worst_hops"]
        if hops is None or point.mean_hops > hops:
            base["worst_hops"] = point.mean_hops
    for entry in degradation.values():
        if entry["baseline_success"] is not None:
            entry["success_drop"] = (
                entry["baseline_success"] - entry["worst_success"]
            )
            entry["hops_inflation"] = (
                entry["worst_hops"] - entry["baseline_hops"]
            )
    return {
        "schema": ADVERSARY_BENCH_SCHEMA,
        "population": population,
        "lookups": lookups,
        "seed": seed,
        "target_key": target_key,
        "workers": workers,
        "capture_probes": CAPTURE_PROBES,
        "cells": [
            {
                "label": p.label,
                "protocol": p.protocol,
                "attacker_fraction": p.fraction,
                "plan": AdversaryPlan(
                    seed=seed,
                    sybils=p.sybils,
                    target_key=target_key,
                    eclipse_fraction=p.eclipse_fraction,
                ).to_config(),
                "population": p.population,
                "space": p.space,
                "sybils": p.sybils,
                "victims": p.victims,
                "poisoned_entries": p.poisoned_entries,
                "capture_fraction": p.capture_fraction,
                "target_captured": p.target_captured,
                "interception_rate": p.interception_rate,
                "success_rate": p.success_rate,
                "mean_hops": p.mean_hops,
                "failures": p.failures,
                "digest": p.digest,
            }
            for p in attacks
        ],
        "degradation": degradation,
        "hotspot": {
            "zipf_s": zipf_s,
            "key_universe": key_universe,
            "cache_capacity": cache_capacity,
            "cells": [
                {
                    "label": h.label,
                    "protocol": h.protocol,
                    "capacity": h.capacity,
                    "mean_hops": h.mean_hops,
                    "success_rate": h.success_rate,
                    "hit_rate": h.hit_rate,
                    "hits": h.hits,
                    "misses": h.misses,
                    "evictions": h.evictions,
                    "digest": h.digest,
                }
                for h in hotspots
            ],
        },
    }


_ADVERSARY_REPORT_KEYS = (
    "schema",
    "population",
    "lookups",
    "seed",
    "target_key",
    "capture_probes",
    "cells",
    "degradation",
    "hotspot",
)
_ADVERSARY_CELL_KEYS = (
    "label",
    "protocol",
    "attacker_fraction",
    "plan",
    "population",
    "space",
    "sybils",
    "victims",
    "poisoned_entries",
    "capture_fraction",
    "target_captured",
    "interception_rate",
    "success_rate",
    "mean_hops",
    "failures",
    "digest",
)
_HOTSPOT_CELL_KEYS = (
    "label",
    "protocol",
    "capacity",
    "mean_hops",
    "success_rate",
    "hit_rate",
    "hits",
    "misses",
    "evictions",
    "digest",
)


def _check_digest(label: object, digest: object, what: str) -> None:
    if not (isinstance(digest, str) and len(digest) == 64):
        raise ValueError(
            f"{what} cell {label!r} digest is not a sha256 hex digest"
        )


def validate_adversary_report(report: Dict[str, object]) -> None:
    """Schema-guard a ``BENCH_adversary.json`` document.

    Raises ``ValueError`` naming the first violation: missing keys,
    malformed cells or plans, out-of-range rates, digests that are not
    sha256 hex strings, or fewer than three overlays covered.
    """
    if not isinstance(report, dict):
        raise ValueError("adversary report must be a JSON object")
    if report.get("schema") != ADVERSARY_BENCH_SCHEMA:
        raise ValueError(
            f"adversary report schema is {report.get('schema')!r}, "
            f"expected {ADVERSARY_BENCH_SCHEMA!r}"
        )
    for key in _ADVERSARY_REPORT_KEYS:
        if key not in report:
            raise ValueError(f"adversary report is missing {key!r}")
    cells = report["cells"]
    if not isinstance(cells, list) or not cells:
        raise ValueError("adversary report has no cells")
    protocols = set()
    for cell in cells:
        if not isinstance(cell, dict):
            raise ValueError("adversary report cells must be objects")
        for key in _ADVERSARY_CELL_KEYS:
            if key not in cell:
                raise ValueError(
                    f"adversary cell {cell.get('label')!r} is missing {key!r}"
                )
        # Round-trips iff the embedded plan block is well-formed.
        AdversaryPlan.from_config(cell["plan"])
        for rate_key in (
            "capture_fraction",
            "interception_rate",
            "success_rate",
        ):
            rate = cell[rate_key]
            if not (
                isinstance(rate, (int, float))
                and not isinstance(rate, bool)
                and 0.0 <= rate <= 1.0
            ):
                raise ValueError(
                    f"adversary cell {cell['label']!r} {rate_key} "
                    f"{rate!r} is not a rate in [0, 1]"
                )
        _check_digest(cell["label"], cell["digest"], "adversary")
        protocols.add(cell["protocol"])
    if len(protocols) < 3:
        raise ValueError(
            f"adversary report covers {len(protocols)} overlays, need >= 3"
        )
    hotspot = report["hotspot"]
    if not isinstance(hotspot, dict):
        raise ValueError("adversary report hotspot section must be an object")
    for key in ("zipf_s", "key_universe", "cache_capacity", "cells"):
        if key not in hotspot:
            raise ValueError(
                f"adversary report hotspot section is missing {key!r}"
            )
    hotspot_cells = hotspot["cells"]
    if not isinstance(hotspot_cells, list) or not hotspot_cells:
        raise ValueError("adversary report has no hotspot cells")
    for cell in hotspot_cells:
        if not isinstance(cell, dict):
            raise ValueError("hotspot cells must be objects")
        for key in _HOTSPOT_CELL_KEYS:
            if key not in cell:
                raise ValueError(
                    f"hotspot cell {cell.get('label')!r} is missing {key!r}"
                )
        _check_digest(cell["label"], cell["digest"], "hotspot")
    degradation = report["degradation"]
    if not isinstance(degradation, dict) or not degradation:
        raise ValueError("adversary report degradation section is empty")
