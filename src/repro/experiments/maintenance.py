"""E12 (extension) — connectivity-maintenance cost.

The paper's conclusion weighs lookup efficiency against maintenance:
"Viceroy handles massive node failures/departures at a high cost for
connectivity maintenance, especially in the case when a node needs to
change its level", while Cycloid only notifies leaf sets and leaves
routing-table repair to stabilisation.  This experiment measures that
cost directly: the number of *other* nodes whose routing state each
join / graceful leave updates (``Network.maintenance_updates``).

Chord and Koorde appear cheap here (two ring neighbours per event) —
their real bill is paid later as stabilisation traffic and lookup
timeouts, which E7/E8 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence

from repro.dht.identifiers import cycloid_space_size
from repro.dht.routing import TraceObserver
from repro.experiments.common import fail_nodes, run_lookups
from repro.experiments.registry import (
    PROTOCOLS,
    build_complete_network,
    build_sized_network,
)
from repro.sim.parallel import run_cells
from repro.util.rng import make_rng

__all__ = ["MaintenancePoint", "run_maintenance_experiment"]


@dataclass(frozen=True)
class MaintenancePoint:
    """Per-protocol maintenance fan-out."""

    protocol: str
    population: int
    updates_per_join: float
    updates_per_leave: float
    mass_departure_updates: int
    mass_departure_events: int
    #: post-departure lookup probe (0 lookups when disabled): how well
    #: the un-stabilised survivor topology still routes.
    probe_lookups: int = 0
    probe_failures: int = 0
    probe_mean_path: float = 0.0

    @property
    def updates_per_departure(self) -> float:
        if self.mass_departure_events == 0:
            return 0.0
        return self.mass_departure_updates / self.mass_departure_events


def _maintenance_cell(
    protocol: str,
    population: int,
    events: int,
    departure_probability: float,
    dimension: int,
    seed: int,
    lookups: int,
    ring_bits: int,
    cycloid_dimension: int,
    observer: Optional[TraceObserver] = None,
) -> MaintenancePoint:
    """One protocol's full maintenance sweep, fully self-seeding.

    Joins, leaves and the mass-departure probe all mutate one network
    in sequence, so the protocol cell is the unit of parallelism.
    Module-level so cell tasks pickle into worker processes.
    """
    network = build_sized_network(
        protocol,
        population,
        seed=seed,
        id_space_bits=ring_bits,
        cycloid_dimension=cycloid_dimension,
    )
    rng = make_rng(seed + 1)

    network.maintenance_updates = 0
    for index in range(events):
        network.join(f"maintenance-{index}")
    per_join = network.maintenance_updates / events

    network.maintenance_updates = 0
    victims = rng.sample(list(network.live_nodes()), events)
    for victim in victims:
        network.leave(victim)
    per_leave = network.maintenance_updates / events

    mass = build_complete_network(protocol, dimension, seed=seed)
    mass.maintenance_updates = 0
    departed = fail_nodes(
        mass, departure_probability, make_rng(seed + 2)
    )
    probe_failures = 0
    probe_mean_path = 0.0
    if lookups > 0:
        stats = run_lookups(
            mass, lookups, seed=seed + 3, observer=observer
        )
        probe_failures = stats.failures
        completed = [r.hops for r in stats.records if r.success]
        probe_mean_path = (
            sum(completed) / len(completed) if completed else 0.0
        )
    return MaintenancePoint(
        protocol=protocol,
        population=population,
        updates_per_join=per_join,
        updates_per_leave=per_leave,
        mass_departure_updates=mass.maintenance_updates,
        mass_departure_events=departed,
        probe_lookups=lookups,
        probe_failures=probe_failures,
        probe_mean_path=probe_mean_path,
    )


def run_maintenance_experiment(
    protocols: Sequence[str] = PROTOCOLS,
    population: int = 1024,
    events: int = 200,
    departure_probability: float = 0.5,
    dimension: int = 8,
    seed: int = 42,
    lookups: int = 0,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
) -> List[MaintenancePoint]:
    """Measure update fan-out per join/leave and under mass departure.

    With ``lookups`` > 0 the mass-departure network additionally serves
    a seeded lookup probe *before any stabilisation*, tying the
    maintenance bill to the routability it actually bought; ``observer``
    streams those probe hops (the ``maint --trace`` path) and forces
    in-process runs.  Protocol cells are independent and self-seeding,
    so they fan out over ``workers`` with bit-identical output.
    """
    cycloid_dimension = 1
    while cycloid_space_size(cycloid_dimension) < population:
        cycloid_dimension += 1
    cycloid_dimension += 1  # head-room for joins
    ring_bits = population.bit_length() + 1

    tasks = [
        partial(
            _maintenance_cell,
            protocol,
            population,
            events,
            departure_probability,
            dimension,
            seed,
            lookups,
            ring_bits,
            cycloid_dimension,
            observer,
        )
        for protocol in protocols
    ]
    return run_cells(tasks, workers=1 if observer is not None else workers)
