"""Parallel-engine benchmark: serial vs sharded fan-out, bit-checked.

The ``bench`` CLI subcommand times one paper-scale lookup cell per
overlay twice — ``workers=1`` (the serial fallback) and ``workers=N``
(the process pool) — over the *identical* shard plan, then compares the
:meth:`~repro.dht.metrics.LookupStats.digest` of both runs.  A speedup
without a digest match would mean the parallel path changed the
science, so the match is the headline column, the speedup only the
payoff.

Results land in ``BENCH_parallel.json`` so CI can archive them; the
reported ``cpus`` field (`available_workers`) qualifies the speedup —
on a single-CPU box the pool pays fork overhead for no gain, and the
digests still match.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Sequence, Tuple

from repro.dht.metrics import LookupStats
from repro.experiments.registry import build_complete_network
from repro.sim.parallel import (
    DEFAULT_SHARD_SIZE,
    available_workers,
    plain_setup,
    run_sharded_lookups,
)
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng

__all__ = [
    "BenchCell",
    "CloneBenchCell",
    "KernelBenchCell",
    "run_parallel_bench",
    "run_clone_bench",
    "run_kernel_bench",
    "bench_report",
    "write_bench_report",
    "compare_to_baseline",
    "validate_net_report",
    "DEFAULT_BENCH_PROTOCOLS",
    "KERNEL_BENCH_PROTOCOLS",
]

DEFAULT_BENCH_PROTOCOLS: Tuple[str, ...] = (
    "cycloid",
    "chord",
    "koorde",
    "viceroy",
)

#: Protocols with a fully-columnar compiled kernel (DESIGN §S23) — the
#: only ones where object-vs-columnar timing measures the kernel rather
#: than the fallback.
KERNEL_BENCH_PROTOCOLS: Tuple[str, ...] = ("cycloid", "chord")


@dataclass(frozen=True)
class BenchCell:
    """Serial-vs-parallel timing of one overlay's lookup cell."""

    protocol: str
    serial_seconds: float
    parallel_seconds: float
    digest: str
    digest_match: bool

    @property
    def speedup(self) -> float:
        if self.parallel_seconds == 0:
            return 0.0
        return self.serial_seconds / self.parallel_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "serial_seconds": self.serial_seconds,
            "parallel_seconds": self.parallel_seconds,
            "speedup": self.speedup,
            "digest": self.digest,
            "digest_match": self.digest_match,
        }


def run_parallel_bench(
    protocols: Sequence[str] = DEFAULT_BENCH_PROTOCOLS,
    dimension: int = 8,
    lookups: int = 2000,
    workers: int = 4,
    shard_size: int = DEFAULT_SHARD_SIZE,
    seed: int = 42,
) -> List[BenchCell]:
    """Time ``workers=1`` vs ``workers=N`` on identical shard plans."""
    if workers < 2:
        raise ValueError("bench needs workers >= 2 to compare against serial")
    cells: List[BenchCell] = []
    for protocol in protocols:
        setup = partial(
            plain_setup, build_complete_network, protocol, dimension, seed=seed
        )
        start = time.perf_counter()
        serial = run_sharded_lookups(
            setup, lookups, seed + dimension, workers=1, shard_size=shard_size
        )
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_sharded_lookups(
            setup,
            lookups,
            seed + dimension,
            workers=workers,
            shard_size=shard_size,
        )
        parallel_seconds = time.perf_counter() - start
        digest = serial.stats.digest()
        cells.append(
            BenchCell(
                protocol=protocol,
                serial_seconds=serial_seconds,
                parallel_seconds=parallel_seconds,
                digest=digest,
                digest_match=digest == parallel.stats.digest(),
            )
        )
    return cells


@dataclass(frozen=True)
class CloneBenchCell:
    """Build-once vs per-shard-rebuild timing of one overlay (§S21).

    ``build_seconds`` is what every shard used to pay (one full join
    protocol); ``restore_seconds``/``clone_seconds`` are what a shard
    pays now (snapshot restore across the pool, in-process clone on the
    serial path).  ``digest_match`` confirms the cheap path changed
    nothing: snapshot-distribution digest == rebuild-distribution
    digest on the same cell.
    """

    protocol: str
    population: int
    snapshot_bytes: int
    build_seconds: float
    snapshot_seconds: float
    restore_seconds: float
    clone_seconds: float
    digest_match: bool

    @property
    def restore_speedup(self) -> float:
        """How much cheaper a snapshot restore is than a rebuild."""
        if self.restore_seconds == 0:
            return 0.0
        return self.build_seconds / self.restore_seconds

    @property
    def clone_speedup(self) -> float:
        if self.clone_seconds == 0:
            return 0.0
        return self.build_seconds / self.clone_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "population": self.population,
            "snapshot_bytes": self.snapshot_bytes,
            "build_seconds": self.build_seconds,
            "snapshot_seconds": self.snapshot_seconds,
            "restore_seconds": self.restore_seconds,
            "clone_seconds": self.clone_seconds,
            "restore_speedup": self.restore_speedup,
            "clone_speedup": self.clone_speedup,
            "digest_match": self.digest_match,
        }


def run_clone_bench(
    protocols: Sequence[str] = DEFAULT_BENCH_PROTOCOLS,
    dimension: int = 8,
    lookups: int = 400,
    shard_size: int = DEFAULT_SHARD_SIZE,
    seed: int = 42,
    repeats: int = 5,
) -> List[CloneBenchCell]:
    """Time one full network build against snapshot restore / clone.

    The build is what the rebuild distribution pays *per shard*; the
    restore/clone is what the snapshot distribution pays instead, so
    ``restore_speedup`` is the per-shard saving of DESIGN §S21.  Every
    timing is the best of ``repeats`` runs.  The digest check runs the
    same small cell through both distributions at ``workers=1`` and
    compares merged digests.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cells: List[CloneBenchCell] = []
    for protocol in protocols:
        setup = partial(
            plain_setup, build_complete_network, protocol, dimension, seed=seed
        )
        def best_of(operation):
            # Minimum over ``repeats`` runs: the low-noise estimator for
            # micro-timings (anything above the minimum is interference).
            best = None
            result = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = operation()
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            return best, result

        build_seconds, (network, _) = best_of(setup)
        snapshot_seconds, snapshot = best_of(network.snapshot)
        restore_seconds, _ = best_of(snapshot.restore)
        clone_seconds, _ = best_of(network.clone)

        via_snapshot = run_sharded_lookups(
            setup,
            lookups,
            seed + dimension,
            workers=1,
            shard_size=shard_size,
            distribution="snapshot",
        )
        via_rebuild = run_sharded_lookups(
            setup,
            lookups,
            seed + dimension,
            workers=1,
            shard_size=shard_size,
            distribution="rebuild",
        )
        cells.append(
            CloneBenchCell(
                protocol=protocol,
                population=network.size,
                snapshot_bytes=len(snapshot.payload),
                build_seconds=build_seconds,
                snapshot_seconds=snapshot_seconds,
                restore_seconds=restore_seconds,
                clone_seconds=clone_seconds,
                digest_match=(
                    via_snapshot.stats.digest() == via_rebuild.stats.digest()
                ),
            )
        )
    return cells


@dataclass(frozen=True)
class KernelBenchCell:
    """Object-vs-columnar timing of one overlay's lookup batch (§S23).

    Both backends route the *identical* materialised workload on the
    same network; ``digest_match`` confirms the kernel changed nothing
    before the speedup means anything.  Timings are best-of-``repeats``
    (the low-noise estimator for micro-timings).
    """

    protocol: str
    lookups: int
    object_seconds: float
    columnar_seconds: float
    digest: str
    digest_match: bool

    @property
    def object_lookups_per_s(self) -> float:
        if self.object_seconds == 0:
            return 0.0
        return self.lookups / self.object_seconds

    @property
    def columnar_lookups_per_s(self) -> float:
        if self.columnar_seconds == 0:
            return 0.0
        return self.lookups / self.columnar_seconds

    @property
    def speedup(self) -> float:
        if self.columnar_seconds == 0:
            return 0.0
        return self.object_seconds / self.columnar_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "lookups": self.lookups,
            "object_seconds": self.object_seconds,
            "columnar_seconds": self.columnar_seconds,
            "object_lookups_per_s": self.object_lookups_per_s,
            "columnar_lookups_per_s": self.columnar_lookups_per_s,
            "speedup": self.speedup,
            "digest": self.digest,
            "digest_match": self.digest_match,
        }


def run_kernel_bench(
    protocols: Sequence[str] = KERNEL_BENCH_PROTOCOLS,
    dimension: int = 8,
    lookups: int = 2000,
    seed: int = 42,
    repeats: int = 5,
) -> List[KernelBenchCell]:
    """Time the object engine against the columnar kernel, digest-checked.

    One complete network per protocol, one materialised ``(source,
    key)`` workload, ``repeats`` timed runs per backend (best kept).
    The digests of the two record streams must match bit for bit — a
    fast kernel that drifts is a bug, not a speedup.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cells: List[KernelBenchCell] = []
    for protocol in protocols:
        network = build_complete_network(protocol, dimension, seed=seed)
        pairs = list(
            lookup_workload(network, lookups, make_rng(seed + dimension))
        )

        def best_of(backend: str):
            best = None
            records = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = network.lookup_many(pairs, backend=backend)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
                    records = result
            return best, records

        object_seconds, object_records = best_of("object")
        columnar_seconds, columnar_records = best_of("columnar")

        def digest_of(records) -> str:
            stats = LookupStats()
            stats.extend(records)
            return stats.digest()

        object_digest = digest_of(object_records)
        cells.append(
            KernelBenchCell(
                protocol=protocol,
                lookups=lookups,
                object_seconds=object_seconds,
                columnar_seconds=columnar_seconds,
                digest=object_digest,
                digest_match=object_digest == digest_of(columnar_records),
            )
        )
    return cells


def bench_report(
    cells: Sequence[BenchCell],
    dimension: int,
    lookups: int,
    workers: int,
    shard_size: int,
    seed: int,
    clone_cells: Sequence[CloneBenchCell] = (),
    kernel_cells: Sequence[KernelBenchCell] = (),
) -> Dict[str, object]:
    """The JSON document ``bench`` writes to ``BENCH_parallel.json``.

    ``all_match`` covers every digest comparison in the report: the
    serial-vs-parallel cells, the snapshot-vs-rebuild clone cells *and*
    the object-vs-columnar kernel cells.
    """
    return {
        "config": {
            "dimension": dimension,
            "lookups": lookups,
            "workers": workers,
            "shard_size": shard_size,
            "seed": seed,
            "cpus": available_workers(),
        },
        "cells": [cell.as_dict() for cell in cells],
        "build_vs_clone": [cell.as_dict() for cell in clone_cells],
        "kernel": [cell.as_dict() for cell in kernel_cells],
        "all_match": all(cell.digest_match for cell in cells)
        and all(cell.digest_match for cell in clone_cells)
        and all(cell.digest_match for cell in kernel_cells),
    }


def compare_to_baseline(
    report: Dict[str, object],
    baseline: object,
    threshold: float = 0.2,
) -> List[str]:
    """Describe this report's kernel throughput against a committed one.

    Returns one line per kernel cell that also exists in ``baseline``
    (the previously committed ``BENCH_parallel.json``), so the bench
    surfaces drift instead of silently overwriting the file.  A cell
    whose columnar lookups/sec fell more than ``threshold`` below the
    baseline gets a ``warning:`` prefix.
    """
    lines: List[str] = []
    if not isinstance(baseline, dict):
        return lines
    committed = {
        cell.get("protocol"): cell
        for cell in baseline.get("kernel", ())
        if isinstance(cell, dict)
    }
    for cell in report.get("kernel", ()):
        base = committed.get(cell["protocol"])
        if base is None:
            continue
        new_rate = float(cell.get("columnar_lookups_per_s") or 0.0)
        old_rate = float(base.get("columnar_lookups_per_s") or 0.0)
        if old_rate <= 0.0:
            continue
        ratio = new_rate / old_rate
        line = (
            f"kernel {cell['protocol']}: columnar {new_rate:,.0f} "
            f"lookups/s vs committed {old_rate:,.0f} ({ratio:.2f}x)"
        )
        if ratio < 1.0 - threshold:
            line = (
                f"warning: {line} — regression exceeds "
                f"{threshold:.0%} of the committed baseline"
            )
        lines.append(line)
    return lines


def write_bench_report(path: str, report: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


#: ``BENCH_net.json`` required shape: top-level keys and the nested
#: keys of each aggregate section.  Guarded so CI archives can be
#: machine-compared across commits without schema drift.
_NET_REPORT_KEYS = (
    "schema",
    "mode",
    "build",
    "clients",
    "seed",
    "ops",
    "latency_ms",
    "throughput_ops_per_s",
    "digest",
)
_NET_OPS_KEYS = ("total", "completed", "lookups", "puts", "gets", "failures")
_NET_LATENCY_KEYS = ("mean", "p50", "p95", "p99", "max")
_NET_DIGEST_KEYS = ("live", "expected", "match")
#: Extra required shape of the ``"open-churn"`` mode (``repro
#: churnstorm``): the digest section is replaced by the open/closed
#: loop split and the churn ledger with its survival verdict.
_NET_CHURN_REPORT_KEYS = (
    "schema",
    "mode",
    "build",
    "clients",
    "seed",
    "ops",
    "latency_ms",
    "throughput_ops_per_s",
    "open_loop",
    "closed_loop",
    "churn",
)
_NET_CHURN_KEYS = (
    "plan",
    "events",
    "crashes",
    "joins",
    "acked_writes",
    "acked_keys",
    "lost_acked_keys",
    "survival_rate",
    "under_replication_ms",
)


def validate_net_report(report: Dict[str, object]) -> None:
    """Schema-guard a ``BENCH_net.json`` loadgen report.

    Two report modes share the schema tag, and every report must name
    its ``"mode"`` explicitly: a ``"closed-loop"`` parity report must
    carry a consistent engine-parity ``digest``; an ``"open-churn"`` report
    (``repro churnstorm``) instead carries the open/closed loop split
    plus a ``churn`` section whose ``survival_rate`` must agree with
    its lost-key count.  Raises ``ValueError`` naming the first
    violation.
    """
    from repro.net.loadgen import NET_BENCH_SCHEMA

    if not isinstance(report, dict):
        raise ValueError("net report must be a JSON object")
    if report.get("schema") != NET_BENCH_SCHEMA:
        raise ValueError(
            f"net report schema is {report.get('schema')!r}, "
            f"expected {NET_BENCH_SCHEMA!r}"
        )
    # ``mode`` is required: a very-early SIGINT once produced a partial
    # report without it, which this validator silently took for a
    # closed-loop run — never default a discriminator.
    if "mode" not in report:
        raise ValueError("net report is missing 'mode'")
    mode = report["mode"]
    if mode not in ("closed-loop", "open-churn"):
        raise ValueError(f"net report mode {mode!r} is unknown")
    if mode == "open-churn":
        _validate_churn_report(report)
        return
    for key in _NET_REPORT_KEYS:
        if key not in report:
            raise ValueError(f"net report is missing {key!r}")
    for section, keys in (
        ("ops", _NET_OPS_KEYS),
        ("latency_ms", _NET_LATENCY_KEYS),
        ("digest", _NET_DIGEST_KEYS),
    ):
        block = report[section]
        if not isinstance(block, dict):
            raise ValueError(f"net report {section!r} must be an object")
        for key in keys:
            if key not in block:
                raise ValueError(
                    f"net report {section!r} is missing {key!r}"
                )
    digest = report["digest"]
    for side in ("live", "expected"):
        value = digest[side]
        if not (isinstance(value, str) and len(value) == 64):
            raise ValueError(
                f"net report digest.{side} is not a sha256 hex digest"
            )
    ops = report["ops"]
    expected_match = (
        ops["completed"] == ops["total"]
        and digest["live"] == digest["expected"]
    )
    if bool(digest["match"]) != expected_match:
        raise ValueError(
            "net report digest.match is inconsistent with the digests"
        )


def _validate_churn_report(report: Dict[str, object]) -> None:
    for key in _NET_CHURN_REPORT_KEYS:
        if key not in report:
            raise ValueError(f"churn report is missing {key!r}")
    for section, keys in (
        ("ops", _NET_OPS_KEYS),
        ("latency_ms", _NET_LATENCY_KEYS),
        ("churn", _NET_CHURN_KEYS),
    ):
        block = report[section]
        if not isinstance(block, dict):
            raise ValueError(f"churn report {section!r} must be an object")
        for key in keys:
            if key not in block:
                raise ValueError(
                    f"churn report {section!r} is missing {key!r}"
                )
    churn = report["churn"]
    survival = churn["survival_rate"]
    if not isinstance(survival, (int, float)) or not 0.0 <= survival <= 1.0:
        raise ValueError(
            "churn report survival_rate must be a number in [0, 1]"
        )
    lost = churn["lost_acked_keys"]
    if (survival == 1.0) != (lost == 0):
        raise ValueError(
            "churn report survival_rate is inconsistent with "
            "lost_acked_keys"
        )
    window = churn["under_replication_ms"]
    if not isinstance(window, dict) or not {"mean", "max"} <= set(window):
        raise ValueError(
            "churn report under_replication_ms needs 'mean' and 'max'"
        )
