"""Parallel-engine benchmark: serial vs sharded fan-out, bit-checked.

The ``bench`` CLI subcommand times one paper-scale lookup cell per
overlay twice — ``workers=1`` (the serial fallback) and ``workers=N``
(the process pool) — over the *identical* shard plan, then compares the
:meth:`~repro.dht.metrics.LookupStats.digest` of both runs.  A speedup
without a digest match would mean the parallel path changed the
science, so the match is the headline column, the speedup only the
payoff.

Results land in ``BENCH_parallel.json`` so CI can archive them; the
reported ``cpus`` field (`available_workers`) qualifies the speedup —
on a single-CPU box the pool pays fork overhead for no gain, and the
digests still match.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Sequence, Tuple

from repro.experiments.registry import build_complete_network
from repro.sim.parallel import (
    DEFAULT_SHARD_SIZE,
    available_workers,
    plain_setup,
    run_sharded_lookups,
)

__all__ = [
    "BenchCell",
    "run_parallel_bench",
    "bench_report",
    "write_bench_report",
    "DEFAULT_BENCH_PROTOCOLS",
]

DEFAULT_BENCH_PROTOCOLS: Tuple[str, ...] = (
    "cycloid",
    "chord",
    "koorde",
    "viceroy",
)


@dataclass(frozen=True)
class BenchCell:
    """Serial-vs-parallel timing of one overlay's lookup cell."""

    protocol: str
    serial_seconds: float
    parallel_seconds: float
    digest: str
    digest_match: bool

    @property
    def speedup(self) -> float:
        if self.parallel_seconds == 0:
            return 0.0
        return self.serial_seconds / self.parallel_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "serial_seconds": self.serial_seconds,
            "parallel_seconds": self.parallel_seconds,
            "speedup": self.speedup,
            "digest": self.digest,
            "digest_match": self.digest_match,
        }


def run_parallel_bench(
    protocols: Sequence[str] = DEFAULT_BENCH_PROTOCOLS,
    dimension: int = 8,
    lookups: int = 2000,
    workers: int = 4,
    shard_size: int = DEFAULT_SHARD_SIZE,
    seed: int = 42,
) -> List[BenchCell]:
    """Time ``workers=1`` vs ``workers=N`` on identical shard plans."""
    if workers < 2:
        raise ValueError("bench needs workers >= 2 to compare against serial")
    cells: List[BenchCell] = []
    for protocol in protocols:
        setup = partial(
            plain_setup, build_complete_network, protocol, dimension, seed=seed
        )
        start = time.perf_counter()
        serial = run_sharded_lookups(
            setup, lookups, seed + dimension, workers=1, shard_size=shard_size
        )
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_sharded_lookups(
            setup,
            lookups,
            seed + dimension,
            workers=workers,
            shard_size=shard_size,
        )
        parallel_seconds = time.perf_counter() - start
        digest = serial.stats.digest()
        cells.append(
            BenchCell(
                protocol=protocol,
                serial_seconds=serial_seconds,
                parallel_seconds=parallel_seconds,
                digest=digest,
                digest_match=digest == parallel.stats.digest(),
            )
        )
    return cells


def bench_report(
    cells: Sequence[BenchCell],
    dimension: int,
    lookups: int,
    workers: int,
    shard_size: int,
    seed: int,
) -> Dict[str, object]:
    """The JSON document ``bench`` writes to ``BENCH_parallel.json``."""
    return {
        "config": {
            "dimension": dimension,
            "lookups": lookups,
            "workers": workers,
            "shard_size": shard_size,
            "seed": seed,
            "cpus": available_workers(),
        },
        "cells": [cell.as_dict() for cell in cells],
        "all_match": all(cell.digest_match for cell in cells),
    }


def write_bench_report(path: str, report: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
