"""E3/E10 — per-phase path-length breakdowns (Figs 7 and 14).

Fig. 7 splits each DHT's lookup cost by routing phase on the complete
networks of Fig. 5: Cycloid and Viceroy into ascending / descending /
traverse, Koorde into de Bruijn vs successor hops.  Fig. 14 repeats the
Koorde split as the ID space grows sparse.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dht.identifiers import cycloid_space_size
from repro.dht.routing import TraceObserver
from repro.experiments.registry import build_complete_network, build_sized_network
from repro.sim.parallel import plain_setup, run_sharded_lookups

__all__ = [
    "BreakdownPoint",
    "run_phase_breakdown_experiment",
    "run_koorde_sparsity_breakdown",
]

BREAKDOWN_PROTOCOLS: Tuple[str, ...] = ("cycloid", "viceroy", "koorde")


@dataclass(frozen=True)
class BreakdownPoint:
    """Mean hops per phase for one (protocol, network)."""

    protocol: str
    dimension: int
    size: int
    mean_hops_by_phase: Dict[str, float]
    fraction_by_phase: Dict[str, float]

    @property
    def total_mean_hops(self) -> float:
        return sum(self.mean_hops_by_phase.values())


def run_phase_breakdown_experiment(
    dimensions: Sequence[int] = (3, 4, 5, 6, 7, 8),
    protocols: Sequence[str] = BREAKDOWN_PROTOCOLS,
    lookups: int = 5000,
    seed: int = 42,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
    backend: str = "object",
) -> List[BreakdownPoint]:
    """Fig. 7(a)-(c): phase breakdown on complete networks."""
    points: List[BreakdownPoint] = []
    for dimension in dimensions:
        for protocol in protocols:
            stats = run_sharded_lookups(
                partial(
                    plain_setup,
                    build_complete_network,
                    protocol,
                    dimension,
                    seed=seed,
                ),
                lookups,
                seed + dimension,
                workers=workers,
                distribution=distribution,
                observer=observer,
                backend=backend,
            ).stats
            breakdown = stats.phase_breakdown()
            points.append(
                BreakdownPoint(
                    protocol=protocol,
                    dimension=dimension,
                    size=cycloid_space_size(dimension),
                    mean_hops_by_phase={
                        phase: breakdown.mean_hops(phase)
                        for phase in breakdown.phases()
                    },
                    fraction_by_phase=breakdown.fractions(),
                )
            )
    return points


def run_koorde_sparsity_breakdown(
    sparsities: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    id_space: int = 2048,
    lookups: int = 5000,
    seed: int = 42,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
    backend: str = "object",
) -> List[BreakdownPoint]:
    """Fig. 14: Koorde's de Bruijn vs successor hop split vs sparsity.

    ``sparsity`` is the fraction of the 2048-id space left unoccupied.
    """
    bits = (id_space - 1).bit_length()
    if (1 << bits) != id_space:
        raise ValueError("id_space must be a power of two")
    points: List[BreakdownPoint] = []
    for sparsity in sparsities:
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        count = max(2, round(id_space * (1.0 - sparsity)))
        stats = run_sharded_lookups(
            partial(
                plain_setup,
                build_sized_network,
                "koorde",
                count,
                seed=seed,
                id_space_bits=bits,
            ),
            lookups,
            seed + count,
            workers=workers,
            distribution=distribution,
            observer=observer,
            backend=backend,
        ).stats
        breakdown = stats.phase_breakdown()
        points.append(
            BreakdownPoint(
                protocol="koorde",
                dimension=bits,
                size=count,
                mean_hops_by_phase={
                    phase: breakdown.mean_hops(phase)
                    for phase in breakdown.phases()
                },
                fraction_by_phase=breakdown.fractions(),
            )
        )
    return points
