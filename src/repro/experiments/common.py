"""Shared experiment plumbing."""

from __future__ import annotations

import random
from functools import partial
from typing import Callable, Optional, Sequence

from repro.dht.base import Network
from repro.dht.kernel import DEFAULT_BACKEND, check_backend
from repro.dht.metrics import LookupStats
from repro.dht.routing import TraceObserver
from repro.sim.faults import FaultInjector
from repro.sim.latency import LatencyModel
from repro.sim.parallel import DEFAULT_SHARD_SIZE, plan_shards
from repro.sim.workload import lookup_workload
from repro.util.rng import shard_rng

__all__ = ["run_lookups", "fail_nodes"]


def run_lookups(
    network: Network,
    count: int,
    seed: Optional[int] = None,
    keys: Sequence[object] = (),
    observer: Optional[TraceObserver] = None,
    injector: Optional[FaultInjector] = None,
    retry_budget: int = 0,
    rng_factory: Optional[Callable[[int], random.Random]] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    backend: str = DEFAULT_BACKEND,
    latency: Optional[LatencyModel] = None,
) -> LookupStats:
    """Execute ``count`` random lookups on ``network`` and gather records.

    The paper's Fig. 5 issues n/4 lookups from every node (~1M at
    d = 8); the mean path length is an expectation over uniform random
    (source, key) pairs, so a seeded sample estimates it — pass a larger
    ``count`` to tighten the estimate (see DESIGN.md §4).

    The workload is executed in deterministic shards (DESIGN.md §S20):
    shard ``k`` covers a contiguous slice of the global lookup indices
    and draws from ``rng_factory(k)``.  The default factory derives
    independent streams from ``(seed, k)`` via
    :func:`repro.util.rng.shard_rng`, which makes the record sequence
    identical to a :func:`repro.sim.parallel.run_sharded_lookups` run
    of the same cell whenever routing carries no state between lookups
    (always true without an active injector).  Pass ``rng_factory``
    directly to control the streams; exactly one of ``seed`` /
    ``rng_factory`` is required — silent default seeds already bit us
    in ``fail_nodes``, so there is no unseeded fallback anywhere.

    All shards run in-process against the given ``network`` instance;
    ``observer`` (e.g. a :class:`~repro.dht.routing.JsonlTraceSink`)
    receives every per-hop trace event.  ``injector``/``retry_budget``
    switch the engine into fault mode (see :mod:`repro.sim.faults`);
    each shard draws message-loss verdicts from the injector's
    per-shard stream (:meth:`~repro.sim.faults.FaultInjector.for_shard`).
    ``backend`` selects the lookup execution strategy (``"object"`` or
    the bit-identical vectorized ``"columnar"`` kernel, DESIGN §S23).
    ``latency`` attaches a :class:`~repro.sim.latency.LatencyModel` so
    every record carries its modeled end-to-end milliseconds (§S25).
    """
    check_backend(backend)
    if rng_factory is not None and seed is not None:
        raise TypeError("pass either seed or rng_factory, not both")
    if rng_factory is None:
        if seed is None:
            raise TypeError(
                "run_lookups() requires an explicit seed=... or "
                "rng_factory=... so the experiment is reproducible by "
                "construction"
            )
        rng_factory = partial(shard_rng, seed)
    stats = LookupStats()
    for spec in plan_shards(count, shard_size):
        shard_injector = (
            injector.for_shard(spec.index) if injector is not None else None
        )
        stats.extend(
            network.lookup_many(
                lookup_workload(
                    network,
                    spec.count,
                    rng_factory(spec.index),
                    keys,
                    start=spec.offset,
                ),
                observer=observer,
                injector=shard_injector,
                retry_budget=retry_budget,
                backend=backend,
                latency=(
                    latency.for_shard(spec.index)
                    if latency is not None
                    else None
                ),
            )
        )
        if shard_injector is not None:
            injector.dropped += shard_injector.dropped
    return stats


def fail_nodes(
    network: Network, probability: float, rng: random.Random
) -> int:
    """Gracefully depart each node independently with ``probability``.

    The §4.3 massive-failure injection: departures are graceful (each
    leaver notifies its relatives) and no stabilisation runs afterwards.
    At least one node is always left alive.  Returns the departure count.

    ``rng`` is mandatory — seed it via :func:`repro.util.rng.make_rng`
    so every failure experiment is reproducible by construction.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    if rng is None:
        raise TypeError(
            "fail_nodes requires an explicit rng; pass make_rng(seed)"
        )
    victims = [node for node in network.live_nodes() if rng.random() < probability]
    departed = 0
    for node in victims:
        if network.size <= 1:
            break
        network.leave(node)
        departed += 1
    return departed
