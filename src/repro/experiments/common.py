"""Shared experiment plumbing."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.dht.base import Network
from repro.dht.metrics import LookupStats
from repro.dht.routing import TraceObserver
from repro.sim.faults import FaultInjector
from repro.sim.workload import lookup_workload
from repro.util.rng import make_rng

__all__ = ["run_lookups", "fail_nodes"]


def run_lookups(
    network: Network,
    count: int,
    seed: int = 0,
    keys: Sequence[object] = (),
    observer: Optional[TraceObserver] = None,
    injector: Optional[FaultInjector] = None,
    retry_budget: int = 0,
) -> LookupStats:
    """Execute ``count`` random lookups and gather their records.

    The paper's Fig. 5 issues n/4 lookups from every node (~1M at
    d = 8); the mean path length is an expectation over uniform random
    (source, key) pairs, so a seeded sample estimates it — pass a larger
    ``count`` to tighten the estimate (see DESIGN.md §4).

    The whole workload goes through one batched
    :meth:`~repro.dht.base.Network.lookup_many` call; ``observer``
    (e.g. a :class:`~repro.dht.routing.JsonlTraceSink`) receives every
    per-hop trace event.  ``injector``/``retry_budget`` switch the
    engine into fault mode (see :mod:`repro.sim.faults`).
    """
    rng = make_rng(seed)
    stats = LookupStats()
    stats.extend(
        network.lookup_many(
            lookup_workload(network, count, rng, keys),
            observer=observer,
            injector=injector,
            retry_budget=retry_budget,
        )
    )
    return stats


def fail_nodes(
    network: Network, probability: float, rng: random.Random
) -> int:
    """Gracefully depart each node independently with ``probability``.

    The §4.3 massive-failure injection: departures are graceful (each
    leaver notifies its relatives) and no stabilisation runs afterwards.
    At least one node is always left alive.  Returns the departure count.

    ``rng`` is mandatory — seed it via :func:`repro.util.rng.make_rng`
    so every failure experiment is reproducible by construction.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    if rng is None:
        raise TypeError(
            "fail_nodes requires an explicit rng; pass make_rng(seed)"
        )
    victims = [node for node in network.live_nodes() if rng.random() < probability]
    departed = 0
    for node in victims:
        if network.size <= 1:
            break
        network.leave(node)
        departed += 1
    return departed
