"""Experiment harness — one module per table/figure of the paper's §4.

Every experiment is a plain function returning typed result rows, so
the benchmarks, examples and tests all share one implementation.  See
DESIGN.md §3 for the experiment index (E1-E11) and the shape targets.
"""

from repro.experiments.registry import (
    CYCLOID_11,
    PROTOCOLS,
    build_complete_network,
    build_sized_network,
    protocol_label,
)
from repro.experiments.common import run_lookups
from repro.experiments.path_length import (
    PathLengthPoint,
    run_path_length_experiment,
)
from repro.experiments.breakdown import (
    BreakdownPoint,
    run_phase_breakdown_experiment,
    run_koorde_sparsity_breakdown,
)
from repro.experiments.key_distribution import (
    KeyDistributionPoint,
    run_key_distribution_experiment,
)
from repro.experiments.query_load import (
    QueryLoadPoint,
    run_query_load_experiment,
)
from repro.experiments.failures import (
    FailurePoint,
    run_mass_departure_experiment,
)
from repro.experiments.churn import ChurnPoint, run_churn_experiment
from repro.experiments.crash import CrashPoint, run_crash_experiment
from repro.experiments.sparsity import (
    SparsityPoint,
    run_sparsity_experiment,
)
from repro.experiments.properties import (
    ArchitectureRow,
    architecture_table,
)
from repro.experiments.maintenance import (
    MaintenancePoint,
    run_maintenance_experiment,
)
from repro.experiments.fig_latency import (
    LatencyPoint,
    latency_report,
    run_latency_experiment,
    validate_latency_report,
)
from repro.experiments.adversary import (
    AdversaryPoint,
    HotspotPoint,
    adversary_report,
    run_adversary_experiment,
    validate_adversary_report,
)
from repro.experiments.scale import (
    ScalePoint,
    run_scale_experiment,
    scale_parity,
    scale_report,
    validate_scale_report,
)
from repro.experiments.bench import (
    BenchCell,
    KernelBenchCell,
    bench_report,
    compare_to_baseline,
    run_clone_bench,
    run_kernel_bench,
    run_parallel_bench,
    validate_net_report,
    write_bench_report,
)

__all__ = [
    "PROTOCOLS",
    "CYCLOID_11",
    "build_complete_network",
    "build_sized_network",
    "protocol_label",
    "run_lookups",
    "PathLengthPoint",
    "run_path_length_experiment",
    "BreakdownPoint",
    "run_phase_breakdown_experiment",
    "run_koorde_sparsity_breakdown",
    "KeyDistributionPoint",
    "run_key_distribution_experiment",
    "QueryLoadPoint",
    "run_query_load_experiment",
    "FailurePoint",
    "run_mass_departure_experiment",
    "ChurnPoint",
    "run_churn_experiment",
    "CrashPoint",
    "run_crash_experiment",
    "SparsityPoint",
    "run_sparsity_experiment",
    "ArchitectureRow",
    "architecture_table",
    "MaintenancePoint",
    "run_maintenance_experiment",
    "LatencyPoint",
    "run_latency_experiment",
    "latency_report",
    "validate_latency_report",
    "AdversaryPoint",
    "HotspotPoint",
    "run_adversary_experiment",
    "adversary_report",
    "validate_adversary_report",
    "ScalePoint",
    "run_scale_experiment",
    "scale_parity",
    "scale_report",
    "validate_scale_report",
    "BenchCell",
    "KernelBenchCell",
    "run_parallel_bench",
    "run_clone_bench",
    "run_kernel_bench",
    "bench_report",
    "compare_to_baseline",
    "write_bench_report",
    "validate_net_report",
]
