"""E4/E5 — key-distribution balance (Figs 8-9).

Networks with a 2048-identifier space hold 2000 nodes (dense, Fig. 8)
or 1000 nodes (sparse, Fig. 9); corpora of 10^4..10^5 keys are hashed
onto each DHT and the per-node key counts summarised as mean and
1st/99th percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Sequence, Tuple

from repro.dht.base import Network
from repro.experiments.registry import build_sized_network
from repro.sim.parallel import run_cells
from repro.sim.workload import uniform_key_corpus
from repro.util.stats import DistributionSummary, summarize

__all__ = ["KeyDistributionPoint", "run_key_distribution_experiment"]

DEFAULT_KEY_COUNTS: Tuple[int, ...] = tuple(range(10_000, 100_001, 10_000))
DEFAULT_PROTOCOLS: Tuple[str, ...] = ("cycloid", "viceroy", "chord", "koorde")


@dataclass(frozen=True)
class KeyDistributionPoint:
    """Keys-per-node distribution for one (protocol, corpus size)."""

    protocol: str
    nodes: int
    keys: int
    summary: DistributionSummary

    @property
    def imbalance(self) -> float:
        """99th-to-1st percentile span relative to the mean."""
        if self.summary.mean == 0:
            return 0.0
        return self.summary.spread / self.summary.mean


def _key_distribution_cell(
    protocol: str,
    node_count: int,
    key_counts: Tuple[int, ...],
    bits: int,
    cycloid_dimension: int,
    seed: int,
) -> List[KeyDistributionPoint]:
    """One protocol's full corpus sweep, fully self-seeding.

    The cell regenerates its corpus from the seed (cheaper than
    pickling up to 10^5 keys into a worker) and reuses one network
    across corpus sizes, exactly like the serial sweep.  Module-level
    so cell tasks pickle into worker processes.
    """
    corpus = uniform_key_corpus(max(key_counts), seed)
    network = build_sized_network(
        protocol,
        node_count,
        seed=seed,
        id_space_bits=bits,
        cycloid_dimension=cycloid_dimension,
    )
    return [
        KeyDistributionPoint(
            protocol=protocol,
            nodes=node_count,
            keys=count,
            summary=summarize(_key_counts(network, corpus[:count])),
        )
        for count in key_counts
    ]


def run_key_distribution_experiment(
    node_count: int = 2000,
    key_counts: Sequence[int] = DEFAULT_KEY_COUNTS,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    id_space: int = 2048,
    seed: int = 42,
    workers: int = 1,
) -> List[KeyDistributionPoint]:
    """Figs 8 (node_count=2000) and 9 (node_count=1000).

    The same corpus prefix is reused across corpus sizes, matching the
    paper's "varied the total number of keys ... in increments".
    Protocol cells are independent and self-seeding, so they fan out
    over ``workers`` processes with bit-identical, protocol-major
    ordered output.
    """
    bits = (id_space - 1).bit_length()
    if (1 << bits) != id_space:
        raise ValueError("id_space must be a power of two")
    cycloid_dimension = _cycloid_dimension_for(id_space)
    tasks = [
        partial(
            _key_distribution_cell,
            protocol,
            node_count,
            tuple(key_counts),
            bits,
            cycloid_dimension,
            seed,
        )
        for protocol in protocols
    ]
    return [
        point for cell in run_cells(tasks, workers=workers) for point in cell
    ]


def _key_counts(network: Network, keys: Sequence[object]) -> List[float]:
    return [float(c) for c in network.assign_keys(keys).values()]


def _cycloid_dimension_for(id_space: int) -> int:
    """Dimension d with d * 2^d == id_space (8 for the paper's 2048)."""
    dimension = 1
    while dimension * (1 << dimension) < id_space:
        dimension += 1
    if dimension * (1 << dimension) != id_space:
        raise ValueError(
            f"id_space {id_space} is not of the form d * 2^d"
        )
    return dimension
