"""E13 (extension) — crash resilience: graceful vs ungraceful failure.

The paper's §4.3 failure experiment (Fig. 11/Table 4) departs nodes
*gracefully*: each leaver notifies its relatives, so survivors' routing
tables stay consistent and a lookup only times out on entries that
stabilisation has not yet refreshed.  Real failures are rarely that
polite.  This experiment crashes the same fraction of nodes
*ungracefully* through :class:`repro.sim.faults.FaultInjector` — no
notification, every pointer at the victim goes stale — optionally adds
seeded message loss, and measures how far the engine's fault-mode
machinery (reachability probes, ranked fallbacks, bounded retries and
:meth:`~repro.dht.base.Network.on_dead_entry` lazy repair) claws back
the lookup success rate.

Three modes per (protocol, probability) point:

``graceful``
    §4.3 baseline — ``fail_nodes`` (polite ``leave``), fault-free
    engine.
``crash``
    Ungraceful crashes + message loss, retry budget 0: the engine
    detects dead hops but cannot route around them.
``crash+retry``
    The same crash set (same fault seed), retry budget > 0: probes,
    fallbacks and lazy repair enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.dht.identifiers import cycloid_space_size
from repro.dht.routing import TraceObserver
from repro.experiments.failures import departed_setup
from repro.experiments.registry import ALL_PROTOCOLS, build_complete_network
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.parallel import run_sharded_lookups
from repro.util.stats import DistributionSummary

__all__ = [
    "CrashPoint",
    "run_crash_experiment",
    "MODE_GRACEFUL",
    "MODE_CRASH",
    "MODE_CRASH_RETRY",
]

DEFAULT_PROBABILITIES: Tuple[float, ...] = (0.1, 0.3, 0.5)

MODE_GRACEFUL = "graceful"
MODE_CRASH = "crash"
MODE_CRASH_RETRY = "crash+retry"
MODES = (MODE_GRACEFUL, MODE_CRASH, MODE_CRASH_RETRY)


def crashed_setup(protocol: str, dimension: int, seed: int, plan: FaultPlan):
    """Shard setup: a complete network after the plan's ungraceful
    crashes, plus the armed injector.

    Module-level so shard tasks pickle; the crash stream is derived
    from the plan seed alone, so every shard (in any process) kills the
    identical node set — :func:`repro.sim.parallel.merge_shards`
    asserts as much.  The engine's per-shard message-loss streams are
    derived later via :meth:`~repro.sim.faults.FaultInjector.for_shard`.
    """
    network = build_complete_network(protocol, dimension, seed=seed)
    injector = FaultInjector(plan)
    injector.crash_nodes(network)
    network.route_repairs = 0
    return network, injector


@dataclass(frozen=True)
class CrashPoint:
    """One (protocol, failure probability, mode) measurement."""

    protocol: str
    probability: float
    mode: str
    survivors: int
    departed: int
    success_rate: float
    mean_path_length: float
    timeout_summary: DistributionSummary
    retries: int
    route_repairs: int
    lookups: int

    def timeout_row(self) -> str:
        """Table-4 style ``mean (p1, p99)`` cell."""
        return self.timeout_summary.as_row()

    @property
    def mean_retries(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.retries / self.lookups


def run_crash_experiment(
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
    protocols: Sequence[str] = ALL_PROTOCOLS,
    dimension: int = 8,
    lookups: int = 2000,
    seed: int = 42,
    message_loss: float = 0.05,
    retry_budget: int = 8,
    observer: Optional[TraceObserver] = None,
    workers: int = 1,
    distribution: str = "snapshot",
    backend: str = "object",
) -> List[CrashPoint]:
    """Sweep graceful/crash/crash+retry over every overlay.

    Each mode rebuilds the network from the same seed; the two crash
    modes share one :class:`FaultPlan` seed so they kill the *same*
    node set and drop messages from the same streams — the only
    difference between them is the retry budget.  The path-length mean
    is taken over completed lookups, matching Fig. 11's convention.

    Every (protocol, probability, mode) cell runs as deterministic
    shards; because lazy route repair mutates routing tables, each
    shard routes on its own freshly crashed network, so the sweep is
    bit-identical at any ``workers`` (the parallel-parity suite pins
    this with an enabled plan).
    """
    if retry_budget < 1:
        raise ValueError("retry_budget must be >= 1 for the retry mode")
    points: List[CrashPoint] = []
    size = cycloid_space_size(dimension)
    for protocol in protocols:
        for probability in probabilities:
            fault_seed = seed + int(probability * 100)
            for mode in MODES:
                if mode == MODE_GRACEFUL:
                    setup = partial(
                        departed_setup,
                        protocol,
                        dimension,
                        seed,
                        probability,
                        fault_seed,
                    )
                    budget = 0
                else:
                    plan = FaultPlan(
                        seed=fault_seed,
                        crash_probability=probability,
                        message_loss=message_loss,
                    )
                    setup = partial(
                        crashed_setup, protocol, dimension, seed, plan
                    )
                    budget = retry_budget if mode == MODE_CRASH_RETRY else 0
                merged = run_sharded_lookups(
                    setup,
                    lookups,
                    seed + 1,
                    workers=workers,
                    distribution=distribution,
                    retry_budget=budget,
                    observer=observer,
                    backend=backend,
                )
                stats = merged.stats
                departed = (
                    merged.crashed
                    if mode != MODE_GRACEFUL
                    else size - merged.population
                )
                completed = [r.hops for r in stats.records if r.success]
                mean_path = (
                    sum(completed) / len(completed) if completed else 0.0
                )
                points.append(
                    CrashPoint(
                        protocol=protocol,
                        probability=probability,
                        mode=mode,
                        survivors=merged.population,
                        departed=departed,
                        success_rate=(
                            (len(stats) - stats.failures) / len(stats)
                            if len(stats)
                            else 0.0
                        ),
                        mean_path_length=mean_path,
                        timeout_summary=stats.timeout_summary(),
                        retries=stats.total_retries,
                        route_repairs=merged.route_repairs,
                        lookups=len(stats),
                    )
                )
    return points
