"""fig-scale — million-node overlays, built direct-to-columns (§S26).

The paper evaluates Cycloid at thousands of nodes; the ROADMAP's north
star is its figures at n = 10^6.  PR 6 made *lookups* columnar; this
experiment removes the remaining wall — construction — by building each
cell with :mod:`repro.dht.bulkbuild` (packed columns straight from the
seeded id sample, no per-node Python objects) and routing on it with
the array-mode kernel entry points (``run_linear`` / ``run_ids``).

Each cell reports build throughput, peak column bytes, kernel lookup
throughput and mean hops against ``log2 n``.  The parity section keeps
the experiment honest twice over:

* **digest parity** — at ``parity_count`` the bulk build must be
  byte-identical (sha256 over the canonical packed pickle) to the
  object builder's network;
* **extrapolated speedup** — the object builder is timed over a ladder
  of growing populations, a log-log least-squares line is fitted
  (its cost is super-linear: sorted-row inserts grow with the row), and
  the bulk build at the target count is compared against the fitted
  object-build time at that count.  The §S26 acceptance bar is a
  ``speedup >= 50``.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

try:  # numpy backs both the bulk builder and the kernel
    import numpy as np
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None  # type: ignore[assignment]

from repro.dht.bulkbuild import build_columns, packed_digest
from repro.dht.kernel import kernel_from_columns

__all__ = [
    "SCALE_BENCH_SCHEMA",
    "SCALE_COUNTS",
    "SCALE_PROTOCOLS",
    "SPEEDUP_BAR",
    "ScalePoint",
    "run_scale_cell",
    "run_scale_experiment",
    "object_build_ladder",
    "fit_power_law",
    "scale_parity",
    "scale_report",
    "validate_scale_report",
]

#: Schema tag of the ``BENCH_scale.json`` report.
SCALE_BENCH_SCHEMA = "repro/scale-bench/v1"

#: Default population sweep: 10^4 .. 10^6.
SCALE_COUNTS = (10_000, 100_000, 1_000_000)

#: Protocols with bulk builders.
SCALE_PROTOCOLS = ("cycloid", "chord")

#: The §S26 acceptance bar: bulk build vs extrapolated object build.
SPEEDUP_BAR = 50.0

#: Lookup batch rows per kernel wave — bounds the kernel's
#: ``[batch, count]`` visited matrix to ~0.5 GB at n = 10^6.
DEFAULT_BATCH_ROWS = 512


@dataclass(frozen=True)
class ScalePoint:
    """One (protocol, population) build + kernel-lookup measurement."""

    protocol: str
    count: int
    sizing: int  # Cycloid dimension / Chord ring bits
    space: int
    sampler: str
    build_seconds: float
    build_nodes_per_sec: float
    column_bytes: int
    compile_seconds: float
    lookups: int
    lookup_seconds: float
    lookups_per_sec: float
    mean_hops: float
    log2_count: float
    success_rate: float
    timeouts: int
    #: sha256 over the lookup result arrays — the determinism pin.
    digest: str


def _cell_digest(hops, final, success) -> str:
    """sha256 over the canonical lookup result arrays."""
    payload = hashlib.sha256()
    payload.update(np.ascontiguousarray(hops, dtype=np.int64).tobytes())
    payload.update(np.ascontiguousarray(final, dtype=np.int64).tobytes())
    payload.update(
        np.ascontiguousarray(success, dtype=np.int8).tobytes()
    )
    return payload.hexdigest()


def run_scale_cell(
    protocol: str,
    count: int,
    lookups: int,
    seed: int,
    sampler: str = "fast",
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> ScalePoint:
    """Bulk-build one overlay and run a kernel lookup batch on it.

    The workload is seeded per (protocol, count): sources are node
    indices, keys raw identifiers of the id space, both from one PCG64
    stream — so every field of the returned point, digest included, is
    a pure function of the arguments.
    """
    if np is None:  # pragma: no cover - numpy is baked into CI
        raise RuntimeError("the scale experiment requires numpy")
    t0 = time.perf_counter()
    columns = build_columns(protocol, count, seed=seed, sampler=sampler)
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    kernel = kernel_from_columns(columns)
    compile_seconds = time.perf_counter() - t0

    rng = np.random.default_rng(
        np.random.PCG64(
            np.random.SeedSequence(
                [seed, count, SCALE_PROTOCOLS.index(protocol)]
            )
        )
    )
    sources = rng.integers(0, count, size=lookups)
    keys = rng.integers(0, columns.space, size=lookups)
    runner = (
        kernel.run_linear if protocol == "cycloid" else kernel.run_ids
    )

    hops_parts = []
    final_parts = []
    success_parts = []
    timeouts = 0
    t0 = time.perf_counter()
    for start in range(0, lookups, batch_rows):
        stop = min(start + batch_rows, lookups)
        result = runner(sources[start:stop], keys[start:stop])
        hops_parts.append(result["hops"])
        final_parts.append(result["final"])
        success_parts.append(result["success"])
        timeouts += int(result["timeouts"].sum())
    lookup_seconds = time.perf_counter() - t0

    hops = np.concatenate(hops_parts)
    final = np.concatenate(final_parts)
    success = np.concatenate(success_parts)
    sizing = (
        columns.dimension if protocol == "cycloid" else columns.bits
    )
    return ScalePoint(
        protocol=protocol,
        count=count,
        sizing=int(sizing),
        space=int(columns.space),
        sampler=sampler,
        build_seconds=build_seconds,
        build_nodes_per_sec=count / build_seconds,
        column_bytes=columns.column_bytes(),
        compile_seconds=compile_seconds,
        lookups=lookups,
        lookup_seconds=lookup_seconds,
        lookups_per_sec=lookups / lookup_seconds,
        mean_hops=float(hops.mean()),
        log2_count=math.log2(count),
        success_rate=float(success.mean()),
        timeouts=timeouts,
        digest=_cell_digest(hops, final, success),
    )


def run_scale_experiment(
    counts: Sequence[int] = SCALE_COUNTS,
    protocols: Sequence[str] = SCALE_PROTOCOLS,
    lookups: int = 2048,
    seed: int = 11,
    sampler: str = "fast",
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> List[ScalePoint]:
    """The full sweep: every protocol at every population."""
    points: List[ScalePoint] = []
    for protocol in protocols:
        for count in counts:
            points.append(
                run_scale_cell(
                    protocol,
                    count,
                    lookups,
                    seed,
                    sampler=sampler,
                    batch_rows=batch_rows,
                )
            )
    return points


# ----------------------------------------------------------------------
# object-build ladder, extrapolation, digest parity
# ----------------------------------------------------------------------


def object_build_ladder(
    counts: Sequence[int],
    seed: int,
) -> List[Dict[str, object]]:
    """Time the *object* Cycloid builder over a population ladder.

    Each rung uses the same sizing rule as the bulk cells
    (``dimension_for_space``), so rung rates extrapolate to the bulk
    target apples-to-apples.
    """
    from repro.core.network import CycloidNetwork
    from repro.experiments.registry import dimension_for_space

    cells: List[Dict[str, object]] = []
    for count in counts:
        dimension = dimension_for_space(count)
        t0 = time.perf_counter()
        CycloidNetwork.with_random_ids(count, dimension, seed=seed)
        seconds = time.perf_counter() - t0
        cells.append(
            {
                "count": int(count),
                "dimension": dimension,
                "seconds": seconds,
                "nodes_per_sec": count / seconds,
            }
        )
    return cells


def fit_power_law(ladder: Sequence[Dict[str, object]]):
    """Least-squares ``t = a * n^b`` over ladder rungs, in log-log.

    Returns ``(exponent, extrapolate)`` where ``extrapolate(count)``
    evaluates the fitted build time.  The object builder's measured
    exponent grows with n (sorted-row inserts are linear in the row),
    so this fit *understates* the true cost beyond the ladder — the
    reported speedup is conservative.
    """
    if len(ladder) < 2:
        raise ValueError("power-law fit needs at least two ladder rungs")
    log_n = np.log([cell["count"] for cell in ladder])
    log_t = np.log([cell["seconds"] for cell in ladder])
    exponent, intercept = np.polyfit(log_n, log_t, 1)

    def extrapolate(count: int) -> float:
        return float(math.exp(intercept + exponent * math.log(count)))

    return float(exponent), extrapolate


def scale_parity(
    points: Sequence[ScalePoint],
    parity_count: int = 4096,
    seed: int = 11,
    ladder_counts: Sequence[int] = (4096, 16384, 65536),
    target_protocol: str = "cycloid",
) -> Dict[str, object]:
    """The honesty section of the scale report.

    Pins bulk-vs-object digest equality at ``parity_count`` and
    computes the extrapolated object-build speedup at the sweep's
    largest ``target_protocol`` cell.
    """
    from repro.core.network import CycloidNetwork
    from repro.dht.snapshot import pack_network
    from repro.experiments.registry import dimension_for_space

    dimension = dimension_for_space(parity_count)
    object_net = CycloidNetwork.with_random_ids(
        parity_count, dimension, seed=seed
    )
    object_digest = packed_digest(pack_network(object_net))
    bulk_digest = packed_digest(
        build_columns(
            "cycloid",
            parity_count,
            dimension=dimension,
            seed=seed,
            sampler="exact",
        ).to_packed()
    )

    ladder = object_build_ladder(ladder_counts, seed)
    exponent, extrapolate = fit_power_law(ladder)
    targets = [p for p in points if p.protocol == target_protocol]
    if not targets:
        raise ValueError(
            f"no {target_protocol!r} cell to compare the ladder against"
        )
    target = max(targets, key=lambda p: p.count)
    extrapolated = extrapolate(target.count)
    speedup = extrapolated / target.build_seconds
    return {
        "parity_count": parity_count,
        "dimension": dimension,
        "seed": seed,
        "object_digest": object_digest,
        "bulk_digest": bulk_digest,
        "digest_match": object_digest == bulk_digest,
        "ladder": ladder,
        "fit_exponent": exponent,
        "target_protocol": target_protocol,
        "target_count": target.count,
        "bulk_build_seconds": target.build_seconds,
        "extrapolated_object_seconds": extrapolated,
        "speedup": speedup,
        "speedup_ok": speedup >= SPEEDUP_BAR,
    }


# ----------------------------------------------------------------------
# report + schema guard
# ----------------------------------------------------------------------


def scale_report(
    points: Sequence[ScalePoint],
    parity: Dict[str, object],
    lookups: int,
    seed: int,
    sampler: str,
) -> Dict[str, object]:
    """The ``BENCH_scale.json`` document for one experiment run."""
    return {
        "schema": SCALE_BENCH_SCHEMA,
        "lookups": lookups,
        "seed": seed,
        "sampler": sampler,
        "speedup_bar": SPEEDUP_BAR,
        "cells": [
            {
                "protocol": p.protocol,
                "count": p.count,
                "sizing": p.sizing,
                "space": p.space,
                "sampler": p.sampler,
                "build_seconds": p.build_seconds,
                "build_nodes_per_sec": p.build_nodes_per_sec,
                "column_bytes": p.column_bytes,
                "compile_seconds": p.compile_seconds,
                "lookups": p.lookups,
                "lookup_seconds": p.lookup_seconds,
                "lookups_per_sec": p.lookups_per_sec,
                "mean_hops": p.mean_hops,
                "log2_count": p.log2_count,
                "success_rate": p.success_rate,
                "timeouts": p.timeouts,
                "digest": p.digest,
            }
            for p in points
        ],
        "parity": parity,
    }


_SCALE_REPORT_KEYS = (
    "schema",
    "lookups",
    "seed",
    "sampler",
    "speedup_bar",
    "cells",
    "parity",
)
_SCALE_CELL_KEYS = (
    "protocol",
    "count",
    "sizing",
    "space",
    "sampler",
    "build_seconds",
    "build_nodes_per_sec",
    "column_bytes",
    "compile_seconds",
    "lookups",
    "lookup_seconds",
    "lookups_per_sec",
    "mean_hops",
    "log2_count",
    "success_rate",
    "timeouts",
    "digest",
)
_SCALE_PARITY_KEYS = (
    "parity_count",
    "dimension",
    "seed",
    "object_digest",
    "bulk_digest",
    "digest_match",
    "ladder",
    "fit_exponent",
    "target_protocol",
    "target_count",
    "bulk_build_seconds",
    "extrapolated_object_seconds",
    "speedup",
    "speedup_ok",
)


def _sha256_hex(value) -> bool:
    return isinstance(value, str) and len(value) == 64


def validate_scale_report(report: Dict[str, object]) -> None:
    """Schema-guard a ``BENCH_scale.json`` document.

    Raises ``ValueError`` naming the first violation: missing keys,
    malformed cells, non-sha256 digests, or parity fields that do not
    re-derive from each other (digest match, speedup arithmetic and the
    acceptance flag).
    """
    if not isinstance(report, dict):
        raise ValueError("scale report must be a JSON object")
    if report.get("schema") != SCALE_BENCH_SCHEMA:
        raise ValueError(
            f"scale report schema is {report.get('schema')!r}, "
            f"expected {SCALE_BENCH_SCHEMA!r}"
        )
    for key in _SCALE_REPORT_KEYS:
        if key not in report:
            raise ValueError(f"scale report is missing {key!r}")
    cells = report["cells"]
    if not isinstance(cells, list) or not cells:
        raise ValueError("scale report has no cells")
    for cell in cells:
        if not isinstance(cell, dict):
            raise ValueError("scale report cells must be objects")
        for key in _SCALE_CELL_KEYS:
            if key not in cell:
                raise ValueError(
                    f"scale cell {cell.get('protocol')!r}/"
                    f"{cell.get('count')!r} is missing {key!r}"
                )
        if not _sha256_hex(cell["digest"]):
            raise ValueError(
                f"scale cell {cell['protocol']!r}/{cell['count']} digest "
                "is not a sha256 hex digest"
            )
        if not 0.0 <= float(cell["success_rate"]) <= 1.0:
            raise ValueError(
                f"scale cell {cell['protocol']!r}/{cell['count']} "
                "success_rate is outside [0, 1]"
            )
        if not math.isclose(
            float(cell["log2_count"]), math.log2(int(cell["count"]))
        ):
            raise ValueError(
                f"scale cell {cell['protocol']!r}/{cell['count']} "
                "log2_count is inconsistent with count"
            )
    parity = report["parity"]
    if not isinstance(parity, dict):
        raise ValueError("scale report parity section must be an object")
    for key in _SCALE_PARITY_KEYS:
        if key not in parity:
            raise ValueError(
                f"scale report parity section is missing {key!r}"
            )
    for key in ("object_digest", "bulk_digest"):
        if not _sha256_hex(parity[key]):
            raise ValueError(
                f"scale parity {key} is not a sha256 hex digest"
            )
    match = parity["object_digest"] == parity["bulk_digest"]
    if bool(parity["digest_match"]) != match:
        raise ValueError(
            "scale parity digest_match is inconsistent with the digests"
        )
    ladder = parity["ladder"]
    if not isinstance(ladder, list) or len(ladder) < 2:
        raise ValueError("scale parity ladder needs at least two rungs")
    for rung in ladder:
        for key in ("count", "dimension", "seconds", "nodes_per_sec"):
            if key not in rung:
                raise ValueError(
                    f"scale parity ladder rung is missing {key!r}"
                )
    speedup = float(parity["extrapolated_object_seconds"]) / float(
        parity["bulk_build_seconds"]
    )
    if not math.isclose(float(parity["speedup"]), speedup, rel_tol=1e-9):
        raise ValueError(
            "scale parity speedup is inconsistent with its terms"
        )
    if bool(parity["speedup_ok"]) != (speedup >= float(report["speedup_bar"])):
        raise ValueError(
            "scale parity speedup_ok is inconsistent with the speedup"
        )
