"""Live cluster serving layer (DESIGN S22).

Turns any built :class:`~repro.dht.base.Network` into a running cluster
of asyncio node servers on loopback:

* :mod:`repro.net.codec` — the versioned, length-prefixed wire protocol
  (JOIN/LOOKUP/PUT/GET/PING/LEAVE frames, size limits, malformed-frame
  rejection);
* :mod:`repro.net.server` — :class:`NodeService`, one asyncio server
  hosting a partition of the overlay's virtual nodes and routing
  lookups recursively hop-by-hop via the overlay's ``next_hop`` step
  functions;
* :mod:`repro.net.client` — :class:`ClusterClient` with timeouts and
  budgeted exponential-backoff retries
  (:class:`repro.sim.faults.RetryPolicy`);
* :mod:`repro.net.cluster` — :class:`LocalCluster`, the bootstrap /
  shutdown harness behind ``repro serve``;
* :mod:`repro.net.loadgen` — the closed-loop load generator behind
  ``repro loadgen`` (throughput, latency percentiles, digest-checked
  ``BENCH_net.json``).
"""

from repro.net.client import ClusterClient, ClusterError, RpcConnection
from repro.net.cluster import LocalCluster
from repro.net.codec import (
    FrameError,
    MessageType,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
)
from repro.net.loadgen import run_loadgen
from repro.net.server import NodeService, ServiceError

__all__ = [
    "ClusterClient",
    "ClusterError",
    "FrameError",
    "LocalCluster",
    "MessageType",
    "NodeService",
    "PROTOCOL_VERSION",
    "RpcConnection",
    "ServiceError",
    "decode_frame",
    "encode_frame",
    "run_loadgen",
]
