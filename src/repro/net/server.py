"""Asyncio node servers: the overlay hosted behind real sockets (S22).

A :class:`NodeService` is one asyncio TCP server hosting a partition of
an overlay's *virtual nodes*.  Lookups are routed **recursively
hop-by-hop**: the service steps the overlay's pure
:func:`~repro.dht.routing.step_route` decision at each hosted node and,
the moment a hop targets a node hosted elsewhere, forwards the whole
lookup continuation — key, hop/timeout counters, path, per-hop trace
and the overlay's packed routing state
(:meth:`~repro.dht.base.Network.pack_route_state`) — to the peer server
in a ``STEP`` frame and awaits its reply, which then propagates back
along the chain of awaiting servers to the origin.  Because every step
runs the exact decision functions of the in-memory
:class:`~repro.dht.routing.LookupEngine` (same hop accounting, same
``HOP_LIMIT``, same ``finish_route`` delivery hop, same query-load
visit recording), a live lookup's hop path is bit-exact against the
engine's trace for the same ``(source, key)`` — the parity suite pins
it.

Malformed, oversized or otherwise contract-violating frames are
rejected without crashing: the offending connection gets one ``ERROR``
frame (rpc id 0 — framing is lost, so the id is unknowable) and is
closed; every other connection keeps being served.

PUT/GET frames route exactly like lookups and then hit the terminal
node's :class:`~repro.dht.storage.StorageShard`; JOIN/LEAVE mutate the
hosted node set through the overlay's own join/leave protocols and keep
the shared cluster directory current.

The churn-tolerant data plane (S24) layers three mechanisms on top:

* **leaf-set replication** — with ``replicas = r`` every PUT is stored
  on the key's whole replica set (:func:`repro.dht.storage.replica_set`,
  the same definition the in-memory ``KeyValueStore`` uses), pushed to
  remote holders over ``REPLICATE`` frames;
* **read-repair** — a GET that finds the routed-to node missing the
  key probes the replica set over ``FETCH`` frames and, on a hit,
  restores the primary copy (and any other missing holder) before
  answering;
* **active rereplication** — ``CRASH`` (ungraceful kill, via
  :meth:`Network.fail`) and ``LEAVE``/``JOIN`` membership changes
  trigger a cluster-wide ``REPAIR`` fan-out: every server rescans its
  shard and re-pushes pairs whose replica set changed, so the replica
  invariant is restored before the membership RPC even replies — the
  *under-replication window* the churn bench reports is exactly this
  repair's duration.  ``CRASH`` additionally heals routing state by
  running every surviving node's :meth:`Network.on_dead_entry` lazy
  repair against the dead node.

``ERROR`` replies always carry a machine-readable ``code``
(:data:`repro.net.codec.ERROR_CODES`) next to the human-readable
``error`` text.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dht.base import Network, Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.latency import LatencyModel
from repro.dht.routing import step_route
from repro.dht.storage import StorageShard, replica_set
from repro.net.client import RpcConnection
from repro.net.codec import (
    Frame,
    FrameError,
    MAX_PAYLOAD,
    MessageType,
    PROTOCOL_VERSION,
    write_frame,
)

__all__ = ["ServiceError", "NodeService"]

Address = Tuple[str, int]

#: Request types a client may open an operation with.
_OP_TYPES = {
    MessageType.LOOKUP: "lookup",
    MessageType.PUT: "put",
    MessageType.GET: "get",
}

#: Operation names a STEP continuation may carry.
_KNOWN_OPS = frozenset(_OP_TYPES.values())


class ServiceError(RuntimeError):
    """A request was well-framed but unserviceable; sent back as ERROR.

    ``code`` is the machine-readable classification from
    :data:`repro.net.codec.ERROR_CODES` that rides in the ``ERROR``
    payload next to the message.
    """

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


class NodeService:
    """One asyncio server hosting ``hosted`` virtual nodes of ``network``.

    ``directory`` (node name -> ``[host, port]``) is assigned by the
    cluster harness once every service has bound its port; services on
    one :class:`~repro.net.cluster.LocalCluster` share the *same* dict
    object, so JOINs through any server become routable everywhere
    immediately.
    """

    def __init__(
        self,
        network: Network,
        hosted: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload: int = MAX_PAYLOAD,
        timeout: float = 10.0,
        replicas: int = 1,
        latency: Optional["LatencyModel"] = None,
    ) -> None:
        if not hosted:
            raise ValueError("a NodeService must host at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.network = network
        #: the seeded link-delay model (§S25); with one attached every
        #: hop sleeps its modeled one-way delay and the reply carries
        #: ``model_ms`` per hop and in total, so the wall clock the
        #: loadgen measures tracks the distribution the sim predicts.
        self.latency = latency
        self.hosted: List[str] = [str(name) for name in hosted]
        self._hosted_set: Set[str] = set(self.hosted)
        self._bind_host = host
        self._bind_port = port
        self.max_payload = max_payload
        self.timeout = timeout
        self.replicas = replicas
        self.directory: Dict[str, Sequence[object]] = {}
        self.storage = StorageShard()
        #: requests answered (REPLY or ERROR), for PING telemetry.
        self.rpcs_served = 0
        #: frames rejected for wire-contract violations.
        self.frames_rejected = 0
        #: replica copies pushed by this server (PUT + repair + leave).
        self.replica_pushes = 0
        #: GETs answered from a replica after the primary lost the key.
        self.read_repairs = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._address: Optional[Address] = None
        self._peers: Dict[Address, RpcConnection] = {}
        self._peer_lock = asyncio.Lock()
        self._client_writers: Set[asyncio.StreamWriter] = set()
        self._handler_tasks: Set[asyncio.Task] = set()
        self._names: Dict[str, Node] = {}
        self._step_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Address:
        if self._address is None:
            raise RuntimeError("service is not started")
        return self._address

    async def start(self) -> "NodeService":
        self._server = await asyncio.start_server(
            self._serve_connection, self._bind_host, self._bind_port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self

    async def stop(self) -> None:
        """Close the listener, all live connections and peer links."""
        if self._server is not None:
            self._server.close()
        for task in list(self._handler_tasks):
            task.cancel()
        for writer in list(self._client_writers):
            writer.close()
        for task in list(self._handler_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._handler_tasks.clear()
        peers, self._peers = self._peers, {}
        for peer in peers.values():
            await peer.close()
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass
            self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._client_writers.add(writer)
        send_lock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await _read(reader, self.max_payload)
                except FrameError as exc:
                    # The stream is unsynchronised: answer once (rpc id
                    # 0 — the real id is unrecoverable) and close this
                    # connection only.  The server keeps serving.
                    self.frames_rejected += 1
                    await self._send_safely(
                        writer,
                        send_lock,
                        MessageType.ERROR,
                        0,
                        {
                            "error": f"rejected frame: {exc.reason}",
                            "code": "bad_frame",
                        },
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    break
                task = asyncio.create_task(
                    self._handle_frame(frame, writer, send_lock)
                )
                self._handler_tasks.add(task)
                task.add_done_callback(self._handler_tasks.discard)
        finally:
            self._client_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_safely(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        kind: MessageType,
        rpc: int,
        payload: Dict[str, object],
    ) -> None:
        try:
            async with lock:
                write_frame(writer, kind, rpc, payload, self.max_payload)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer went away; nothing left to tell it

    async def _handle_frame(
        self,
        frame: Frame,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        try:
            if frame.kind in _OP_TYPES:
                payload = await self._start_operation(
                    _OP_TYPES[frame.kind], frame.payload
                )
            elif frame.kind == MessageType.STEP:
                payload = await self._continue_operation(frame.payload)
            elif frame.kind == MessageType.PING:
                payload = self._handle_ping()
            elif frame.kind == MessageType.JOIN:
                payload = await self._handle_join(frame.payload)
            elif frame.kind == MessageType.LEAVE:
                payload = await self._handle_leave(frame.payload)
            elif frame.kind == MessageType.CRASH:
                payload = await self._handle_crash(frame.payload)
            elif frame.kind == MessageType.REPLICATE:
                payload = self._handle_replicate(frame.payload)
            elif frame.kind == MessageType.FETCH:
                payload = self._handle_fetch(frame.payload)
            elif frame.kind == MessageType.REPAIR:
                payload = await self._handle_repair(frame.payload)
            else:
                raise ServiceError(
                    f"unexpected {frame.kind.name} frame on a server"
                )
            kind = MessageType.REPLY
        except ServiceError as exc:
            kind, payload = (
                MessageType.ERROR,
                {"error": str(exc), "code": exc.code},
            )
        except Exception as exc:  # never let one request kill the server
            kind, payload = (
                MessageType.ERROR,
                {"error": f"internal error: {exc!r}", "code": "internal"},
            )
        self.rpcs_served += 1
        await self._send_safely(writer, lock, kind, frame.rpc, payload)

    # ------------------------------------------------------------------
    # node resolution
    # ------------------------------------------------------------------

    def _resolve(self, name: str) -> Node:
        node = self._names.get(name)
        if node is None or not node.alive:
            # Stale or unseen (membership changed via another service
            # on the same network): refresh the index once.
            self._names = {
                str(live.name): live for live in self.network.live_nodes()
            }
            node = self._names.get(name)
        if node is None or not node.alive:
            raise ServiceError(
                f"unknown or dead node {name!r}", code="unknown_node"
            )
        return node

    def _is_local(self, name: str) -> bool:
        return name in self._hosted_set

    # ------------------------------------------------------------------
    # the recursive lookup driver
    # ------------------------------------------------------------------

    async def _start_operation(
        self, op: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        key = payload.get("key")
        if not isinstance(key, str):
            raise ServiceError("operation requires a string 'key'")
        source_name = str(payload.get("source") or self.hosted[0])
        if not self._is_local(source_name):
            raise ServiceError(
                f"node {source_name!r} is not hosted by this server",
                code="not_hosted",
            )
        source = self._resolve(source_name)
        network = self.network
        network.fault_detection = False
        key_id = network.key_id(key)
        state = network.begin_route(source, key_id)
        continuation: Dict[str, object] = {
            "op": op,
            "key": key,
            "value": payload.get("value"),
            "lookup": payload.get("lookup"),
            "current": source_name,
            "stage": "route",
            "failed": False,
            "hops": 0,
            "timeouts": 0,
            "path": [str(source.name)],
            "phases": dict.fromkeys(network.ROUTING_PHASES, 0),
            "trace": [],
            "model_ms": 0.0,
        }
        return await self._drive(continuation, source, key_id, state)

    async def _continue_operation(
        self, continuation: Dict[str, object]
    ) -> Dict[str, object]:
        """A forwarded hop landed here: the sender already charged the
        hop (count, phase, path, trace); this server records the visit
        at its node and carries on per the continuation's stage."""
        network = self.network
        network.fault_detection = False
        op = continuation.get("op")
        if op not in _KNOWN_OPS:
            # Coded reply instead of the KeyError traceback a malformed
            # continuation would otherwise hit further down.
            raise ServiceError(
                f"STEP continuation names unknown operation {op!r} "
                f"(known: {', '.join(sorted(_KNOWN_OPS))})",
                code="unknown_operation",
            )
        if not isinstance(continuation.get("key"), str):
            raise ServiceError(
                "STEP continuation requires a string 'key'",
                code="bad_request",
            )
        hops = continuation.get("hops")
        if isinstance(hops, int) and hops > network.HOP_LIMIT:
            raise ServiceError(
                f"STEP continuation claims {hops} hops, above the "
                f"{network.HOP_LIMIT}-hop limit",
                code="hop_limit",
            )
        current_name = str(continuation["current"])
        if not self._is_local(current_name):
            raise ServiceError(
                f"misrouted step: {current_name!r} is not hosted here",
                code="misrouted",
            )
        current = self._resolve(current_name)
        key_id = network.key_id(continuation["key"])
        state = network.unpack_route_state(continuation.get("state"), key_id)
        network._record_visit(current)
        return await self._drive(continuation, current, key_id, state)

    async def _drive(
        self,
        continuation: Dict[str, object],
        current: Node,
        key_id: object,
        state: object,
    ) -> Dict[str, object]:
        """Run the engine-equivalent driver loop from ``current`` until
        the lookup terminates locally or hops to another server."""
        network = self.network
        limit = network.HOP_LIMIT
        hops = int(continuation["hops"])
        timeouts = int(continuation["timeouts"])
        phases: Dict[str, int] = continuation["phases"]
        path: List[str] = continuation["path"]
        trace: List[Dict[str, object]] = continuation["trace"]
        failed = bool(continuation["failed"])
        latency = self.latency
        total_ms = float(continuation.get("model_ms", 0.0))

        if continuation["stage"] == "route":
            while hops < limit:
                decision, advance_timeouts = step_route(
                    network, current, key_id, state
                )
                timeouts += advance_timeouts + decision.timeouts
                node = decision.node
                if node is None:
                    failed = decision.failed
                    break
                hops += 1
                phases[decision.phase] = phases.get(decision.phase, 0) + 1
                name = str(node.name)
                path.append(name)
                event: Dict[str, object] = {
                    "hop": hops,
                    "node": name,
                    "phase": decision.phase,
                    "timeouts": decision.timeouts,
                }
                if latency is not None:
                    hop_ms = latency.delay_ms(str(current.name), name)
                    total_ms += hop_ms
                    event["model_ms"] = hop_ms
                    continuation["model_ms"] = total_ms
                    if hop_ms > 0.0:
                        await asyncio.sleep(hop_ms / 1000.0)
                trace.append(event)
                if not self._is_local(name):
                    continuation.update(
                        current=name,
                        stage="finish" if decision.terminal else "route",
                        failed=failed,
                        hops=hops,
                        timeouts=timeouts,
                        state=network.pack_route_state(state),
                    )
                    return await self._forward(name, continuation)
                network._record_visit(node)
                current = node
                if decision.terminal:
                    break
            continuation["stage"] = "finish"

        if continuation["stage"] == "finish":
            # The walk has stopped at ``current``; a protocol may owe
            # one final delivery hop (Cycloid's best-observed handoff),
            # exactly as the engine runs it — including after a
            # HOP_LIMIT exhaustion.
            final = network.finish_route(current, key_id, state)
            if final is not None and final.node is not None:
                timeouts += final.timeouts
                node = final.node
                hops += 1
                phases[final.phase] = phases.get(final.phase, 0) + 1
                name = str(node.name)
                path.append(name)
                event = {
                    "hop": hops,
                    "node": name,
                    "phase": final.phase,
                    "timeouts": final.timeouts,
                }
                if latency is not None:
                    hop_ms = latency.delay_ms(str(current.name), name)
                    total_ms += hop_ms
                    event["model_ms"] = hop_ms
                    continuation["model_ms"] = total_ms
                    if hop_ms > 0.0:
                        await asyncio.sleep(hop_ms / 1000.0)
                trace.append(event)
                if not self._is_local(name):
                    continuation.update(
                        current=name,
                        stage="final",
                        failed=failed,
                        hops=hops,
                        timeouts=timeouts,
                        state=network.pack_route_state(state),
                    )
                    return await self._forward(name, continuation)
                network._record_visit(node)
                current = node

        return await self._finalize(
            continuation, current, key_id, hops, timeouts, failed
        )

    async def _peer_request(
        self,
        address: Address,
        kind: MessageType,
        payload: Dict[str, object],
        context: str,
    ) -> Dict[str, object]:
        """One server-to-server RPC over the (cached) peer connection.

        Transport failures surface as retryable ``step_failed`` service
        errors — mid-churn the peer may have just crashed, and the
        caller's retry lands after lazy repair rerouted around it.  A
        peer ``ERROR`` reply is re-raised under the peer's own code.
        """
        # Concurrent handlers must not race one address: the loser's
        # connection (and its reader task) would leak.
        async with self._peer_lock:
            peer = self._peers.get(address)
            if peer is None or not peer.connected:
                peer = RpcConnection(*address, self.max_payload)
                await peer.connect()
                self._peers[address] = peer
        try:
            reply = await peer.request(kind, payload, self.timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise ServiceError(
                f"{kind.name.lower()} to {address[0]}:{address[1]} "
                f"({context}) failed: {exc}",
                code="step_failed",
            ) from exc
        if reply.kind == MessageType.ERROR:
            raise ServiceError(
                str(reply.payload.get("error", "peer error")),
                code=str(reply.payload.get("code", "internal")),
            )
        return reply.payload

    def _address_of(self, name: str) -> Address:
        entry = self.directory.get(name)
        if entry is None:
            raise ServiceError(
                f"no server in the directory hosts {name!r}",
                code="unknown_node",
            )
        return (str(entry[0]), int(entry[1]))

    async def _forward(
        self, name: str, continuation: Dict[str, object]
    ) -> Dict[str, object]:
        """Hand the continuation to the server hosting ``name`` and
        relay its final reply back down the chain."""
        return await self._peer_request(
            self._address_of(name), MessageType.STEP, continuation, name
        )

    # ------------------------------------------------------------------
    # the replicated data plane (S24)
    # ------------------------------------------------------------------

    def _holder_names(self, key: str) -> List[str]:
        """The key's current replica set, as node names."""
        return [
            str(node.name)
            for node in replica_set(self.network, key, self.replicas)
        ]

    async def _store_at(self, name: str, key: str, value: object) -> bool:
        """Store one pair on ``name``'s shelf, wherever it is hosted.

        Returns ``True`` when this created a **new** copy (the pair was
        not already there), ``False`` when it merely overwrote one.
        """
        if self._is_local(name):
            existed, _ = self.storage.get(name, key)
            self.storage.put(name, key, value)
            return not existed
        reply = await self._peer_request(
            self._address_of(name),
            MessageType.REPLICATE,
            {"node": name, "key": key, "value": value},
            name,
        )
        return not bool(reply.get("existed"))

    async def _fetch_at(self, name: str, key: str) -> Tuple[bool, object]:
        """Read one pair from ``name``'s shelf, wherever it is hosted."""
        if self._is_local(name):
            return self.storage.get(name, key)
        reply = await self._peer_request(
            self._address_of(name),
            MessageType.FETCH,
            {"node": name, "key": key},
            name,
        )
        return bool(reply.get("found")), reply.get("value")

    async def _replicate_pair(
        self, primary: str, key: str, value: object
    ) -> int:
        """Push ``key`` to its replica set beyond ``primary``.

        Holders that die between computing the set and pushing are
        tolerated (the set is recomputed once); the pair is acked as
        long as the primary copy exists.  Returns copies pushed.
        """
        if self.replicas == 1:
            return 0
        pushed = 0
        for attempt in range(2):
            failed = False
            for holder in self._holder_names(key):
                if holder == primary:
                    continue
                try:
                    if await self._store_at(holder, key, value):
                        pushed += 1
                except ServiceError:
                    failed = True
            if not failed:
                break
        self.replica_pushes += pushed
        return pushed

    async def _finalize(
        self,
        continuation: Dict[str, object],
        current: Node,
        key_id: object,
        hops: int,
        timeouts: int,
        failed: bool,
    ) -> Dict[str, object]:
        network = self.network
        owner = network.cached_owner_of_id(key_id)
        current_name = str(current.name)
        success = (not failed) and current_name == str(owner.name)
        result: Dict[str, object] = {
            "op": continuation["op"],
            "key": continuation["key"],
            "lookup": continuation["lookup"],
            "owner": current_name,
            "hops": hops,
            "timeouts": timeouts,
            "success": success,
            "failed": failed,
            "path": continuation["path"],
            "phases": continuation["phases"],
            "trace": continuation["trace"],
        }
        if self.latency is not None:
            result["model_ms"] = float(continuation.get("model_ms", 0.0))
        key = continuation["key"]
        if continuation["op"] == "put":
            self.storage.put(current_name, key, continuation["value"])
            result["stored"] = True
            result["replicas"] = 1 + await self._replicate_pair(
                current_name, key, continuation["value"]
            )
        elif continuation["op"] == "get":
            found, value = self.storage.get(current_name, key)
            if not found and self.replicas > 1:
                found, value = await self._read_repair(current_name, key)
                result["repaired"] = found
            result["found"] = found
            result["value"] = value
        return result

    async def _read_repair(
        self, primary: str, key: str
    ) -> Tuple[bool, object]:
        """The routed-to node lost ``key``: probe the replica set and,
        on a hit, restore the primary copy (plus any other holder the
        probe found missing) before answering."""
        for holder in self._holder_names(key):
            if holder == primary:
                continue
            try:
                found, value = await self._fetch_at(holder, key)
            except ServiceError:
                continue  # that holder just died; try the next one
            if found:
                self.read_repairs += 1
                self.storage.put(primary, key, value)
                await self._replicate_pair(primary, key, value)
                return True, value
        return False, None

    # ------------------------------------------------------------------
    # membership + health
    # ------------------------------------------------------------------

    def _handle_ping(self) -> Dict[str, object]:
        return {
            "pong": True,
            "version": PROTOCOL_VERSION,
            "hosted": len(self.hosted),
            "network_size": self.network.size,
            "stored_pairs": self.storage.total_pairs(),
            "rpcs_served": self.rpcs_served,
            "frames_rejected": self.frames_rejected,
            "replicas": self.replicas,
            "replica_pushes": self.replica_pushes,
            "read_repairs": self.read_repairs,
        }

    def _required_name(self, payload: Dict[str, object], verb: str) -> str:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceError(
                f"{verb} requires a non-empty string 'name'",
                code="bad_request",
            )
        return name

    async def _handle_join(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        name = self._required_name(payload, "JOIN")
        try:
            node = self.network.join(name)
        except Exception as exc:
            raise ServiceError(
                f"join failed: {exc}", code="membership_failed"
            ) from exc
        joined = str(node.name)
        self.hosted.append(joined)
        self._hosted_set.add(joined)
        self._names[joined] = node
        if self._address is not None:
            # Visible to every service sharing this directory object.
            self.directory[joined] = list(self._address)
        # The newcomer now owns (and replicates) keys that currently
        # sit on other shelves: hand them over cluster-wide.
        repushed, dropped = await self._repair_cluster()
        return {
            "joined": joined,
            "network_size": self.network.size,
            "repushed_pairs": repushed,
            "dropped_copies": dropped,
        }

    async def _handle_leave(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        name = self._required_name(payload, "LEAVE")
        if not self._is_local(name):
            raise ServiceError(
                f"node {name!r} is not hosted by this server",
                code="not_hosted",
            )
        if len(self.hosted) == 1:
            raise ServiceError(
                "refusing to retire this server's last hosted node",
                code="bad_request",
            )
        node = self._resolve(name)
        # Snapshot the leaver's shelf before the membership change so
        # its pairs can be pushed to their *new* replica sets after it.
        shelf = [
            (key, self.storage.get(name, key)[1])
            for key in self.storage.keys_on(name)
        ]
        try:
            self.network.leave(node)
        except Exception as exc:
            raise ServiceError(
                f"leave failed: {exc}", code="membership_failed"
            ) from exc
        self.hosted.remove(name)
        self._hosted_set.discard(name)
        self._names.pop(name, None)
        self.directory.pop(name, None)
        dropped = self.storage.drop_node(name)
        # Graceful handover: the leaver pushes every pair it held to
        # the pair's post-departure replica set before disappearing.
        rehomed = 0
        for key, value in shelf:
            for holder in self._holder_names(key):
                try:
                    if await self._store_at(holder, key, value):
                        rehomed += 1
                except ServiceError:
                    pass  # surviving copies still cover the pair
        repushed, _ = await self._repair_cluster()
        return {
            "left": name,
            "network_size": self.network.size,
            "dropped_pairs": dropped,
            "rehomed_copies": rehomed,
            "repushed_pairs": repushed,
        }

    async def _handle_crash(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Ungraceful kill of one hosted virtual node (S24).

        The node vanishes via :meth:`Network.fail` — no notifications,
        no data handover; its shelf (and every un-replicated pair on
        it) is lost, exactly like a process kill.  The server then (1)
        heals routing state by running every surviving node's
        :meth:`Network.on_dead_entry` lazy repair against the corpse
        and (2) restores the replica invariant with a cluster-wide
        repair fan-out; the reply reports how long that window was.
        """
        name = self._required_name(payload, "CRASH")
        if not self._is_local(name):
            raise ServiceError(
                f"node {name!r} is not hosted by this server",
                code="not_hosted",
            )
        if len(self.hosted) == 1:
            raise ServiceError(
                "refusing to crash this server's last hosted node",
                code="bad_request",
            )
        node = self._resolve(name)
        started = time.perf_counter()
        try:
            self.network.fail(node)
        except Exception as exc:
            raise ServiceError(
                f"crash failed: {exc}", code="membership_failed"
            ) from exc
        self.hosted.remove(name)
        self._hosted_set.discard(name)
        self._names.pop(name, None)
        self.directory.pop(name, None)
        lost_pairs = self.storage.drop_node(name)
        # Lazy route repair, driven eagerly: every surviving node gets
        # the on_dead_entry treatment the engine applies on a timeout.
        route_repairs = 0
        for observer in self.network.live_nodes():
            route_repairs += self.network.on_dead_entry(observer, node)
        repushed, dropped = await self._repair_cluster()
        return {
            "crashed": name,
            "network_size": self.network.size,
            "lost_pairs": lost_pairs,
            "route_repairs": route_repairs,
            "repushed_pairs": repushed,
            "dropped_copies": dropped,
            "repair_ms": (time.perf_counter() - started) * 1000.0,
        }

    # ------------------------------------------------------------------
    # replica transport + active rereplication
    # ------------------------------------------------------------------

    def _shelf_target(self, payload: Dict[str, object], verb: str) -> str:
        name = payload.get("node")
        if not isinstance(name, str) or not name:
            raise ServiceError(
                f"{verb} requires a non-empty string 'node'",
                code="bad_request",
            )
        if not self._is_local(name):
            raise ServiceError(
                f"node {name!r} is not hosted by this server",
                code="not_hosted",
            )
        return name

    def _handle_replicate(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        name = self._shelf_target(payload, "REPLICATE")
        key = payload.get("key")
        if not isinstance(key, str):
            raise ServiceError(
                "REPLICATE requires a string 'key'", code="bad_request"
            )
        existed, _ = self.storage.get(name, key)
        self.storage.put(name, key, payload.get("value"))
        return {"stored": True, "existed": existed}

    def _handle_fetch(self, payload: Dict[str, object]) -> Dict[str, object]:
        name = self._shelf_target(payload, "FETCH")
        key = payload.get("key")
        if not isinstance(key, str):
            raise ServiceError(
                "FETCH requires a string 'key'", code="bad_request"
            )
        found, value = self.storage.get(name, key)
        return {"found": found, "value": value}

    async def _handle_repair(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        repushed, dropped = await self._repair_shard()
        return {"repushed_pairs": repushed, "dropped_copies": dropped}

    async def _repair_shard(self) -> Tuple[int, int]:
        """Active rereplication over this server's shard.

        Every stored pair is pushed to its *current* replica set; a
        copy sitting on a node that is no longer a holder is dropped —
        but only once every push for that pair succeeded, so a failed
        push can degrade a pair to extra copies, never to fewer.
        Returns ``(copies pushed, stale copies dropped)``.
        """
        pushed = dropped = 0
        for shelf_owner in list(self._hosted_set):
            for key in self.storage.keys_on(shelf_owner):
                found, value = self.storage.get(shelf_owner, key)
                if not found:  # dropped by a concurrent repair
                    continue
                holders = self._holder_names(key)
                complete = True
                for holder in holders:
                    if holder == shelf_owner:
                        continue
                    try:
                        if await self._store_at(holder, key, value):
                            pushed += 1
                    except ServiceError:
                        complete = False
                if complete and shelf_owner not in holders:
                    self.storage.drop_pair(shelf_owner, key)
                    dropped += 1
        self.replica_pushes += pushed
        return pushed, dropped

    async def _repair_cluster(self) -> Tuple[int, int]:
        """Run :meth:`_repair_shard` here and on every peer server.

        Peer failures are tolerated (a peer that just crashed has no
        shard left to repair); the fan-out is what bounds the
        under-replication window after churn.
        """
        repushed, dropped = await self._repair_shard()
        own = self._address
        peers = sorted(
            {
                (str(host), int(port))
                for host, port in self.directory.values()
            }
        )
        for address in peers:
            if own is not None and address == own:
                continue
            try:
                reply = await self._peer_request(
                    address, MessageType.REPAIR, {}, "repair"
                )
            except ServiceError:
                continue
            repushed += int(reply.get("repushed_pairs", 0))
            dropped += int(reply.get("dropped_copies", 0))
        return repushed, dropped


async def _read(reader: asyncio.StreamReader, max_payload: int):
    # Local indirection so tests can exercise _serve_connection's error
    # paths through the public codec entry point.
    from repro.net.codec import read_frame

    return await read_frame(reader, max_payload)
