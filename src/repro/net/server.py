"""Asyncio node servers: the overlay hosted behind real sockets (S22).

A :class:`NodeService` is one asyncio TCP server hosting a partition of
an overlay's *virtual nodes*.  Lookups are routed **recursively
hop-by-hop**: the service steps the overlay's pure
:func:`~repro.dht.routing.step_route` decision at each hosted node and,
the moment a hop targets a node hosted elsewhere, forwards the whole
lookup continuation — key, hop/timeout counters, path, per-hop trace
and the overlay's packed routing state
(:meth:`~repro.dht.base.Network.pack_route_state`) — to the peer server
in a ``STEP`` frame and awaits its reply, which then propagates back
along the chain of awaiting servers to the origin.  Because every step
runs the exact decision functions of the in-memory
:class:`~repro.dht.routing.LookupEngine` (same hop accounting, same
``HOP_LIMIT``, same ``finish_route`` delivery hop, same query-load
visit recording), a live lookup's hop path is bit-exact against the
engine's trace for the same ``(source, key)`` — the parity suite pins
it.

Malformed, oversized or otherwise contract-violating frames are
rejected without crashing: the offending connection gets one ``ERROR``
frame (rpc id 0 — framing is lost, so the id is unknowable) and is
closed; every other connection keeps being served.

PUT/GET frames route exactly like lookups and then hit the terminal
node's :class:`~repro.dht.storage.StorageShard`; JOIN/LEAVE mutate the
hosted node set through the overlay's own join/leave protocols and keep
the shared cluster directory current.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dht.base import Network, Node
from repro.dht.routing import step_route
from repro.dht.storage import StorageShard
from repro.net.client import RpcConnection
from repro.net.codec import (
    Frame,
    FrameError,
    MAX_PAYLOAD,
    MessageType,
    PROTOCOL_VERSION,
    write_frame,
)

__all__ = ["ServiceError", "NodeService"]

Address = Tuple[str, int]

#: Request types a client may open an operation with.
_OP_TYPES = {
    MessageType.LOOKUP: "lookup",
    MessageType.PUT: "put",
    MessageType.GET: "get",
}


class ServiceError(RuntimeError):
    """A request was well-framed but unserviceable; sent back as ERROR."""


class NodeService:
    """One asyncio server hosting ``hosted`` virtual nodes of ``network``.

    ``directory`` (node name -> ``[host, port]``) is assigned by the
    cluster harness once every service has bound its port; services on
    one :class:`~repro.net.cluster.LocalCluster` share the *same* dict
    object, so JOINs through any server become routable everywhere
    immediately.
    """

    def __init__(
        self,
        network: Network,
        hosted: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload: int = MAX_PAYLOAD,
        timeout: float = 10.0,
    ) -> None:
        if not hosted:
            raise ValueError("a NodeService must host at least one node")
        self.network = network
        self.hosted: List[str] = [str(name) for name in hosted]
        self._hosted_set: Set[str] = set(self.hosted)
        self._bind_host = host
        self._bind_port = port
        self.max_payload = max_payload
        self.timeout = timeout
        self.directory: Dict[str, Sequence[object]] = {}
        self.storage = StorageShard()
        #: requests answered (REPLY or ERROR), for PING telemetry.
        self.rpcs_served = 0
        #: frames rejected for wire-contract violations.
        self.frames_rejected = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._address: Optional[Address] = None
        self._peers: Dict[Address, RpcConnection] = {}
        self._peer_lock = asyncio.Lock()
        self._client_writers: Set[asyncio.StreamWriter] = set()
        self._handler_tasks: Set[asyncio.Task] = set()
        self._names: Dict[str, Node] = {}
        self._step_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Address:
        if self._address is None:
            raise RuntimeError("service is not started")
        return self._address

    async def start(self) -> "NodeService":
        self._server = await asyncio.start_server(
            self._serve_connection, self._bind_host, self._bind_port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self

    async def stop(self) -> None:
        """Close the listener, all live connections and peer links."""
        if self._server is not None:
            self._server.close()
        for task in list(self._handler_tasks):
            task.cancel()
        for writer in list(self._client_writers):
            writer.close()
        for task in list(self._handler_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._handler_tasks.clear()
        peers, self._peers = self._peers, {}
        for peer in peers.values():
            await peer.close()
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass
            self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._client_writers.add(writer)
        send_lock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await _read(reader, self.max_payload)
                except FrameError as exc:
                    # The stream is unsynchronised: answer once (rpc id
                    # 0 — the real id is unrecoverable) and close this
                    # connection only.  The server keeps serving.
                    self.frames_rejected += 1
                    await self._send_safely(
                        writer,
                        send_lock,
                        MessageType.ERROR,
                        0,
                        {"error": f"rejected frame: {exc.reason}"},
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    break
                task = asyncio.create_task(
                    self._handle_frame(frame, writer, send_lock)
                )
                self._handler_tasks.add(task)
                task.add_done_callback(self._handler_tasks.discard)
        finally:
            self._client_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_safely(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        kind: MessageType,
        rpc: int,
        payload: Dict[str, object],
    ) -> None:
        try:
            async with lock:
                write_frame(writer, kind, rpc, payload, self.max_payload)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer went away; nothing left to tell it

    async def _handle_frame(
        self,
        frame: Frame,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        try:
            if frame.kind in _OP_TYPES:
                payload = await self._start_operation(
                    _OP_TYPES[frame.kind], frame.payload
                )
            elif frame.kind == MessageType.STEP:
                payload = await self._continue_operation(frame.payload)
            elif frame.kind == MessageType.PING:
                payload = self._handle_ping()
            elif frame.kind == MessageType.JOIN:
                payload = self._handle_join(frame.payload)
            elif frame.kind == MessageType.LEAVE:
                payload = self._handle_leave(frame.payload)
            else:
                raise ServiceError(
                    f"unexpected {frame.kind.name} frame on a server"
                )
            kind = MessageType.REPLY
        except ServiceError as exc:
            kind, payload = MessageType.ERROR, {"error": str(exc)}
        except Exception as exc:  # never let one request kill the server
            kind, payload = (
                MessageType.ERROR,
                {"error": f"internal error: {exc!r}"},
            )
        self.rpcs_served += 1
        await self._send_safely(writer, lock, kind, frame.rpc, payload)

    # ------------------------------------------------------------------
    # node resolution
    # ------------------------------------------------------------------

    def _resolve(self, name: str) -> Node:
        node = self._names.get(name)
        if node is None or not node.alive:
            # Stale or unseen (membership changed via another service
            # on the same network): refresh the index once.
            self._names = {
                str(live.name): live for live in self.network.live_nodes()
            }
            node = self._names.get(name)
        if node is None or not node.alive:
            raise ServiceError(f"unknown or dead node {name!r}")
        return node

    def _is_local(self, name: str) -> bool:
        return name in self._hosted_set

    # ------------------------------------------------------------------
    # the recursive lookup driver
    # ------------------------------------------------------------------

    async def _start_operation(
        self, op: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        key = payload.get("key")
        if not isinstance(key, str):
            raise ServiceError("operation requires a string 'key'")
        source_name = str(payload.get("source") or self.hosted[0])
        if not self._is_local(source_name):
            raise ServiceError(
                f"node {source_name!r} is not hosted by this server"
            )
        source = self._resolve(source_name)
        network = self.network
        network.fault_detection = False
        key_id = network.key_id(key)
        state = network.begin_route(source, key_id)
        continuation: Dict[str, object] = {
            "op": op,
            "key": key,
            "value": payload.get("value"),
            "lookup": payload.get("lookup"),
            "current": source_name,
            "stage": "route",
            "failed": False,
            "hops": 0,
            "timeouts": 0,
            "path": [str(source.name)],
            "phases": dict.fromkeys(network.ROUTING_PHASES, 0),
            "trace": [],
        }
        return await self._drive(continuation, source, key_id, state)

    async def _continue_operation(
        self, continuation: Dict[str, object]
    ) -> Dict[str, object]:
        """A forwarded hop landed here: the sender already charged the
        hop (count, phase, path, trace); this server records the visit
        at its node and carries on per the continuation's stage."""
        network = self.network
        network.fault_detection = False
        current_name = str(continuation["current"])
        if not self._is_local(current_name):
            raise ServiceError(
                f"misrouted step: {current_name!r} is not hosted here"
            )
        current = self._resolve(current_name)
        key_id = network.key_id(continuation["key"])
        state = network.unpack_route_state(continuation.get("state"), key_id)
        network._record_visit(current)
        return await self._drive(continuation, current, key_id, state)

    async def _drive(
        self,
        continuation: Dict[str, object],
        current: Node,
        key_id: object,
        state: object,
    ) -> Dict[str, object]:
        """Run the engine-equivalent driver loop from ``current`` until
        the lookup terminates locally or hops to another server."""
        network = self.network
        limit = network.HOP_LIMIT
        hops = int(continuation["hops"])
        timeouts = int(continuation["timeouts"])
        phases: Dict[str, int] = continuation["phases"]
        path: List[str] = continuation["path"]
        trace: List[Dict[str, object]] = continuation["trace"]
        failed = bool(continuation["failed"])

        if continuation["stage"] == "route":
            while hops < limit:
                decision, advance_timeouts = step_route(
                    network, current, key_id, state
                )
                timeouts += advance_timeouts + decision.timeouts
                node = decision.node
                if node is None:
                    failed = decision.failed
                    break
                hops += 1
                phases[decision.phase] = phases.get(decision.phase, 0) + 1
                name = str(node.name)
                path.append(name)
                trace.append(
                    {
                        "hop": hops,
                        "node": name,
                        "phase": decision.phase,
                        "timeouts": decision.timeouts,
                    }
                )
                if not self._is_local(name):
                    continuation.update(
                        current=name,
                        stage="finish" if decision.terminal else "route",
                        failed=failed,
                        hops=hops,
                        timeouts=timeouts,
                        state=network.pack_route_state(state),
                    )
                    return await self._forward(name, continuation)
                network._record_visit(node)
                current = node
                if decision.terminal:
                    break
            continuation["stage"] = "finish"

        if continuation["stage"] == "finish":
            # The walk has stopped at ``current``; a protocol may owe
            # one final delivery hop (Cycloid's best-observed handoff),
            # exactly as the engine runs it — including after a
            # HOP_LIMIT exhaustion.
            final = network.finish_route(current, key_id, state)
            if final is not None and final.node is not None:
                timeouts += final.timeouts
                node = final.node
                hops += 1
                phases[final.phase] = phases.get(final.phase, 0) + 1
                name = str(node.name)
                path.append(name)
                trace.append(
                    {
                        "hop": hops,
                        "node": name,
                        "phase": final.phase,
                        "timeouts": final.timeouts,
                    }
                )
                if not self._is_local(name):
                    continuation.update(
                        current=name,
                        stage="final",
                        failed=failed,
                        hops=hops,
                        timeouts=timeouts,
                        state=network.pack_route_state(state),
                    )
                    return await self._forward(name, continuation)
                network._record_visit(node)
                current = node

        return self._finalize(continuation, current, key_id, hops, timeouts, failed)

    async def _forward(
        self, name: str, continuation: Dict[str, object]
    ) -> Dict[str, object]:
        """Hand the continuation to the server hosting ``name`` and
        relay its final reply back down the chain."""
        entry = self.directory.get(name)
        if entry is None:
            raise ServiceError(f"no server in the directory hosts {name!r}")
        address = (str(entry[0]), int(entry[1]))
        # Concurrent handlers must not race one address: the loser's
        # connection (and its reader task) would leak.
        async with self._peer_lock:
            peer = self._peers.get(address)
            if peer is None or not peer.connected:
                peer = RpcConnection(*address, self.max_payload)
                await peer.connect()
                self._peers[address] = peer
        try:
            reply = await peer.request(
                MessageType.STEP, continuation, self.timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise ServiceError(
                f"step to {address[0]}:{address[1]} ({name}) failed: {exc}"
            ) from exc
        if reply.kind == MessageType.ERROR:
            raise ServiceError(str(reply.payload.get("error", "peer error")))
        return reply.payload

    def _finalize(
        self,
        continuation: Dict[str, object],
        current: Node,
        key_id: object,
        hops: int,
        timeouts: int,
        failed: bool,
    ) -> Dict[str, object]:
        network = self.network
        owner = network.cached_owner_of_id(key_id)
        current_name = str(current.name)
        success = (not failed) and current_name == str(owner.name)
        result: Dict[str, object] = {
            "op": continuation["op"],
            "key": continuation["key"],
            "lookup": continuation["lookup"],
            "owner": current_name,
            "hops": hops,
            "timeouts": timeouts,
            "success": success,
            "failed": failed,
            "path": continuation["path"],
            "phases": continuation["phases"],
            "trace": continuation["trace"],
        }
        if continuation["op"] == "put":
            self.storage.put(
                current_name, continuation["key"], continuation["value"]
            )
            result["stored"] = True
        elif continuation["op"] == "get":
            found, value = self.storage.get(current_name, continuation["key"])
            result["found"] = found
            result["value"] = value
        return result

    # ------------------------------------------------------------------
    # membership + health
    # ------------------------------------------------------------------

    def _handle_ping(self) -> Dict[str, object]:
        return {
            "pong": True,
            "version": PROTOCOL_VERSION,
            "hosted": len(self.hosted),
            "network_size": self.network.size,
            "stored_pairs": self.storage.total_pairs(),
            "rpcs_served": self.rpcs_served,
            "frames_rejected": self.frames_rejected,
        }

    def _handle_join(self, payload: Dict[str, object]) -> Dict[str, object]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceError("JOIN requires a non-empty string 'name'")
        try:
            node = self.network.join(name)
        except Exception as exc:
            raise ServiceError(f"join failed: {exc}") from exc
        joined = str(node.name)
        self.hosted.append(joined)
        self._hosted_set.add(joined)
        self._names[joined] = node
        if self._address is not None:
            # Visible to every service sharing this directory object.
            self.directory[joined] = list(self._address)
        return {"joined": joined, "network_size": self.network.size}

    def _handle_leave(self, payload: Dict[str, object]) -> Dict[str, object]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceError("LEAVE requires a non-empty string 'name'")
        if not self._is_local(name):
            raise ServiceError(f"node {name!r} is not hosted by this server")
        if len(self.hosted) == 1:
            raise ServiceError(
                "refusing to retire this server's last hosted node"
            )
        node = self._resolve(name)
        try:
            self.network.leave(node)
        except Exception as exc:
            raise ServiceError(f"leave failed: {exc}") from exc
        self.hosted.remove(name)
        self._hosted_set.discard(name)
        self._names.pop(name, None)
        self.directory.pop(name, None)
        # A graceful leaver's wire-stored pairs are dropped with it;
        # re-homing them is the in-memory KeyValueStore's concern.
        dropped = self.storage.drop_node(name)
        return {
            "left": name,
            "network_size": self.network.size,
            "dropped_pairs": dropped,
        }


async def _read(reader: asyncio.StreamReader, max_payload: int):
    # Local indirection so tests can exercise _serve_connection's error
    # paths through the public codec entry point.
    from repro.net.codec import read_frame

    return await read_frame(reader, max_payload)
