"""Closed-loop load generator with engine-parity checking (S22).

``repro loadgen`` drives a live cluster with ``clients`` concurrent
closed-loop clients (each issues its next operation the moment the
previous reply lands), measures throughput and latency percentiles, and
— because every wire lookup must take *exactly* the hop path the
in-memory :class:`~repro.dht.routing.LookupEngine` would take — proves
correctness by digest: the sha256 over the live results' canonical
``(index, op, key, source, path, hops, timeouts, success)`` tuples must
equal the digest over the engine's records for the same deterministic
workload on a pristine clone of the overlay.  The digests, the match
verdict and the performance numbers land in a schema-tagged
``BENCH_net.json`` (:data:`NET_BENCH_SCHEMA`, guarded by
:func:`repro.experiments.bench.validate_net_report`).

The workload is three deterministic op groups derived from one seed:
``lookups`` plain lookups, then ``puts`` PUTs, then one GET per PUT
(run as a second closed-loop phase so every GET observes its PUT).  A
*failure* is any transport-level error surviving the retry budget, any
unsuccessful route, or a GET that does not return its PUT's value; the
CI smoke job requires zero.

With ``trace_path`` set, every completed operation appends its per-hop
trace as JSON lines in the ``--trace`` format of the simulated engine
(``lookup``/``hop``/``node``/``phase``/``timeouts``) extended with the
live-only fields ``rpc`` (the winning attempt's rpc id) and
``latency_ms`` (the operation's wall-clock latency) — the presence of
``rpc`` is what distinguishes a live trace line from a simulated one.
"""

from __future__ import annotations

import asyncio
import collections
import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence

from repro.dht.base import Network
from repro.experiments.registry import (
    build_complete_network,
    build_sized_network,
)
from repro.net.client import ClusterClient, ClusterError
from repro.net.cluster import LocalCluster
from repro.sim.faults import RetryPolicy
from repro.sim.workload import random_keys
from repro.util.rng import derive_rng, make_rng
from repro.util.stats import mean, percentile

__all__ = [
    "NET_BENCH_SCHEMA",
    "build_from_recipe",
    "make_operations",
    "expected_results",
    "results_digest",
    "run_loadgen",
]

#: Schema tag of the ``BENCH_net.json`` report.
NET_BENCH_SCHEMA = "repro/net-bench/v1"


def build_from_recipe(build: Dict[str, object]) -> Network:
    """Rebuild the overlay a cluster spec describes, bit-identically.

    The recipe is ``{"protocol", "seed"}`` plus either ``"dimension"``
    (complete Cycloid-sized build) or ``"nodes"`` (random-id build of
    that population, optionally pinned by ``"dimension"``).
    """
    protocol = str(build.get("protocol", "cycloid"))
    seed = int(build.get("seed", 0))
    nodes = build.get("nodes")
    dimension = build.get("dimension")
    if nodes is not None:
        return build_sized_network(
            protocol,
            int(nodes),
            seed=seed,
            cycloid_dimension=int(dimension) if dimension is not None else None,
        )
    if dimension is None:
        raise ValueError("build recipe needs 'dimension' or 'nodes'")
    return build_complete_network(protocol, int(dimension), seed=seed)


def make_operations(
    network: Network, lookups: int, puts: int, seed: int
) -> List[Dict[str, object]]:
    """The deterministic operation list for one loadgen run.

    ``lookups`` LOOKUP ops, then ``puts`` PUT ops, then one GET per PUT
    (same keys, independently drawn sources).  Sources are uniform over
    the overlay's live nodes; everything derives from ``seed`` alone,
    which is what lets an attached loadgen reproduce the workload — and
    its expected routes — without talking to the cluster first.
    """
    rng = make_rng(seed)
    names = [str(node.name) for node in network.live_nodes()]
    if not names:
        raise ValueError("network has no live nodes")
    operations: List[Dict[str, object]] = []

    def pick_source() -> str:
        return names[rng.randrange(len(names))]

    for index in range(lookups):
        operations.append(
            {
                "index": len(operations),
                "op": "lookup",
                "key": f"lookup-{rng.getrandbits(64):016x}-{index}",
                "source": pick_source(),
            }
        )
    pair_keys = random_keys(puts, derive_rng(rng, 1), prefix="pair")
    for index, key in enumerate(pair_keys):
        operations.append(
            {
                "index": len(operations),
                "op": "put",
                "key": key,
                "source": pick_source(),
                "value": f"value-{index}",
            }
        )
    for index, key in enumerate(pair_keys):
        operations.append(
            {
                "index": len(operations),
                "op": "get",
                "key": key,
                "source": pick_source(),
                "expect": f"value-{index}",
            }
        )
    return operations


def expected_results(
    network: Network, operations: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """What the in-memory engine routes for each operation.

    Runs every op's lookup through :meth:`Network.lookup_many` on a
    pristine **clone** (so neither the served overlay's query-load
    telemetry nor the caller's network is disturbed) and returns one
    canonical result dict per op — the parity baseline.
    """
    reference = network.clone()
    by_name = {str(node.name): node for node in reference.live_nodes()}
    records = reference.lookup_many(
        (by_name[str(op["source"])], op["key"]) for op in operations
    )
    results = []
    for op, record in zip(operations, records):
        results.append(
            {
                "index": op["index"],
                "op": op["op"],
                "key": op["key"],
                "source": op["source"],
                "path": [str(name) for name in record.path],
                "hops": record.hops,
                "timeouts": record.timeouts,
                "success": record.success,
            }
        )
    return results


def results_digest(results: Sequence[Dict[str, object]]) -> str:
    """sha256 over the canonical routing content, in op-index order.

    Covers ``(index, op, key, source, path, hops, timeouts, success)``
    of every result — client scheduling order does not matter, the op
    index pins the sequence.
    """
    canonical = [
        (
            result["index"],
            result["op"],
            result["key"],
            result["source"],
            tuple(result["path"]),
            result["hops"],
            result["timeouts"],
            bool(result["success"]),
        )
        for result in sorted(results, key=lambda r: r["index"])
    ]
    return hashlib.sha256(repr(canonical).encode()).hexdigest()


async def _run_clients(
    directory: Dict[str, Sequence[object]],
    operations: Sequence[Dict[str, object]],
    clients: int,
    retry: RetryPolicy,
    timeout: float,
) -> Dict[str, object]:
    """Drive the workload closed-loop; returns results + telemetry."""
    results: List[Dict[str, object]] = []
    failures = 0
    errors: List[str] = []
    # GETs run as a second phase so each observes its PUT.
    phases = [
        [op for op in operations if op["op"] != "get"],
        [op for op in operations if op["op"] == "get"],
    ]
    pool = [
        ClusterClient(directory, retry=retry, timeout=timeout)
        for _ in range(clients)
    ]

    async def worker(client: ClusterClient, queue) -> None:
        nonlocal failures
        while queue:
            op = queue.popleft()
            started = time.perf_counter()
            try:
                if op["op"] == "lookup":
                    reply = await client.lookup(
                        op["key"], op["source"], lookup_id=op["index"]
                    )
                elif op["op"] == "put":
                    reply = await client.put(
                        op["key"], op["value"], op["source"]
                    )
                else:
                    reply = await client.get(op["key"], op["source"])
            except ClusterError as exc:
                failures += 1
                errors.append(f"op {op['index']} ({op['op']}): {exc}")
                continue
            latency_ms = (time.perf_counter() - started) * 1000.0
            ok = bool(reply.get("success"))
            if op["op"] == "get" and (
                not reply.get("found") or reply.get("value") != op["expect"]
            ):
                ok = False
            if not ok:
                failures += 1
                errors.append(
                    f"op {op['index']} ({op['op']}) unsuccessful: "
                    f"success={reply.get('success')} "
                    f"found={reply.get('found')}"
                )
            results.append(
                {
                    "index": op["index"],
                    "op": op["op"],
                    "key": op["key"],
                    "source": op["source"],
                    "path": list(reply.get("path", [])),
                    "hops": int(reply.get("hops", -1)),
                    "timeouts": int(reply.get("timeouts", -1)),
                    "success": bool(reply.get("success")),
                    "rpc": int(reply.get("rpc", 0)),
                    "latency_ms": latency_ms,
                    "trace": reply.get("trace", []),
                }
            )

    started = time.perf_counter()
    try:
        for phase_ops in phases:
            if not phase_ops:
                continue
            queue = collections.deque(phase_ops)
            await asyncio.gather(
                *(worker(client, queue) for client in pool)
            )
    finally:
        for client in pool:
            await client.close()
    elapsed = time.perf_counter() - started
    return {
        "results": results,
        "failures": failures,
        "errors": errors,
        "elapsed_s": elapsed,
        "retries": sum(client.retries for client in pool),
    }


def _write_trace(
    trace_path: str, results: Sequence[Dict[str, object]]
) -> int:
    """Live-trace JSONL: the simulated ``--trace`` hop schema plus the
    per-RPC fields ``rpc`` and ``latency_ms``; returns lines written."""
    lines = 0
    with open(trace_path, "w", encoding="utf-8") as stream:
        for result in sorted(results, key=lambda r: r["index"]):
            for event in result["trace"]:
                stream.write(
                    json.dumps(
                        {
                            "lookup": result["index"],
                            "hop": event["hop"],
                            "node": str(event["node"]),
                            "phase": event["phase"],
                            "timeouts": event["timeouts"],
                            "rpc": result["rpc"],
                            "latency_ms": round(result["latency_ms"], 3),
                        }
                    )
                )
                stream.write("\n")
                lines += 1
    return lines


async def _loadgen(
    build: Dict[str, object],
    servers: int,
    clients: int,
    lookups: int,
    puts: int,
    seed: int,
    retry: RetryPolicy,
    timeout: float,
    spec: Optional[Dict[str, object]],
    trace_path: Optional[str],
) -> Dict[str, object]:
    network = build_from_recipe(build)
    operations = make_operations(network, lookups, puts, seed)
    expected = expected_results(network, operations)

    cluster: Optional[LocalCluster] = None
    if spec is None:
        cluster = LocalCluster(network, servers=servers, build=build)
        await cluster.start()
        directory = cluster.directory
    else:
        directory = {
            str(name): list(address)
            for name, address in spec["directory"].items()
        }
    try:
        outcome = await _run_clients(
            directory, operations, clients, retry, timeout
        )
    finally:
        if cluster is not None:
            await cluster.stop()

    results = outcome["results"]
    live_digest = results_digest(results)
    expected_digest = results_digest(expected)
    complete = len(results) == len(operations)
    latencies = [result["latency_ms"] for result in results]
    elapsed = outcome["elapsed_s"]
    trace_lines = (
        _write_trace(trace_path, results) if trace_path is not None else 0
    )
    report: Dict[str, object] = {
        "schema": NET_BENCH_SCHEMA,
        "build": dict(build),
        "servers": servers if cluster is not None else spec.get("servers"),
        "attached": cluster is None,
        "clients": clients,
        "seed": seed,
        "retry": {
            "budget": retry.budget,
            "base_delay": retry.base_delay,
            "multiplier": retry.multiplier,
            "max_delay": retry.max_delay,
        },
        "timeout_s": timeout,
        "ops": {
            "total": len(operations),
            "completed": len(results),
            "lookups": lookups,
            "puts": puts,
            "gets": puts,
            "failures": outcome["failures"],
            "retries": outcome["retries"],
        },
        "latency_ms": {
            "mean": mean(latencies),
            "p50": percentile(latencies, 50.0),
            "p95": percentile(latencies, 95.0),
            "p99": percentile(latencies, 99.0),
            "max": max(latencies) if latencies else 0.0,
        },
        "throughput_ops_per_s": (
            len(results) / elapsed if elapsed > 0 else 0.0
        ),
        "elapsed_s": elapsed,
        "digest": {
            "live": live_digest,
            "expected": expected_digest,
            "match": complete and live_digest == expected_digest,
        },
        "errors": outcome["errors"][:20],
    }
    if trace_path is not None:
        report["trace"] = {"path": trace_path, "lines": trace_lines}
    return report


def run_loadgen(
    build: Dict[str, object],
    servers: int = 4,
    clients: int = 64,
    lookups: int = 256,
    puts: int = 32,
    seed: int = 42,
    retry: Optional[RetryPolicy] = None,
    timeout: float = 5.0,
    spec: Optional[Dict[str, object]] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run one load-generation session and return the bench report.

    ``build`` is the overlay recipe (see :func:`build_from_recipe`).
    With ``spec`` (a loaded cluster-spec document) the generator
    *attaches* to the already-running cluster it describes — the local
    build then only computes the expected routes; without it a private
    :class:`LocalCluster` of ``servers`` servers is booted and torn
    down around the run.
    """
    return asyncio.run(
        _loadgen(
            build,
            servers,
            clients,
            lookups,
            puts,
            seed,
            retry if retry is not None else RetryPolicy(),
            timeout,
            spec,
            trace_path,
        )
    )
