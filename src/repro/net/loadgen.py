"""Closed-loop load generator with engine-parity checking (S22).

``repro loadgen`` drives a live cluster with ``clients`` concurrent
closed-loop clients (each issues its next operation the moment the
previous reply lands), measures throughput and latency percentiles, and
— because every wire lookup must take *exactly* the hop path the
in-memory :class:`~repro.dht.routing.LookupEngine` would take — proves
correctness by digest: the sha256 over the live results' canonical
``(index, op, key, source, path, hops, timeouts, success)`` tuples must
equal the digest over the engine's records for the same deterministic
workload on a pristine clone of the overlay.  The digests, the match
verdict and the performance numbers land in a schema-tagged
``BENCH_net.json`` (:data:`NET_BENCH_SCHEMA`, guarded by
:func:`repro.experiments.bench.validate_net_report`).

The workload is three deterministic op groups derived from one seed:
``lookups`` plain lookups, then ``puts`` PUTs, then one GET per PUT
(run as a second closed-loop phase so every GET observes its PUT).  A
*failure* is any transport-level error surviving the retry budget, any
unsuccessful route, or a GET that does not return its PUT's value; the
CI smoke job requires zero.

With ``trace_path`` set, every completed operation appends its per-hop
trace as JSON lines in the ``--trace`` format of the simulated engine
(``lookup``/``hop``/``node``/``phase``/``timeouts``) extended with the
live-only fields ``rpc`` (the winning attempt's rpc id) and
``latency_ms`` (the operation's wall-clock latency) — the presence of
``rpc`` is what distinguishes a live trace line from a simulated one.

A SIGINT mid-run no longer discards everything: the workers drain, the
partial results are flushed into a report marked ``"complete": false``.

**The churn harness (S24)** is the open-loop counterpart behind
``repro churnstorm``: operations arrive on a seeded Poisson clock with
Zipf key popularity and are fired *at their scheduled time* regardless
of how earlier operations fared, with latency measured from the
scheduled send instant — the coordinated-omission-free methodology —
while a seeded :class:`~repro.sim.faults.ChurnPlan` kills and rejoins
virtual nodes mid-run through live ``CRASH``/``JOIN`` RPCs.  After the
storm, every key whose PUT was acknowledged is read back (closed-loop)
and the report's ``churn`` section states the acknowledged-write
survival rate — the acceptance bar is 1.0 with ``replicas >= 2``.
"""

from __future__ import annotations

import asyncio
import collections
import hashlib
import json
import signal
import time
from typing import Dict, List, Optional, Sequence

from repro.dht.base import Network
from repro.experiments.registry import (
    build_complete_network,
    build_sized_network,
)
from repro.net.client import ClusterClient, ClusterError
from repro.net.cluster import LocalCluster
from repro.sim.faults import ChurnPlan, RetryPolicy
from repro.sim.latency import LatencyModel
from repro.sim.workload import ZipfSampler, random_keys
from repro.util.rng import derive_rng, make_rng
from repro.util.stats import mean, percentile

__all__ = [
    "NET_BENCH_SCHEMA",
    "build_from_recipe",
    "make_operations",
    "make_open_operations",
    "expected_results",
    "results_digest",
    "partial_report",
    "run_loadgen",
    "run_churnstorm",
]

#: Schema tag of the ``BENCH_net.json`` report.
NET_BENCH_SCHEMA = "repro/net-bench/v1"


def build_from_recipe(build: Dict[str, object]) -> Network:
    """Rebuild the overlay a cluster spec describes, bit-identically.

    The recipe is ``{"protocol", "seed"}`` plus either ``"dimension"``
    (complete Cycloid-sized build) or ``"nodes"`` (random-id build of
    that population, optionally pinned by ``"dimension"``).
    """
    protocol = str(build.get("protocol", "cycloid"))
    seed = int(build.get("seed", 0))
    nodes = build.get("nodes")
    dimension = build.get("dimension")
    if nodes is not None:
        return build_sized_network(
            protocol,
            int(nodes),
            seed=seed,
            cycloid_dimension=int(dimension) if dimension is not None else None,
        )
    if dimension is None:
        raise ValueError("build recipe needs 'dimension' or 'nodes'")
    return build_complete_network(protocol, int(dimension), seed=seed)


def make_operations(
    network: Network, lookups: int, puts: int, seed: int
) -> List[Dict[str, object]]:
    """The deterministic operation list for one loadgen run.

    ``lookups`` LOOKUP ops, then ``puts`` PUT ops, then one GET per PUT
    (same keys, independently drawn sources).  Sources are uniform over
    the overlay's live nodes; everything derives from ``seed`` alone,
    which is what lets an attached loadgen reproduce the workload — and
    its expected routes — without talking to the cluster first.
    """
    rng = make_rng(seed)
    names = [str(node.name) for node in network.live_nodes()]
    if not names:
        raise ValueError("network has no live nodes")
    operations: List[Dict[str, object]] = []

    def pick_source() -> str:
        return names[rng.randrange(len(names))]

    for index in range(lookups):
        operations.append(
            {
                "index": len(operations),
                "op": "lookup",
                "key": f"lookup-{rng.getrandbits(64):016x}-{index}",
                "source": pick_source(),
            }
        )
    pair_keys = random_keys(puts, derive_rng(rng, 1), prefix="pair")
    for index, key in enumerate(pair_keys):
        operations.append(
            {
                "index": len(operations),
                "op": "put",
                "key": key,
                "source": pick_source(),
                "value": f"value-{index}",
            }
        )
    for index, key in enumerate(pair_keys):
        operations.append(
            {
                "index": len(operations),
                "op": "get",
                "key": key,
                "source": pick_source(),
                "expect": f"value-{index}",
            }
        )
    return operations


def expected_results(
    network: Network,
    operations: Sequence[Dict[str, object]],
    latency: Optional[LatencyModel] = None,
) -> List[Dict[str, object]]:
    """What the in-memory engine routes for each operation.

    Runs every op's lookup through :meth:`Network.lookup_many` on a
    pristine **clone** (so neither the served overlay's query-load
    telemetry nor the caller's network is disturbed) and returns one
    canonical result dict per op — the parity baseline.  With a
    ``latency`` model each result additionally carries ``model_ms``,
    the engine-predicted end-to-end modeled milliseconds; the live
    servers must report the same totals for the same model (§S25).
    """
    reference = network.clone()
    by_name = {str(node.name): node for node in reference.live_nodes()}
    records = reference.lookup_many(
        ((by_name[str(op["source"])], op["key"]) for op in operations),
        latency=latency,
    )
    results = []
    for op, record in zip(operations, records):
        result = {
            "index": op["index"],
            "op": op["op"],
            "key": op["key"],
            "source": op["source"],
            "path": [str(name) for name in record.path],
            "hops": record.hops,
            "timeouts": record.timeouts,
            "success": record.success,
        }
        if latency is not None:
            result["model_ms"] = record.latency_ms
        results.append(result)
    return results


def results_digest(results: Sequence[Dict[str, object]]) -> str:
    """sha256 over the canonical routing content, in op-index order.

    Covers ``(index, op, key, source, path, hops, timeouts, success)``
    of every result — client scheduling order does not matter, the op
    index pins the sequence.
    """
    canonical = [
        (
            result["index"],
            result["op"],
            result["key"],
            result["source"],
            tuple(result["path"]),
            result["hops"],
            result["timeouts"],
            bool(result["success"]),
        )
        for result in sorted(results, key=lambda r: r["index"])
    ]
    return hashlib.sha256(repr(canonical).encode()).hexdigest()


async def _run_clients(
    directory: Dict[str, Sequence[object]],
    operations: Sequence[Dict[str, object]],
    clients: int,
    retry: RetryPolicy,
    timeout: float,
    stop: Optional[asyncio.Event] = None,
) -> Dict[str, object]:
    """Drive the workload closed-loop; returns results + telemetry.

    ``stop`` (set by the SIGINT handler) makes every worker finish its
    in-flight operation and drain, so an interrupted run still yields
    a partial result set instead of nothing.
    """
    results: List[Dict[str, object]] = []
    failures = 0
    errors: List[str] = []
    # GETs run as a second phase so each observes its PUT.
    phases = [
        [op for op in operations if op["op"] != "get"],
        [op for op in operations if op["op"] == "get"],
    ]
    pool = [
        ClusterClient(directory, retry=retry, timeout=timeout)
        for _ in range(clients)
    ]

    async def worker(client: ClusterClient, queue) -> None:
        nonlocal failures
        while queue:
            if stop is not None and stop.is_set():
                return
            op = queue.popleft()
            started = time.perf_counter()
            try:
                if op["op"] == "lookup":
                    reply = await client.lookup(
                        op["key"], op["source"], lookup_id=op["index"]
                    )
                elif op["op"] == "put":
                    reply = await client.put(
                        op["key"], op["value"], op["source"]
                    )
                else:
                    reply = await client.get(op["key"], op["source"])
            except ClusterError as exc:
                failures += 1
                errors.append(f"op {op['index']} ({op['op']}): {exc}")
                continue
            latency_ms = (time.perf_counter() - started) * 1000.0
            ok = bool(reply.get("success"))
            if op["op"] == "get" and (
                not reply.get("found") or reply.get("value") != op["expect"]
            ):
                ok = False
            if not ok:
                failures += 1
                errors.append(
                    f"op {op['index']} ({op['op']}) unsuccessful: "
                    f"success={reply.get('success')} "
                    f"found={reply.get('found')}"
                )
            result = {
                "index": op["index"],
                "op": op["op"],
                "key": op["key"],
                "source": op["source"],
                "path": list(reply.get("path", [])),
                "hops": int(reply.get("hops", -1)),
                "timeouts": int(reply.get("timeouts", -1)),
                "success": bool(reply.get("success")),
                "rpc": int(reply.get("rpc", 0)),
                "latency_ms": latency_ms,
                "trace": reply.get("trace", []),
            }
            if "model_ms" in reply:
                result["model_ms"] = float(reply["model_ms"])
            results.append(result)

    started = time.perf_counter()
    try:
        for phase_ops in phases:
            if stop is not None and stop.is_set():
                break
            if not phase_ops:
                continue
            queue = collections.deque(phase_ops)
            await asyncio.gather(
                *(worker(client, queue) for client in pool)
            )
    finally:
        for client in pool:
            await client.close()
    elapsed = time.perf_counter() - started
    return {
        "results": results,
        "failures": failures,
        "errors": errors,
        "elapsed_s": elapsed,
        "retries": sum(client.retries for client in pool),
        "interrupted": stop is not None and stop.is_set(),
    }


def _write_trace(
    trace_path: str, results: Sequence[Dict[str, object]]
) -> int:
    """Live-trace JSONL: the simulated ``--trace`` hop schema plus the
    per-RPC fields ``rpc`` and ``latency_ms``; returns lines written."""
    lines = 0
    with open(trace_path, "w", encoding="utf-8") as stream:
        for result in sorted(results, key=lambda r: r["index"]):
            for event in result["trace"]:
                line = {
                    "lookup": result["index"],
                    "hop": event["hop"],
                    "node": str(event["node"]),
                    "phase": event["phase"],
                    "timeouts": event["timeouts"],
                    "rpc": result["rpc"],
                    "latency_ms": round(result["latency_ms"], 3),
                }
                if "model_ms" in event:
                    line["model_ms"] = event["model_ms"]
                stream.write(json.dumps(line))
                stream.write("\n")
                lines += 1
    return lines


async def _loadgen(
    build: Dict[str, object],
    servers: int,
    clients: int,
    lookups: int,
    puts: int,
    seed: int,
    retry: RetryPolicy,
    timeout: float,
    spec: Optional[Dict[str, object]],
    trace_path: Optional[str],
    latency: Optional[LatencyModel],
) -> Dict[str, object]:
    network = build_from_recipe(build)
    operations = make_operations(network, lookups, puts, seed)
    if latency is None and spec is not None and spec.get("latency"):
        # Attach mode: sleep-by-model clusters advertise their model in
        # the spec; adopt it so the expected totals match the servers'.
        latency = LatencyModel.from_config(spec["latency"])
    expected = expected_results(network, operations, latency=latency)

    cluster: Optional[LocalCluster] = None
    if spec is None:
        cluster = LocalCluster(
            network, servers=servers, build=build, latency=latency
        )
        await cluster.start()
        directory = cluster.directory
    else:
        directory = {
            str(name): list(address)
            for name, address in spec["directory"].items()
        }
    # A SIGINT sets ``stop`` instead of tearing the loop down, so the
    # run flushes a partial report (marked incomplete) on the way out.
    stop = asyncio.Event()
    restore_sigint = _install_sigint(stop)
    try:
        outcome = await _run_clients(
            directory, operations, clients, retry, timeout, stop
        )
    finally:
        restore_sigint()
        if cluster is not None:
            await cluster.stop()

    results = outcome["results"]
    live_digest = results_digest(results)
    expected_digest = results_digest(expected)
    complete = len(results) == len(operations)
    latencies = [result["latency_ms"] for result in results]
    elapsed = outcome["elapsed_s"]
    trace_lines = (
        _write_trace(trace_path, results) if trace_path is not None else 0
    )
    report: Dict[str, object] = {
        "schema": NET_BENCH_SCHEMA,
        "mode": "closed-loop",
        "complete": complete and not outcome["interrupted"],
        "build": dict(build),
        "servers": servers if cluster is not None else spec.get("servers"),
        "attached": cluster is None,
        "clients": clients,
        "seed": seed,
        "retry": {
            "budget": retry.budget,
            "base_delay": retry.base_delay,
            "multiplier": retry.multiplier,
            "max_delay": retry.max_delay,
        },
        "timeout_s": timeout,
        "ops": {
            "total": len(operations),
            "completed": len(results),
            "lookups": lookups,
            "puts": puts,
            "gets": puts,
            "failures": outcome["failures"],
            "retries": outcome["retries"],
        },
        "latency_ms": {
            "mean": mean(latencies),
            "p50": percentile(latencies, 50.0),
            "p95": percentile(latencies, 95.0),
            "p99": percentile(latencies, 99.0),
            "max": max(latencies) if latencies else 0.0,
        },
        "throughput_ops_per_s": (
            len(results) / elapsed if elapsed > 0 else 0.0
        ),
        "elapsed_s": elapsed,
        "digest": {
            "live": live_digest,
            "expected": expected_digest,
            "match": complete and live_digest == expected_digest,
        },
        "errors": outcome["errors"][:20],
    }
    if latency is not None:
        live_model = [r["model_ms"] for r in results if "model_ms" in r]
        expected_model = {
            r["index"]: float(r.get("model_ms", 0.0)) for r in expected
        }
        diffs = [
            abs(r["model_ms"] - expected_model.get(r["index"], 0.0))
            for r in results
            if "model_ms" in r
        ]
        report["model_ms"] = {
            "config": latency.to_config(),
            "mean": mean(live_model),
            "p50": percentile(live_model, 50.0),
            "p95": percentile(live_model, 95.0),
            "p99": percentile(live_model, 99.0),
            "max": max(live_model) if live_model else 0.0,
            #: live-vs-engine modeled-total parity: the worst per-op gap.
            "max_abs_diff_ms": max(diffs) if diffs else 0.0,
        }
    if trace_path is not None:
        report["trace"] = {"path": trace_path, "lines": trace_lines}
    return report


def _install_sigint(stop: asyncio.Event):
    """Route SIGINT into ``stop`` for the duration of a run.

    Returns a zero-argument restore callable.  Where signal handlers
    cannot be installed (non-main thread, non-unix loop) the run keeps
    the default KeyboardInterrupt behaviour.
    """
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGINT, stop.set)
    except (NotImplementedError, ValueError, RuntimeError):
        return lambda: None

    def restore() -> None:
        try:
            loop.remove_signal_handler(signal.SIGINT)
        except (NotImplementedError, ValueError, RuntimeError):
            pass

    return restore


def partial_report(
    build: Dict[str, object],
    servers: int,
    clients: int,
    lookups: int,
    puts: int,
    seed: int,
) -> Dict[str, object]:
    """The schema-valid empty report of a run interrupted before any
    operation completed.

    A SIGINT that lands *before* the run installs its signal handler
    (while the overlay builds or the cluster boots) aborts with no
    results at all.  The report it leaves behind must still satisfy
    :func:`repro.experiments.bench.validate_net_report` — in
    particular it must carry ``"mode"``: the validator once defaulted a
    missing mode to ``"closed-loop"``, which let early-interrupt
    reports masquerade as complete-schema ones.
    """
    total = lookups + 2 * puts
    empty_digest = results_digest([])
    zeros = {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "schema": NET_BENCH_SCHEMA,
        "mode": "closed-loop",
        "complete": False,
        "interrupted": "before-run",
        "build": dict(build),
        "servers": servers,
        "clients": clients,
        "seed": seed,
        "ops": {
            "total": total,
            "completed": 0,
            "lookups": lookups,
            "puts": puts,
            "gets": puts,
            "failures": 0,
            "retries": 0,
        },
        "latency_ms": dict(zeros),
        "throughput_ops_per_s": 0.0,
        "elapsed_s": 0.0,
        "digest": {
            "live": empty_digest,
            "expected": empty_digest,
            "match": total == 0,
        },
        "errors": [],
    }


def run_loadgen(
    build: Dict[str, object],
    servers: int = 4,
    clients: int = 64,
    lookups: int = 256,
    puts: int = 32,
    seed: int = 42,
    retry: Optional[RetryPolicy] = None,
    timeout: float = 5.0,
    spec: Optional[Dict[str, object]] = None,
    trace_path: Optional[str] = None,
    latency: Optional[LatencyModel] = None,
) -> Dict[str, object]:
    """Run one load-generation session and return the bench report.

    ``build`` is the overlay recipe (see :func:`build_from_recipe`).
    With ``spec`` (a loaded cluster-spec document) the generator
    *attaches* to the already-running cluster it describes — the local
    build then only computes the expected routes; without it a private
    :class:`LocalCluster` of ``servers`` servers is booted and torn
    down around the run.  ``latency`` attaches a
    :class:`~repro.sim.latency.LatencyModel`: the servers sleep each
    hop's modeled delay and the report gains a ``model_ms`` section
    comparing live modeled totals against the engine's predictions.

    A SIGINT that arrives before the run's own handler is installed
    (e.g. during cluster boot) still returns a schema-valid partial
    report (:func:`partial_report`) instead of propagating
    ``KeyboardInterrupt`` with nothing to show.
    """
    try:
        return asyncio.run(
            _loadgen(
                build,
                servers,
                clients,
                lookups,
                puts,
                seed,
                retry if retry is not None else RetryPolicy(),
                timeout,
                spec,
                trace_path,
                latency,
            )
        )
    except KeyboardInterrupt:
        return partial_report(build, servers, clients, lookups, puts, seed)


# ----------------------------------------------------------------------
# the open-loop churn harness (S24)
# ----------------------------------------------------------------------

def make_open_operations(
    count: int,
    seed: int,
    rate: float,
    key_universe: int = 64,
    put_fraction: float = 0.5,
    zipf_s: float = 1.1,
) -> List[Dict[str, object]]:
    """A seeded open-loop workload: Poisson arrivals, Zipf keys.

    Inter-arrival times are exponential with ``rate`` ops/s (a Poisson
    process); each operation is a PUT with probability ``put_fraction``
    else a GET, over a ``key_universe``-key corpus with Zipf(``zipf_s``)
    popularity — the head keys take most of the traffic, as real
    caches see.  ``scheduled`` is the operation's ideal send time in
    seconds from run start: the open-loop driver fires each operation
    at that instant no matter how earlier ones fared, and latency is
    measured **from the scheduled time**, so queueing delay the system
    causes is charged to the system (no coordinated omission).

    ``source_pick`` is a seeded uniform draw the driver maps onto the
    *currently alive* node list at fire time — baked names would die
    with their nodes mid-churn.
    """
    if count < 0:
        raise ValueError("operation count must be non-negative")
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if key_universe < 1:
        raise ValueError("key universe must hold at least one key")
    if not 0.0 <= put_fraction <= 1.0:
        raise ValueError("put_fraction must be within [0, 1]")
    rng = make_rng(seed)
    sampler = ZipfSampler.from_universe(
        key_universe, derive_rng(rng, 1), s=zipf_s
    )
    operations: List[Dict[str, object]] = []
    clock = 0.0
    for index in range(count):
        clock += rng.expovariate(rate)
        op = "put" if rng.random() < put_fraction else "get"
        entry: Dict[str, object] = {
            "index": index,
            "op": op,
            "key": sampler.draw(rng),
            "scheduled": clock,
            "source_pick": rng.random(),
        }
        if op == "put":
            entry["value"] = f"value-{index}"
        operations.append(entry)
    return operations


def _latency_block(latencies: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": mean(latencies),
        "p50": percentile(latencies, 50.0),
        "p95": percentile(latencies, 95.0),
        "p99": percentile(latencies, 99.0),
        "max": max(latencies) if latencies else 0.0,
    }


async def _churnstorm(
    build: Dict[str, object],
    servers: int,
    replicas: int,
    rate: float,
    count: int,
    churn: ChurnPlan,
    seed: int,
    retry: RetryPolicy,
    timeout: float,
    clients: int,
    key_universe: int,
    put_fraction: float,
) -> Dict[str, object]:
    network = build_from_recipe(build)
    operations = make_open_operations(
        count, seed, rate, key_universe, put_fraction
    )
    duration = operations[-1]["scheduled"] if operations else 1.0
    cluster = LocalCluster(
        network, servers=servers, build=build, replicas=replicas
    )
    await cluster.start()
    directory = cluster.directory
    events = churn.schedule(sorted(directory), duration)

    pool = [
        ClusterClient(directory, retry=retry, timeout=timeout)
        for _ in range(max(1, clients))
    ]
    control = ClusterClient(directory, retry=retry, timeout=timeout)
    results: List[Dict[str, object]] = []
    churn_log: List[Dict[str, object]] = []
    errors: List[str] = []
    failures = 0
    #: keys whose PUT the cluster acknowledged — the zero-loss ledger.
    acked: Dict[str, int] = {}

    started = time.perf_counter()

    def now() -> float:
        return time.perf_counter() - started

    def alive_source(pick: float, salt: int = 0) -> str:
        names = sorted(directory)
        if not names:
            raise ClusterError("no live nodes left", code="unknown_node")
        return names[(int(pick * len(names)) + salt) % len(names)]

    async def run_op(op: Dict[str, object], client: ClusterClient) -> None:
        nonlocal failures
        for attempt in range(4):
            source = alive_source(op["source_pick"], attempt)
            try:
                if op["op"] == "put":
                    reply = await client.put(op["key"], op["value"], source)
                else:
                    reply = await client.get(op["key"], source)
            except ClusterError as exc:
                # A dead source or a mid-repair route: pick another
                # source and go again; anything else is a failure.
                if exc.code in ("unknown_node", "not_hosted") and attempt < 3:
                    continue
                failures += 1
                errors.append(
                    f"op {op['index']} ({op['op']}): [{exc.code}] {exc}"
                )
                return
            break
        latency_ms = (now() - op["scheduled"]) * 1000.0
        record = {
            "index": op["index"],
            "op": op["op"],
            "key": op["key"],
            "source": source,
            "scheduled_s": op["scheduled"],
            "latency_ms": latency_ms,
            "success": bool(reply.get("success")),
            "hops": int(reply.get("hops", -1)),
        }
        if op["op"] == "put":
            stored = bool(reply.get("stored"))
            record["acked"] = stored
            record["replicas"] = int(reply.get("replicas", 1))
            if stored:
                acked[op["key"]] = acked.get(op["key"], 0) + 1
        else:
            record["found"] = bool(reply.get("found"))
        results.append(record)

    async def dispatch() -> None:
        tasks = []
        for index, op in enumerate(operations):
            delay = op["scheduled"] - now()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.create_task(run_op(op, pool[index % len(pool)]))
            )
        if tasks:
            await asyncio.gather(*tasks)

    async def drive_churn() -> None:
        for event in events:
            delay = event.time - now()
            if delay > 0:
                await asyncio.sleep(delay)
            entry: Dict[str, object] = {
                "scheduled_s": event.time,
                "action": event.action,
                "node": event.node,
            }
            try:
                if event.action == "crash":
                    if event.node not in directory:
                        entry["skipped"] = "not in directory"
                    else:
                        reply = await control.crash(event.node)
                        entry.update(
                            lost_pairs=reply.get("lost_pairs"),
                            route_repairs=reply.get("route_repairs"),
                            repushed_pairs=reply.get("repushed_pairs"),
                            repair_ms=reply.get("repair_ms"),
                        )
                else:
                    via = sorted(directory)[0]
                    reply = await control.join(event.node, via)
                    entry.update(
                        repushed_pairs=reply.get("repushed_pairs"),
                    )
            except ClusterError as exc:
                entry["skipped"] = f"[{exc.code}] {exc}"
            churn_log.append(entry)

    try:
        await asyncio.gather(dispatch(), drive_churn())
        open_elapsed = now()

        # ----------------------------------------------------------
        # verification sweep: every acknowledged PUT must be readable
        # (directly or via read-repair) — the zero-loss acceptance bar.
        # ----------------------------------------------------------
        verify_latencies: List[float] = []
        lost_keys: List[str] = []
        for index, key in enumerate(sorted(acked)):
            t0 = time.perf_counter()
            try:
                reply = await control.get(key, alive_source(0.0, index))
            except ClusterError as exc:
                lost_keys.append(key)
                errors.append(f"verify {key}: [{exc.code}] {exc}")
                continue
            verify_latencies.append((time.perf_counter() - t0) * 1000.0)
            if not reply.get("found"):
                lost_keys.append(key)
    finally:
        await control.close()
        for client in pool:
            await client.close()
        await cluster.stop()

    open_latencies = [r["latency_ms"] for r in results]
    put_latencies = [r["latency_ms"] for r in results if r["op"] == "put"]
    get_latencies = [r["latency_ms"] for r in results if r["op"] == "get"]
    crashes = [e for e in churn_log if e["action"] == "crash"]
    executed = [e for e in crashes if "repair_ms" in e]
    repair_windows = [float(e["repair_ms"]) for e in executed]
    acked_writes = sum(acked.values())
    puts = sum(1 for op in operations if op["op"] == "put")
    report: Dict[str, object] = {
        "schema": NET_BENCH_SCHEMA,
        "mode": "open-churn",
        "complete": len(results) + failures == len(operations),
        "build": dict(build),
        "servers": servers,
        "replicas": replicas,
        "clients": len(pool),
        "seed": seed,
        "retry": {
            "budget": retry.budget,
            "base_delay": retry.base_delay,
            "multiplier": retry.multiplier,
            "max_delay": retry.max_delay,
        },
        "timeout_s": timeout,
        "ops": {
            "total": len(operations),
            "completed": len(results),
            "lookups": 0,
            "puts": puts,
            "gets": len(operations) - puts,
            "failures": failures,
            "retries": (
                sum(client.retries for client in pool) + control.retries
            ),
        },
        "latency_ms": _latency_block(open_latencies),
        "open_loop": {
            "rate_target_ops_per_s": rate,
            "rate_achieved_ops_per_s": (
                len(results) / open_elapsed if open_elapsed > 0 else 0.0
            ),
            "duration_s": open_elapsed,
            "key_universe": key_universe,
            "put_fraction": put_fraction,
            "latency_ms": {
                "all": _latency_block(open_latencies),
                "put": _latency_block(put_latencies),
                "get": _latency_block(get_latencies),
            },
        },
        "closed_loop": {
            "verification_gets": len(acked),
            "latency_ms": _latency_block(verify_latencies),
        },
        "throughput_ops_per_s": (
            len(results) / open_elapsed if open_elapsed > 0 else 0.0
        ),
        "elapsed_s": open_elapsed,
        "churn": {
            "plan": {
                "seed": churn.seed,
                "kills": churn.kills,
                "rejoin": churn.rejoin,
                "start": churn.start,
                "end": churn.end,
            },
            "events": churn_log,
            "crashes": len(executed),
            "joins": sum(
                1
                for e in churn_log
                if e["action"] == "join" and "skipped" not in e
            ),
            "skipped": sum(1 for e in churn_log if "skipped" in e),
            "acked_writes": acked_writes,
            "acked_keys": len(acked),
            "lost_acked_keys": len(lost_keys),
            "lost_keys": lost_keys[:20],
            "survival_rate": (
                1.0 - len(lost_keys) / len(acked) if acked else 1.0
            ),
            "under_replication_ms": {
                "mean": mean(repair_windows),
                "max": max(repair_windows) if repair_windows else 0.0,
            },
        },
        "errors": errors[:20],
    }
    return report


def run_churnstorm(
    build: Dict[str, object],
    servers: int = 4,
    replicas: int = 2,
    rate: float = 200.0,
    operations: int = 400,
    churn: Optional[ChurnPlan] = None,
    seed: int = 42,
    retry: Optional[RetryPolicy] = None,
    timeout: float = 5.0,
    clients: int = 8,
    key_universe: int = 64,
    put_fraction: float = 0.5,
) -> Dict[str, object]:
    """Run one open-loop churn scenario and return the bench report.

    Boots a private :class:`LocalCluster` with ``replicas``-way
    leaf-set replication, drives ``operations`` Poisson-scheduled
    PUT/GET operations at ``rate`` ops/s while the ``churn`` plan
    kills and rejoins virtual nodes mid-run, then reads back every
    acknowledged key.  The ``churn`` report section carries the
    survival rate (1.0 = zero acknowledged writes lost) and the
    under-replication windows of each crash.
    """
    return asyncio.run(
        _churnstorm(
            build,
            servers,
            replicas,
            rate,
            operations,
            churn if churn is not None else ChurnPlan(seed=seed),
            seed,
            retry if retry is not None else RetryPolicy(),
            timeout,
            clients,
            key_universe,
            put_fraction,
        )
    )
