"""LocalCluster: boot a built overlay as real servers on loopback.

The harness behind ``repro serve`` and the self-hosting mode of
``repro loadgen``: it partitions a :class:`~repro.dht.base.Network`'s
live nodes round-robin across ``servers`` :class:`NodeService`
instances, binds each to an OS-assigned loopback port, and publishes
one shared *directory* (node name -> ``[host, port]``) that every
service and every :class:`~repro.net.client.ClusterClient` resolves
through.  Because the directory is one dict object shared by all
services, a JOIN handled by any server is immediately routable from
everywhere.

A running cluster can describe itself as a *spec* — a JSON document
carrying the directory plus the deterministic build recipe (protocol,
dimension/count, seed).  ``repro serve`` writes the spec to disk so a
separately-launched ``repro loadgen --cluster-file`` can both attach to
the live servers **and** rebuild the identical network locally for
hop-path parity checking.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Sequence

from repro.dht.base import Network
from repro.net.client import ClusterClient, MAX_PAYLOAD
from repro.net.server import NodeService
from repro.sim.faults import RetryPolicy
from repro.sim.latency import LatencyModel

__all__ = ["SPEC_SCHEMA", "LocalCluster", "load_spec", "serve_forever"]

#: Schema tag of the cluster spec document.
SPEC_SCHEMA = "repro/cluster-spec/v1"


class LocalCluster:
    """``servers`` asyncio node servers jointly hosting ``network``.

    ``build`` (optional) is the deterministic recipe the network was
    built from — e.g. ``{"protocol": "cycloid", "dimension": 4,
    "seed": 42}`` — embedded verbatim in :meth:`spec` so attaching
    tools can reconstruct the same overlay.
    """

    def __init__(
        self,
        network: Network,
        servers: int = 4,
        host: str = "127.0.0.1",
        max_payload: int = MAX_PAYLOAD,
        timeout: float = 10.0,
        build: Optional[Dict[str, object]] = None,
        replicas: int = 1,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if servers < 1:
            raise ValueError("a cluster needs at least one server")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        names = [str(node.name) for node in network.live_nodes()]
        if not names:
            raise ValueError("network has no live nodes to serve")
        servers = min(servers, len(names))
        partitions: List[List[str]] = [[] for _ in range(servers)]
        for index, name in enumerate(names):
            partitions[index % servers].append(name)
        self.network = network
        self.build = dict(build) if build else {}
        self.replicas = replicas
        #: the shared link-delay model every service sleeps by (§S25).
        self.latency = latency
        #: node name -> [host, port]; one dict shared by every service.
        self.directory: Dict[str, Sequence[object]] = {}
        self.services: List[NodeService] = [
            NodeService(
                network,
                partition,
                host,
                max_payload=max_payload,
                timeout=timeout,
                replicas=replicas,
                latency=latency,
            )
            for partition in partitions
        ]
        for service in self.services:
            service.directory = self.directory
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "LocalCluster":
        for service in self.services:
            await service.start()
            for name in service.hosted:
                self.directory[name] = list(service.address)
        self._started = True
        return self

    async def stop(self) -> None:
        for service in self.services:
            await service.stop()
        self._started = False

    async def __aenter__(self) -> "LocalCluster":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    @property
    def addresses(self) -> List[Sequence[object]]:
        """The distinct server addresses, service order."""
        return [list(service.address) for service in self.services]

    def client(
        self,
        retry: Optional[RetryPolicy] = None,
        timeout: float = 5.0,
    ) -> ClusterClient:
        """A client resolving through this cluster's live directory."""
        if not self._started:
            raise RuntimeError("cluster is not started")
        return ClusterClient(self.directory, retry=retry, timeout=timeout)

    # ------------------------------------------------------------------
    # spec
    # ------------------------------------------------------------------

    def spec(self) -> Dict[str, object]:
        """The attachable description of this running cluster."""
        if not self._started:
            raise RuntimeError("cluster is not started")
        spec: Dict[str, object] = {
            "schema": SPEC_SCHEMA,
            "build": dict(self.build),
            "servers": len(self.services),
            "replicas": self.replicas,
            "nodes": len(self.directory),
            "directory": {
                name: list(address)
                for name, address in sorted(self.directory.items())
            },
        }
        if self.latency is not None:
            spec["latency"] = self.latency.to_config()
        return spec

    def write_spec(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.spec(), stream, indent=2, sort_keys=True)
            stream.write("\n")


def load_spec(path: str) -> Dict[str, object]:
    """Read and validate a cluster spec written by :meth:`write_spec`."""
    with open(path, "r", encoding="utf-8") as stream:
        spec = json.load(stream)
    if not isinstance(spec, dict) or spec.get("schema") != SPEC_SCHEMA:
        raise ValueError(
            f"{path!r} is not a {SPEC_SCHEMA} cluster spec"
        )
    directory = spec.get("directory")
    if not isinstance(directory, dict) or not directory:
        raise ValueError(f"cluster spec {path!r} has no directory")
    return spec


async def serve_forever(
    cluster: LocalCluster, lifetime: Optional[float] = None
) -> None:
    """Run a started cluster until cancelled (or for ``lifetime`` s)."""
    try:
        if lifetime is not None:
            await asyncio.sleep(lifetime)
        else:
            await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
