"""Cluster client: multiplexed RPC connections with budgeted retries.

:class:`RpcConnection` is the transport primitive shared by clients and
servers (peer forwarding): one TCP connection carrying many in-flight
frames, matched to awaiting callers by rpc id.  :class:`ClusterClient`
layers the cluster operations on top — it resolves which server hosts a
node through the cluster directory, applies a per-RPC timeout, and
retries failed attempts under the shared
:class:`~repro.sim.faults.RetryPolicy`: the budget has exactly the
lookup engine's ``retry_budget`` semantics (continuations after a
failure; exhausted budget fails the operation), with capped exponential
backoff standing in for the engine's zero-cost simulated re-probes.

All cluster operations (LOOKUP/PUT/GET) are idempotent, so re-sending
after a timeout is safe by construction.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.net.codec import (
    Frame,
    FrameError,
    MAX_PAYLOAD,
    MessageType,
    error_is_retryable,
    read_frame,
    write_frame,
)
from repro.sim.faults import RetryPolicy

__all__ = ["ClusterError", "RpcConnection", "ClusterClient"]

Address = Tuple[str, int]


class ClusterError(RuntimeError):
    """A cluster operation failed (server error, or retry budget spent).

    ``code`` is the server's machine-readable classification
    (:data:`repro.net.codec.ERROR_CODES`); ``transport`` marks the two
    client-side exhaustion cases (``rpc_failed`` after the retry budget,
    ``unknown_node`` from a directory miss).  ``retryable`` says whether
    re-issuing the operation could succeed — churn-aware callers branch
    on it instead of string-matching the message.
    """

    def __init__(self, message: str, code: str = "rpc_failed") -> None:
        super().__init__(message)
        self.code = code

    @property
    def retryable(self) -> bool:
        return error_is_retryable(self.code)


class RpcConnection:
    """One multiplexed frame connection to a node server.

    Requests are written under a lock (frames must not interleave on the
    stream); replies are dispatched to awaiting futures by rpc id from a
    single background reader task, so any number of requests can be in
    flight concurrently.
    """

    def __init__(
        self, host: str, port: int, max_payload: int = MAX_PAYLOAD
    ) -> None:
        self.host = host
        self.port = port
        self.max_payload = max_payload
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._send_lock = asyncio.Lock()
        self._pending: Dict[int, asyncio.Future] = {}
        self._rpc_ids = itertools.count(1)
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._closed

    async def connect(self) -> "RpcConnection":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await read_frame(self._reader, self.max_payload)
                future = self._pending.pop(frame.rpc, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            FrameError,
            OSError,
        ) as exc:
            self._fail_pending(exc)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionResetError("connection closed"))
            raise

    def _fail_pending(self, exc: Exception) -> None:
        self._closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionResetError(f"connection lost: {exc}")
                )

    async def request(
        self,
        kind: MessageType,
        payload: Dict[str, object],
        timeout: Optional[float] = None,
    ) -> Frame:
        """Send one request and await its reply frame.

        Raises ``asyncio.TimeoutError`` when the reply does not arrive
        in ``timeout`` seconds and ``ConnectionError`` when the
        connection drops with the request in flight.
        """
        if not self.connected:
            raise ConnectionResetError("connection is closed")
        rpc = next(self._rpc_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rpc] = future
        try:
            async with self._send_lock:
                write_frame(
                    self._writer, kind, rpc, payload, self.max_payload
                )
                await self._writer.drain()
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(rpc, None)

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(ConnectionResetError("closed"))


class ClusterClient:
    """Client for a running node-server cluster.

    ``directory`` maps node name -> ``(host, port)`` of the server
    hosting it (a :class:`~repro.net.cluster.LocalCluster` hands out its
    live directory, so joins done through any client become visible to
    all of them).  Each operation result is the server's reply payload
    plus an ``"rpc"`` key carrying the rpc id the winning attempt used —
    the id that tags the live trace lines.
    """

    def __init__(
        self,
        directory: Mapping[str, Sequence[object]],
        retry: Optional[RetryPolicy] = None,
        timeout: float = 5.0,
        max_payload: int = MAX_PAYLOAD,
    ) -> None:
        self.directory = directory
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.max_payload = max_payload
        self._connections: Dict[Address, RpcConnection] = {}
        self._connect_lock = asyncio.Lock()
        #: total attempts that failed and were retried (telemetry).
        self.retries = 0

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def address_of(self, name: str) -> Address:
        try:
            host, port = self.directory[name]
        except KeyError:
            raise ClusterError(
                f"no server hosts node {name!r}", code="unknown_node"
            ) from None
        return str(host), int(port)

    def addresses(self) -> Tuple[Address, ...]:
        """Every distinct server address, in stable order."""
        return tuple(
            sorted({(str(h), int(p)) for h, p in self.directory.values()})
        )

    async def _connection(self, address: Address) -> RpcConnection:
        # Serialised: two concurrent requests to one address must share
        # a connection, not orphan the race loser's reader task.
        async with self._connect_lock:
            connection = self._connections.get(address)
            if connection is None or not connection.connected:
                connection = RpcConnection(*address, self.max_payload)
                await connection.connect()
                self._connections[address] = connection
            return connection

    async def _drop(self, address: Address) -> None:
        connection = self._connections.pop(address, None)
        if connection is not None:
            await connection.close()

    async def _request(
        self,
        address: Address,
        kind: MessageType,
        payload: Dict[str, object],
    ) -> Dict[str, object]:
        """One RPC under the retry policy; returns the reply payload
        with the rpc id attached."""
        attempt = 0
        while True:
            try:
                connection = await self._connection(address)
                frame = await connection.request(kind, payload, self.timeout)
            except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
                await self._drop(address)
                if attempt >= self.retry.budget:
                    raise ClusterError(
                        f"{kind.name} to {address[0]}:{address[1]} failed "
                        f"after {attempt + 1} attempts "
                        f"(retry budget {self.retry.budget}): {exc}",
                        code="rpc_failed",
                    ) from exc
                await asyncio.sleep(self.retry.delay(attempt))
                attempt += 1
                self.retries += 1
                continue
            if frame.kind == MessageType.ERROR:
                code = str(frame.payload.get("code", "internal"))
                message = str(
                    frame.payload.get("error", "unspecified server error")
                )
                # A *retryable* coded error (e.g. step_failed while a
                # peer's crash is being repaired) spends retry budget
                # like a transport failure; fatal codes fail at once.
                if error_is_retryable(code) and attempt < self.retry.budget:
                    await asyncio.sleep(self.retry.delay(attempt))
                    attempt += 1
                    self.retries += 1
                    continue
                raise ClusterError(message, code=code)
            result = dict(frame.payload)
            result["rpc"] = frame.rpc
            return result

    # ------------------------------------------------------------------
    # cluster operations
    # ------------------------------------------------------------------

    async def lookup(
        self, key: str, source: str, lookup_id: Optional[int] = None
    ) -> Dict[str, object]:
        """Route a lookup for ``key`` from the virtual node ``source``."""
        payload: Dict[str, object] = {"key": key, "source": source}
        if lookup_id is not None:
            payload["lookup"] = lookup_id
        return await self._request(
            self.address_of(source), MessageType.LOOKUP, payload
        )

    async def put(
        self, key: str, value: object, source: str
    ) -> Dict[str, object]:
        """Route from ``source`` to the key's owner and store there."""
        return await self._request(
            self.address_of(source),
            MessageType.PUT,
            {"key": key, "value": value, "source": source},
        )

    async def get(self, key: str, source: str) -> Dict[str, object]:
        """Route from ``source`` to the key's owner and read the value."""
        return await self._request(
            self.address_of(source),
            MessageType.GET,
            {"key": key, "source": source},
        )

    async def ping(self, address: Address) -> Dict[str, object]:
        """Health-check one server directly by address."""
        return await self._request(
            (str(address[0]), int(address[1])), MessageType.PING, {}
        )

    async def join(self, name: str, via: str) -> Dict[str, object]:
        """Join a new virtual node, hosted by the server that holds
        ``via``; the cluster directory gains the newcomer."""
        return await self._request(
            self.address_of(via), MessageType.JOIN, {"name": name}
        )

    async def leave(self, name: str) -> Dict[str, object]:
        """Gracefully retire the virtual node ``name`` from its server."""
        return await self._request(
            self.address_of(name), MessageType.LEAVE, {"name": name}
        )

    async def crash(self, name: str) -> Dict[str, object]:
        """Ungracefully kill the virtual node ``name`` (S24): no
        notifications, no data handover — the churn harness's kill
        switch.  The reply carries the repair telemetry (lost pairs,
        route repairs, rereplication pushes, repair window)."""
        return await self._request(
            self.address_of(name), MessageType.CRASH, {"name": name}
        )

    async def repair(self, address: Address) -> Dict[str, object]:
        """Ask one server to rescan its shard and re-push
        under-replicated pairs (active rereplication, S24)."""
        return await self._request(
            (str(address[0]), int(address[1])), MessageType.REPAIR, {}
        )

    async def close(self) -> None:
        connections, self._connections = self._connections, {}
        for connection in connections.values():
            await connection.close()

    async def __aenter__(self) -> "ClusterClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
