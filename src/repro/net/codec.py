"""Versioned, length-prefixed wire protocol of the live cluster (S22).

Every message is one *frame*: a fixed 16-byte header followed by a
UTF-8 JSON object payload.

======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       2     magic ``b"RP"``
2       1     protocol version (:data:`PROTOCOL_VERSION`)
3       1     message type (:class:`MessageType`)
4       8     rpc id, unsigned big-endian (echoed verbatim in the
              matching ``REPLY``/``ERROR`` frame)
12      4     payload byte length, unsigned big-endian
16      n     payload: UTF-8 JSON **object**
======  ====  =====================================================

Client-facing request types are ``JOIN``, ``LOOKUP``, ``PUT``, ``GET``,
``PING``, ``LEAVE`` and ``CRASH`` (ungraceful kill of one hosted
virtual node, S24); servers forward in-flight lookups to each other
with ``STEP`` continuations, move replica copies with ``REPLICATE`` /
``FETCH`` direct-shelf operations, trigger each other's rereplication
scans with ``REPAIR``, and answer everything with ``REPLY`` or
``ERROR``.  Anything that violates the frame contract — wrong magic,
unknown version or type, a payload longer than ``max_payload``, bytes
that are not JSON, or JSON that is not an object — raises
:class:`FrameError` with a human-readable reason; servers reject the
frame (and close the now-unsynchronised connection) without crashing.

``ERROR`` payloads carry a human-readable ``error`` string **and** a
machine-readable ``code`` drawn from :data:`ERROR_CODES`, so clients
can tell a retryable condition (a ``step_failed`` mid-churn) from a
fatal one (``unknown_node``) without string-matching.
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "MAGIC",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "MessageType",
    "ERROR_CODES",
    "error_is_retryable",
    "FrameError",
    "Frame",
    "encode_frame",
    "decode_header",
    "decode_frame",
    "read_frame",
    "write_frame",
]

MAGIC = b"RP"
PROTOCOL_VERSION = 1

#: Default upper bound on a frame's payload.  A lookup continuation is a
#: few KB even at paper scale (HOP_LIMIT-long paths included), so 1 MiB
#: leaves two orders of magnitude of headroom while still bounding what
#: one malicious or broken peer can make a server buffer.
MAX_PAYLOAD = 1 << 20

_HEADER = struct.Struct(">2sBBQI")
HEADER_SIZE = _HEADER.size  # 16 bytes
_MAX_RPC = (1 << 64) - 1


class MessageType(enum.IntEnum):
    """Frame types of protocol version 1."""

    JOIN = 1
    LOOKUP = 2
    PUT = 3
    GET = 4
    PING = 5
    LEAVE = 6
    #: server-to-server lookup continuation (one routed hop crossing a
    #: service boundary); never sent by clients.
    STEP = 7
    REPLY = 8
    ERROR = 9
    #: ungraceful kill of one hosted virtual node (no notifications, no
    #: data handover) — the churn harness's kill switch (S24).
    CRASH = 10
    #: server-to-server direct store on a named node's shelf (replica
    #: push); deliberately bypasses routing.
    REPLICATE = 11
    #: server-to-server direct read of a named node's shelf (replica
    #: probe for read-repair); deliberately bypasses routing.
    FETCH = 12
    #: ask a server to scan its shard and re-push under-replicated
    #: pairs to the current replica sets (active rereplication).
    REPAIR = 13


#: Machine-readable ``code`` values an ``ERROR`` payload may carry.
#: ``retryable`` marks the transient subset: re-sending the same
#: request may succeed once membership/repair catches up, so clients
#: spend retry budget on them instead of failing the operation.
ERROR_CODES: Dict[str, bool] = {
    # the connection's byte stream violated the frame contract
    "bad_frame": False,
    # the named virtual node is unknown, dead, or unhosted anywhere
    "unknown_node": False,
    # the named node exists but is not hosted by the addressed server
    "not_hosted": False,
    # a STEP continuation landed on a server that does not host it
    "misrouted": True,
    # a STEP/REPLICATE/FETCH forward to a peer server failed (the peer
    # may have just crashed; lazy repair reroutes on retry)
    "step_failed": True,
    # the routing walk exhausted Network.HOP_LIMIT
    "hop_limit": False,
    # a STEP continuation named an operation this server cannot run
    "unknown_operation": False,
    # the request payload is well-framed but semantically invalid
    "bad_request": False,
    # the overlay's join/leave/fail protocol itself refused
    "membership_failed": False,
    # an unexpected exception; the server survived, the request did not
    "internal": False,
}


def error_is_retryable(code: object) -> bool:
    """Whether an ``ERROR`` payload ``code`` marks a transient failure."""
    return bool(ERROR_CODES.get(str(code), False))


class FrameError(ValueError):
    """A frame violated the wire contract; ``reason`` says how."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its type, rpc id and JSON payload."""

    kind: MessageType
    rpc: int
    payload: Dict[str, object]


def encode_frame(
    kind: MessageType,
    rpc: int,
    payload: Dict[str, object],
    max_payload: int = MAX_PAYLOAD,
) -> bytes:
    """Serialise one frame; raises :class:`FrameError` on contract
    violations (so an oversized *outgoing* message is caught before it
    hits the socket)."""
    kind = MessageType(kind)
    if not 0 <= rpc <= _MAX_RPC:
        raise FrameError(f"rpc id {rpc} outside unsigned 64-bit range")
    if not isinstance(payload, dict):
        raise FrameError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload is not JSON-serialisable: {exc}") from None
    if len(body) > max_payload:
        raise FrameError(
            f"payload of {len(body)} bytes exceeds the "
            f"{max_payload}-byte frame limit"
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, rpc, len(body)) + body


def decode_header(
    header: bytes, max_payload: int = MAX_PAYLOAD
) -> Tuple[MessageType, int, int]:
    """Validate a 16-byte header; returns ``(type, rpc, payload_length)``."""
    if len(header) != HEADER_SIZE:
        raise FrameError(
            f"header is {len(header)} bytes, expected {HEADER_SIZE}"
        )
    magic, version, kind_value, rpc, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"unsupported protocol version {version} "
            f"(this codec speaks {PROTOCOL_VERSION})"
        )
    try:
        kind = MessageType(kind_value)
    except ValueError:
        raise FrameError(f"unknown message type {kind_value}") from None
    if length > max_payload:
        raise FrameError(
            f"declared payload of {length} bytes exceeds the "
            f"{max_payload}-byte frame limit"
        )
    return kind, rpc, length


def _decode_payload(kind: MessageType, rpc: int, body: bytes) -> Frame:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    return Frame(kind, rpc, payload)


def decode_frame(buffer: bytes, max_payload: int = MAX_PAYLOAD) -> Frame:
    """Decode one complete frame from ``buffer`` (must be exact)."""
    kind, rpc, length = decode_header(buffer[:HEADER_SIZE], max_payload)
    body = buffer[HEADER_SIZE:]
    if len(body) != length:
        raise FrameError(
            f"payload is {len(body)} bytes, header declared {length}"
        )
    return _decode_payload(kind, rpc, body)


async def read_frame(
    reader: asyncio.StreamReader, max_payload: int = MAX_PAYLOAD
) -> Frame:
    """Read one frame from ``reader``.

    Raises :class:`FrameError` on any contract violation (the stream is
    unsynchronised afterwards — close the connection) and
    :class:`asyncio.IncompleteReadError` on EOF mid-frame.
    """
    header = await reader.readexactly(HEADER_SIZE)
    kind, rpc, length = decode_header(header, max_payload)
    body = await reader.readexactly(length) if length else b""
    return _decode_payload(kind, rpc, body)


def write_frame(
    writer: asyncio.StreamWriter,
    kind: MessageType,
    rpc: int,
    payload: Dict[str, object],
    max_payload: int = MAX_PAYLOAD,
) -> None:
    """Encode and queue one frame on ``writer`` (call ``drain`` after)."""
    writer.write(encode_frame(kind, rpc, payload, max_payload))
