"""Viceroy DHT (Malkhi, Naor & Ratajczak, PODC 2002).

A constant-degree DHT approximating a butterfly network over the real
identifier space [0, 1).  Each node holds seven links: general-ring
predecessor/successor, level-ring predecessor/successor, two down links
and one up link.  Joins and departures update both incoming and outgoing
connections, so lookups never hit a departed node (paper §4.3) — at a
maintenance cost the paper's conclusions weigh against Cycloid.
"""

from repro.viceroy.network import ViceroyNetwork
from repro.viceroy.node import ViceroyNode

__all__ = ["ViceroyNetwork", "ViceroyNode"]
