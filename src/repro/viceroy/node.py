"""Viceroy node state.

A node carries an identity drawn uniformly from [0, 1) and a butterfly
*level*.  The identity is fixed; the level is selected on arrival from
``[1, log2(n0)]`` where ``n0`` is the node's estimate of the network
size (paper §2.4 / Viceroy §2).

Because Viceroy repairs both incoming and outgoing connections on every
join and leave, a node's seven links are always consistent with the
current membership; the simulator therefore derives them from the
membership on demand (see :class:`repro.viceroy.network.ViceroyNetwork`)
rather than caching copies that could never go stale anyway.
"""

from __future__ import annotations

from repro.dht.base import Node

__all__ = ["ViceroyNode", "ID_BITS", "ID_SCALE"]

#: Identities live on a discretised [0, 1) ring with this resolution,
#: which keeps ring arithmetic exact (no float-comparison pitfalls).
ID_BITS = 52
ID_SCALE = 1 << ID_BITS


class ViceroyNode(Node):
    """A Viceroy participant."""

    __slots__ = ("id", "level")

    def __init__(self, name: object, node_id: int, level: int) -> None:
        super().__init__(name)
        if not 0 <= node_id < ID_SCALE:
            raise ValueError(f"id {node_id} outside the [0, 1) ring")
        if level < 1:
            raise ValueError("level must be >= 1")
        self.id = node_id
        self.level = level

    @property
    def node_id(self) -> int:
        return self.id

    @property
    def identity(self) -> float:
        """The node's identity as the real number the paper uses."""
        return self.id / ID_SCALE

    @property
    def degree(self) -> int:
        """Viceroy's constant link budget (Table 1)."""
        return 7
