"""Viceroy overlay network simulator.

Routing follows the three phases of the Viceroy lookup (paper §2.4):

* **ascending** — climb the up links to a level-1 node;
* **descending** — at level ``l``, follow the *left* down link when the
  clockwise distance to the key is below ``2^-l``, otherwise the *right*
  down link (at identity ``+ 2^-l``); stop when no down link exists;
* **traverse** — approach the key's successor along level-ring and
  general-ring links.

Because joins and departures repair all incoming and outgoing links
(§4.3: "before a node leaves and after a node joins, all the related
nodes are updated"), links are derived from the live membership, lookups
never observe a stale pointer, and the timeout count is identically
zero — the behaviour Tables 4 and 5 report.  The flip side the paper
highlights is maintenance cost, which :meth:`ViceroyNetwork.join` /
:meth:`leave` account for via :attr:`maintenance_updates`.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dht.base import Network
from repro.dht.hashing import consistent_hash
from repro.dht.ring import SortedRing, in_interval
from repro.dht.routing import RoutingDecision
from repro.util.bitops import clockwise_distance
from repro.util.rng import make_rng
from repro.viceroy.node import ID_BITS, ID_SCALE, ViceroyNode

__all__ = ["ViceroyNetwork"]

PHASE_ASCENDING = "ascending"
PHASE_DESCENDING = "descending"
PHASE_TRAVERSE = "traverse"

#: Lookup stages, advanced monotonically by the step function.
_STAGE_ASCEND = 0
_STAGE_DESCEND = 1
_STAGE_TRAVERSE = 2


class _ButterflyWalk:
    """Per-lookup stage cursor: ascend, then descend, then traverse."""

    __slots__ = ("stage",)

    def __init__(self) -> None:
        self.stage = _STAGE_ASCEND


class ViceroyNetwork(Network):
    """A Viceroy butterfly over the discretised [0, 1) identifier ring."""

    protocol_name = "viceroy"
    ROUTING_PHASES = (PHASE_ASCENDING, PHASE_DESCENDING, PHASE_TRAVERSE)

    def __init__(self, seed: Optional[int] = None) -> None:
        super().__init__()
        self.ring: SortedRing[ViceroyNode] = SortedRing(ID_BITS)
        #: level -> sorted identities of nodes on that level
        self._levels: Dict[int, List[int]] = {}
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def with_random_ids(
        cls, count: int, seed: Optional[int] = None
    ) -> "ViceroyNetwork":
        """``count`` nodes with uniform identities and uniform levels in
        ``[1, round(log2 count)]`` (the paper's level-selection rule with
        the network size as the estimate)."""
        network = cls(seed)
        max_level = max(1, round(math.log2(count))) if count > 1 else 1
        for index in range(count):
            node_id = network._free_id(f"v{index}")
            level = network._rng.randint(1, max_level)
            network._insert(ViceroyNode(f"v{index}", node_id, level))
        return network

    def _free_id(self, name: object) -> int:
        node_id = consistent_hash(name) % ID_SCALE
        while node_id in self.ring:
            node_id = (node_id + 1) % ID_SCALE
        return node_id

    def _insert(self, node: ViceroyNode) -> None:
        self.ring.add(node.id, node)
        row = self._levels.setdefault(node.level, [])
        bisect.insort(row, node.id)

    def _evict(self, node: ViceroyNode) -> None:
        self.ring.remove(node.id)
        row = self._levels[node.level]
        row.remove(node.id)
        if not row:
            del self._levels[node.level]

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def live_nodes(self) -> Sequence[ViceroyNode]:
        return self.ring.nodes()

    @property
    def size(self) -> int:
        return len(self.ring)

    def key_id(self, key: object) -> int:
        return consistent_hash(key) % ID_SCALE

    def owner_of_id(self, key_id: int) -> ViceroyNode:
        """Keys are stored at their successor (paper Table 3)."""
        return self.ring.successor(key_id)

    # ------------------------------------------------------------------
    # links (always consistent with the membership; see module docs)
    # ------------------------------------------------------------------

    def up_link(self, node: ViceroyNode) -> Optional[ViceroyNode]:
        """The nearest level ``l-1`` node clockwise of the identity."""
        if node.level <= 1:
            return None
        return self._level_successor(node.level - 1, node.id)

    def down_links(
        self, node: ViceroyNode
    ) -> Tuple[Optional[ViceroyNode], Optional[ViceroyNode]]:
        """(left, right) down links into level ``l+1``.

        Left sits near the node's identity; right near identity +
        ``2^-l`` — the butterfly's long-range edge.
        """
        left = self._level_successor(node.level + 1, node.id)
        offset = ID_SCALE >> min(node.level, ID_BITS)
        right = self._level_successor(
            node.level + 1, (node.id + offset) % ID_SCALE
        )
        return left, right

    def level_ring(
        self, node: ViceroyNode
    ) -> Tuple[Optional[ViceroyNode], Optional[ViceroyNode]]:
        """(previous, next) on the node's level ring; ``None`` if alone."""
        row = self._levels.get(node.level, ())
        if len(row) < 2:
            return None, None
        index = bisect.bisect_left(row, node.id)
        prev_id = row[(index - 1) % len(row)]
        next_id = row[(index + 1) % len(row)]
        return self.ring.get(prev_id), self.ring.get(next_id)

    def general_ring(
        self, node: ViceroyNode
    ) -> Tuple[Optional[ViceroyNode], Optional[ViceroyNode]]:
        """(predecessor, successor) on the general ring; ``None`` if alone."""
        if len(self.ring) < 2:
            return None, None
        return (
            self.ring.predecessor(node.id),
            self.ring.successor((node.id + 1) % ID_SCALE),
        )

    def _level_successor(
        self, level: int, point: int
    ) -> Optional[ViceroyNode]:
        row = self._levels.get(level)
        if not row:
            return None
        index = bisect.bisect_left(row, point % ID_SCALE)
        return self.ring.get(row[index % len(row)])

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def begin_route(
        self, source: ViceroyNode, key_id: int
    ) -> _ButterflyWalk:
        return _ButterflyWalk()

    def pack_route_state(self, state: _ButterflyWalk) -> object:
        """Wire form of the stage cursor (repro.net, DESIGN S22)."""
        return {"stage": state.stage}

    def unpack_route_state(self, blob: object, key_id: int) -> _ButterflyWalk:
        walk = _ButterflyWalk()
        walk.stage = blob["stage"]
        return walk

    def _believes_responsible(self, node: ViceroyNode, key_id: int) -> bool:
        predecessor, _ = self.general_ring(node)
        if predecessor is None:
            return True  # singleton
        return in_interval(key_id, predecessor.id, node.id, ID_SCALE)

    def next_hop(
        self, current: ViceroyNode, key_id: int, walk: _ButterflyWalk
    ) -> RoutingDecision:
        # Timeouts are identically zero: joins/leaves repair every
        # incoming link (§4.3), so no hop ever contacts a dead node.
        if self._believes_responsible(current, key_id):
            return RoutingDecision.terminate()

        # Phase 1: ascend to a level-1 node.
        if walk.stage == _STAGE_ASCEND:
            if current.level > 1:
                up = self.up_link(current)
                if up is not None and up is not current:
                    return RoutingDecision.forward(up, PHASE_ASCENDING)
            walk.stage = _STAGE_DESCEND

        # Phase 2: descend the butterfly until no down link exists.
        if walk.stage == _STAGE_DESCEND:
            left, right = self.down_links(current)
            distance = clockwise_distance(current.id, key_id, ID_SCALE)
            threshold = ID_SCALE >> min(current.level, ID_BITS)
            target = left if distance < threshold else right
            if target is not None and target is not current:
                return RoutingDecision.forward(target, PHASE_DESCENDING)
            walk.stage = _STAGE_TRAVERSE

        # Phase 3: traverse via level-ring and general-ring links,
        # moving whichever direction around the ring is shorter and
        # never stepping past the key (the leaf-set-style wrap guard).
        predecessor, successor = self.general_ring(current)
        if successor is None:
            return RoutingDecision.terminate()
        if in_interval(key_id, current.id, successor.id, ID_SCALE):
            return RoutingDecision.forward(successor, PHASE_TRAVERSE)
        level_prev, level_next = self.level_ring(current)
        cw = clockwise_distance(current.id, key_id, ID_SCALE)
        ranked: List[Tuple[int, ViceroyNode]] = []
        offered = set()
        if cw <= ID_SCALE - cw:
            # Clockwise: candidates strictly between current and key.
            for candidate in (successor, level_next):
                if candidate is None or candidate is current:
                    continue
                if candidate.id in offered:
                    continue
                if not in_interval(
                    candidate.id, current.id, key_id, ID_SCALE
                ):
                    continue
                offered.add(candidate.id)
                ranked.append(
                    (
                        clockwise_distance(current.id, candidate.id, ID_SCALE),
                        candidate,
                    )
                )
        else:
            # Counter-clockwise (a down link overshot the key):
            # candidates in [key, current) — no node sits strictly
            # between the key and its successor, so this cannot skip
            # the owner.
            for candidate in (predecessor, level_prev):
                if candidate is None or candidate is current:
                    continue
                if candidate.id in offered:
                    continue
                if not in_interval(
                    candidate.id,
                    (key_id - 1) % ID_SCALE,
                    (current.id - 1) % ID_SCALE,
                    ID_SCALE,
                ):
                    continue
                offered.add(candidate.id)
                ranked.append(
                    (
                        clockwise_distance(candidate.id, current.id, ID_SCALE),
                        candidate,
                    )
                )
        if not ranked:
            return RoutingDecision.terminate()  # no progress; deliver here
        # Stable reverse sort: on equal progress the first-consulted
        # link keeps priority, matching the pre-fault tie-break.
        ranked.sort(key=lambda item: item[0], reverse=True)
        best = ranked[0][1]
        if self.fault_detection and len(ranked) > 1:
            # Links are always live here, but under message loss the
            # lower-progress link is still a useful ranked fallback.
            return RoutingDecision.forward(
                best,
                PHASE_TRAVERSE,
                alternates=tuple(
                    (candidate, PHASE_TRAVERSE) for _, candidate in ranked[1:]
                ),
            )
        return RoutingDecision.forward(best, PHASE_TRAVERSE)

    # ------------------------------------------------------------------
    # membership changes
    # ------------------------------------------------------------------

    def join(self, name: object) -> ViceroyNode:
        """Arrival: pick an identity and a level, splice into the rings,
        and repair every link that should now point at the newcomer."""
        self.invalidate_owner_cache()
        node_id = self._free_id(name)
        size = len(self.ring) + 1
        max_level = max(1, round(math.log2(size))) if size > 1 else 1
        node = ViceroyNode(name, node_id, self._rng.randint(1, max_level))
        self._insert(node)
        self.maintenance_updates += self._affected_by(node)
        return node

    def leave(self, node: ViceroyNode) -> None:
        """Graceful departure: every node holding a link to the leaver is
        repaired before it goes (why Viceroy shows zero timeouts but a
        high connectivity-maintenance bill)."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.maintenance_updates += self._affected_by(node)
        self.invalidate_owner_cache()
        node.alive = False
        self._evict(node)
        self._readjust_levels()

    def _readjust_levels(self) -> None:
        """Demote nodes whose level exceeds ``log2`` of the shrunken
        network — the level adjustment the paper notes "a node may need
        ... during its life time in the system" and charges to Viceroy's
        maintenance bill."""
        size = len(self.ring)
        if size < 1:
            return
        max_level = max(1, round(math.log2(size))) if size > 1 else 1
        too_deep = [level for level in self._levels if level > max_level]
        for level in too_deep:
            for node_id in list(self._levels[level]):
                node = self.ring.get(node_id)
                row = self._levels[level]
                row.remove(node_id)
                if not row:
                    del self._levels[level]
                node.level = self._rng.randint(1, max_level)
                bisect.insort(
                    self._levels.setdefault(node.level, []), node_id
                )
                self.maintenance_updates += 1

    def _affected_by(self, node: ViceroyNode) -> int:
        """Count nodes whose link set includes ``node`` (in-degree): its
        ring and level-ring neighbours plus every node whose up or down
        link resolves to it."""
        affected = 0
        for neighbor in self.general_ring(node):
            if neighbor is not None:
                affected += 1
        for neighbor in self.level_ring(node):
            if neighbor is not None:
                affected += 1
        # Up/down links are "first node of level L clockwise of a point";
        # the nodes pointing at `node` live on the adjacent levels only.
        for row_id in self._levels.get(node.level + 1, ()):
            other = self.ring.get(row_id)
            if other is not node and self.up_link(other) is node:
                affected += 1
        if node.level > 1:
            for row_id in self._levels.get(node.level - 1, ()):
                other = self.ring.get(row_id)
                if other is node:
                    continue
                left, right = self.down_links(other)
                if left is node or right is node:
                    affected += 1
        return affected

    def fail(self, node: ViceroyNode) -> None:
        """Silent failure.  Our simulator derives links from the live
        membership (they can never be stale), so a silent failure
        behaves like a leave whose repair bill is paid by failure
        detection instead of goodbye messages — we still charge it to
        :attr:`maintenance_updates`, as the paper's critique of
        Viceroy's maintenance cost would."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.maintenance_updates += self._affected_by(node)
        self.invalidate_owner_cache()
        node.alive = False
        self._evict(node)
        self._readjust_levels()

    def on_dead_entry(self, observer: ViceroyNode, dead: ViceroyNode) -> int:
        """Nothing to repair: Viceroy links are derived from the live
        membership on every consultation, so no per-node routing state
        can hold ``dead`` — a failed node is evicted from the rings by
        :meth:`fail` before any lookup can probe it.  Only message-loss
        retries, never dead-entry timeouts, occur under fault injection."""
        return 0

    def stabilize(self) -> None:
        """No-op: Viceroy repairs eagerly on join/leave, it does not run
        periodic stabilisation (paper §4.4)."""

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        total = 0
        for level, row in self._levels.items():
            assert row == sorted(row), f"level {level} ring out of order"
            total += len(row)
            for node_id in row:
                node = self.ring.get(node_id)
                assert node.level == level
        assert total == len(self.ring), "level rings disagree with ring"
