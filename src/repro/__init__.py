"""repro — a full reproduction of *Cycloid: A Constant-Degree and
Lookup-Efficient P2P Overlay Network* (Shen, Xu & Chen).

The package implements the Cycloid DHT (the paper's contribution) plus
the three comparison systems — Chord, Koorde and Viceroy — over a
common simulation substrate, together with the complete experiment
harness for every table and figure in the paper's evaluation.

Quickstart::

    from repro import CycloidNetwork

    net = CycloidNetwork.with_random_ids(500, dimension=8, seed=1)
    node = net.live_nodes()[0]
    record = net.lookup(node, "my-file.mp3")
    print(record.hops, record.success)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.can import CanNetwork, CanNode
from repro.chord import ChordNetwork, ChordNode
from repro.core import CycloidNetwork, CycloidNode
from repro.dht import (
    CycloidId,
    LookupRecord,
    LookupStats,
    Network,
    Node,
    RingId,
    cycloid_space_size,
)
from repro.koorde import KoordeNetwork, KoordeNode
from repro.pastry import PastryNetwork, PastryNode
from repro.sim import ChurnConfig, ChurnResult, Simulator, run_churn_simulation
from repro.viceroy import ViceroyNetwork, ViceroyNode

__version__ = "1.0.0"

__all__ = [
    "CycloidNetwork",
    "CycloidNode",
    "CycloidId",
    "CanNetwork",
    "CanNode",
    "ChordNetwork",
    "ChordNode",
    "KoordeNetwork",
    "KoordeNode",
    "PastryNetwork",
    "PastryNode",
    "ViceroyNetwork",
    "ViceroyNode",
    "Network",
    "Node",
    "RingId",
    "LookupRecord",
    "LookupStats",
    "Simulator",
    "ChurnConfig",
    "ChurnResult",
    "run_churn_simulation",
    "cycloid_space_size",
    "__version__",
]
