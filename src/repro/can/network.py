"""CAN overlay network simulator.

Routing is greedy geographic forwarding: each hop moves to the
neighbour whose zone is closest (torus distance) to the key's point,
terminating at the node whose zone contains it — O(d * n^(1/d)) hops
with O(d) neighbours per node (paper §2.3 / Table 1).

Joins follow the CAN bootstrap: hash the newcomer to a random point,
route to the zone owner, split that zone in half along its widest axis
and hand the newcomer the half containing the point.  A graceful leave
hands the zones to the buddy (when the union is a box again) or to the
smallest-volume neighbour, which holds them until buddies coalesce —
the CAN takeover rule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.can.node import CanNode, Zone
from repro.dht.base import Network
from repro.dht.hashing import consistent_hash
from repro.dht.routing import RoutingDecision
from repro.util.bitops import circular_distance
from repro.util.rng import make_rng

__all__ = ["CanNetwork"]

PHASE_GREEDY = "greedy"

DEFAULT_DIMENSIONS = 2
RESOLUTION_BITS = 20  # grid cells per axis: 2^20


class CanNetwork(Network):
    """A CAN over the ``[0, 2^RESOLUTION_BITS)^dimensions`` torus."""

    protocol_name = "can"
    ROUTING_PHASES = (PHASE_GREEDY,)

    def __init__(
        self, dimensions: int = DEFAULT_DIMENSIONS, seed: Optional[int] = None
    ) -> None:
        super().__init__()
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        self.dimensions = dimensions
        self.modulus = 1 << RESOLUTION_BITS
        self._nodes: List[CanNode] = []
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def with_random_zones(
        cls,
        count: int,
        dimensions: int = DEFAULT_DIMENSIONS,
        seed: Optional[int] = None,
    ) -> "CanNetwork":
        """Grow a network of ``count`` nodes by successive joins."""
        network = cls(dimensions, seed)
        for index in range(count):
            network.join(f"can-{index}")
        return network

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def live_nodes(self) -> Sequence[CanNode]:
        return list(self._nodes)

    @property
    def size(self) -> int:
        return len(self._nodes)

    def key_id(self, key: object) -> Tuple[int, ...]:
        """Hash a key to a point on the torus (one hash per axis)."""
        digest = consistent_hash(key)
        point = []
        for axis in range(self.dimensions):
            point.append(
                (digest >> (axis * RESOLUTION_BITS)) % self.modulus
            )
        return tuple(point)

    def owner_of_id(self, key_id: Tuple[int, ...]) -> CanNode:
        for node in self._nodes:
            if node.owns(key_id):
                return node
        raise LookupError("empty network" if not self._nodes else
                          f"no zone contains {key_id}")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _torus_distance(self, a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
        return sum(
            circular_distance(x, y, self.modulus) for x, y in zip(a, b)
        )

    def _node_distance(self, node: CanNode, point: Tuple[int, ...]) -> int:
        return min(
            self._torus_distance(self._clamp(zone, point), point)
            for zone in node.zones
        )

    def _clamp(self, zone: Zone, point: Tuple[int, ...]) -> Tuple[int, ...]:
        """The point of ``zone`` nearest to ``point`` on the torus."""
        clamped = []
        for axis in range(self.dimensions):
            lo, hi = zone.lo[axis], zone.hi[axis] - 1
            x = point[axis]
            if lo <= x <= hi:
                clamped.append(x)
            else:
                d_lo = circular_distance(x, lo, self.modulus)
                d_hi = circular_distance(x, hi, self.modulus)
                clamped.append(lo if d_lo <= d_hi else hi)
        return tuple(clamped)

    def begin_route(
        self, source: CanNode, key_id: Tuple[int, ...]
    ) -> Set[object]:
        return set()  # names of nodes the message has passed through

    def pack_route_state(self, state: Set[object]) -> object:
        """Wire form of the visited-name set (repro.net, DESIGN S22)."""
        return {"visited": sorted(state, key=repr)}

    def unpack_route_state(
        self, blob: object, key_id: Tuple[int, ...]
    ) -> Set[object]:
        return set(blob["visited"])

    def next_hop(
        self, current: CanNode, key_id: Tuple[int, ...], visited: Set[object]
    ) -> RoutingDecision:
        if current.owns(key_id):
            return RoutingDecision.terminate()
        visited.add(current.name)
        current_distance = self._node_distance(current, key_id)
        ranked = sorted(
            (
                neighbor
                for neighbor in current.neighbors
                if neighbor.name not in visited
            ),
            key=lambda n: self._node_distance(n, key_id),
        )
        if self.fault_detection:
            # Unfiltered greedy ranking; the engine probes for liveness.
            if not ranked:
                return RoutingDecision.terminate()
            return RoutingDecision.forward(
                ranked[0],
                PHASE_GREEDY,
                alternates=tuple(
                    (candidate, PHASE_GREEDY) for candidate in ranked[1:5]
                ),
            )
        timeouts = 0
        for candidate in ranked:
            if not candidate.alive:
                timeouts += 1
                continue
            if self._node_distance(candidate, key_id) >= current_distance:
                # Greedy progress stalled (possible after failures);
                # CAN would fall back to perimeter routing — we
                # allow one sideways hop to an unvisited neighbour.
                pass
            return RoutingDecision.forward(candidate, PHASE_GREEDY, timeouts)
        return RoutingDecision.terminate(timeouts)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def join(self, name: object) -> CanNode:
        self.invalidate_owner_cache()
        point = self.key_id(name)
        if not self._nodes:
            full = Zone(
                (0,) * self.dimensions, (self.modulus,) * self.dimensions
            )
            node = CanNode(name, full)
            self._nodes.append(node)
            return node
        holder = self.owner_of_id(point)
        zone_index = next(
            i for i, zone in enumerate(holder.zones) if zone.contains(point)
        )
        zone = holder.zones[zone_index]
        lower, upper = zone.split(zone.widest_axis())
        keep, give = (lower, upper) if lower.contains(point) else (upper, lower)
        # The newcomer takes the half containing its point; the holder
        # keeps the other half.
        holder.zones[zone_index] = give
        node = CanNode(name, keep)
        self._nodes.append(node)
        self.maintenance_updates += self._refresh_neighbors_around(
            [zone], exclude=node
        )
        return node

    def leave(self, node: CanNode) -> None:
        """Graceful departure: zones hand over to the buddy or to the
        smallest neighbour (CAN's takeover), which coalesces buddies."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        if len(self._nodes) == 1:
            node.alive = False
            self._nodes.remove(node)
            return
        node.alive = False
        self._nodes.remove(node)
        for zone in node.zones:
            taker = self._taker_for(zone, node)
            taker.zones.append(zone)
            self._coalesce(taker)
        self.maintenance_updates += self._refresh_neighbors_around(
            node.zones
        )

    def fail(self, node: CanNode) -> None:
        """Silent failure: the zone is still taken over (CAN recovers
        ownership via its takeover timers) but neighbour lists elsewhere
        stay stale until stabilisation."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        if len(self._nodes) == 1:
            node.alive = False
            self._nodes.remove(node)
            return
        node.alive = False
        self._nodes.remove(node)
        for zone in node.zones:
            taker = self._taker_for(zone, node)
            taker.zones.append(zone)
            self._coalesce(taker)
        # No neighbour refresh: that is stabilisation's job now.

    def on_dead_entry(self, observer: CanNode, dead: CanNode) -> int:
        """Lazy repair after a timeout on ``dead``: drop it from the
        neighbour list (the zone takeover already moved its space to a
        live owner; stabilisation re-wires the new abutment)."""
        if any(neighbor is dead for neighbor in observer.neighbors):
            observer.neighbors = [
                neighbor
                for neighbor in observer.neighbors
                if neighbor is not dead
            ]
            return 1
        return 0

    def _taker_for(self, zone: Zone, leaver: CanNode) -> CanNode:
        """The buddy owner if the union forms a box, else the
        smallest-volume abutting neighbour."""
        candidates = [
            other
            for other in self._nodes
            if other is not leaver
            and any(
                zone.abuts(other_zone, self.modulus)
                or zone.buddy_of(other_zone)
                for other_zone in other.zones
            )
        ]
        if not candidates:
            raise RuntimeError(f"no taker found for zone {zone}")
        for other in candidates:
            if any(zone.buddy_of(other_zone) for other_zone in other.zones):
                return other
        return min(candidates, key=lambda n: n.total_volume())

    @staticmethod
    def _coalesce(node: CanNode) -> None:
        merged = True
        while merged:
            merged = False
            for i in range(len(node.zones)):
                for j in range(i + 1, len(node.zones)):
                    if node.zones[i].buddy_of(node.zones[j]):
                        union = node.zones[i].merge(node.zones[j])
                        node.zones[j:j + 1] = []
                        node.zones[i] = union
                        merged = True
                        break
                if merged:
                    break

    def _refresh_neighbors_around(
        self, zones: Iterable[Zone], exclude: Optional[CanNode] = None
    ) -> int:
        """Recompute neighbour lists of every node abutting ``zones``
        (plus their owners); returns how many changed."""
        affected: List[CanNode] = []
        for node in self._nodes:
            for zone in zones:
                if any(
                    zone.abuts(own, self.modulus)
                    or self._zones_overlap(zone, own)
                    for own in node.zones
                ):
                    affected.append(node)
                    break
        changed = 0
        for node in affected:
            if self._wire_neighbors(node) and node is not exclude:
                changed += 1
        return changed

    def _zones_overlap(self, a: Zone, b: Zone) -> bool:
        return all(
            min(a.hi[axis], b.hi[axis]) - max(a.lo[axis], b.lo[axis]) > 0
            for axis in range(self.dimensions)
        )

    def stabilize(self) -> None:
        for node in self._nodes:
            self._wire_neighbors(node)

    def stabilize_node(self, node: CanNode) -> None:
        if node.alive:
            self._wire_neighbors(node)

    def _wire_neighbors(self, node: CanNode) -> bool:
        before = {id(n) for n in node.neighbors}
        neighbors = []
        for other in self._nodes:
            if other is node:
                continue
            if any(
                mine.abuts(theirs, self.modulus)
                for mine in node.zones
                for theirs in other.zones
            ):
                neighbors.append(other)
        node.neighbors = neighbors
        return before != {id(n) for n in neighbors}

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        if not self._nodes:
            return
        total = sum(node.total_volume() for node in self._nodes)
        assert total == self.modulus ** self.dimensions, (
            "zones do not partition the torus"
        )
        for node in self._nodes:
            for neighbor in node.neighbors:
                assert neighbor.alive, f"{node!r} has dead neighbour"
            if len(self._nodes) > 1:
                assert node.neighbors, f"{node!r} is isolated"