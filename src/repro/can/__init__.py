"""CAN — Content-Addressable Network (Ratnasamy et al., SIGCOMM 2001).

The mesh-based DHT of the paper's §2.3 and Table 1: keys live in a
d-dimensional toroidal coordinate space, each node owns a zone of it,
neighbours own abutting zones, and routing greedily forwards toward the
key's point in O(d * n^(1/d)) hops with O(d) neighbours per node.
"""

from repro.can.network import CanNetwork
from repro.can.node import CanNode, Zone

__all__ = ["CanNetwork", "CanNode", "Zone"]
