"""CAN node state: the zones a node owns in the toroidal key space.

Coordinates are integers on a ``2^resolution`` grid per dimension
(exact arithmetic; the unit torus of the paper scaled up).  A zone is
an axis-aligned half-open box.  A node normally owns one zone; after a
graceful departure a neighbour may temporarily hold several (the CAN
takeover rule) until buddy zones coalesce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dht.base import Node

__all__ = ["Zone", "CanNode"]


@dataclass(frozen=True)
class Zone:
    """A half-open axis-aligned box ``[lo, hi)`` per dimension."""

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo/hi dimensionality mismatch")
        if any(l >= h for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty zone {self.lo}..{self.hi}")

    @property
    def dimensions(self) -> int:
        return len(self.lo)

    def contains(self, point: Tuple[int, ...]) -> bool:
        return all(
            l <= x < h for x, l, h in zip(point, self.lo, self.hi)
        )

    def volume(self) -> int:
        product = 1
        for l, h in zip(self.lo, self.hi):
            product *= h - l
        return product

    def center(self) -> Tuple[int, ...]:
        return tuple((l + h) // 2 for l, h in zip(self.lo, self.hi))

    def split(self, axis: int) -> Tuple["Zone", "Zone"]:
        """Halve the zone along ``axis``; returns (lower, upper)."""
        middle = (self.lo[axis] + self.hi[axis]) // 2
        if middle == self.lo[axis]:
            raise ValueError(f"zone too thin to split along axis {axis}")
        lower_hi = list(self.hi)
        lower_hi[axis] = middle
        upper_lo = list(self.lo)
        upper_lo[axis] = middle
        return (
            Zone(self.lo, tuple(lower_hi)),
            Zone(tuple(upper_lo), self.hi),
        )

    def widest_axis(self) -> int:
        """The axis with the largest extent (lowest index on ties) —
        CAN's split-dimension rule keeps zones square-ish."""
        extents = [h - l for l, h in zip(self.lo, self.hi)]
        return extents.index(max(extents))

    def buddy_of(self, other: "Zone") -> bool:
        """True iff the union of the two zones is again a box."""
        differing = [
            axis
            for axis in range(self.dimensions)
            if (self.lo[axis], self.hi[axis])
            != (other.lo[axis], other.hi[axis])
        ]
        if len(differing) != 1:
            return False
        axis = differing[0]
        return (
            self.hi[axis] == other.lo[axis]
            or other.hi[axis] == self.lo[axis]
        )

    def merge(self, other: "Zone") -> "Zone":
        if not self.buddy_of(other):
            raise ValueError("zones are not buddies")
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Zone(lo, hi)

    def abuts(self, other: "Zone", modulus: int) -> bool:
        """True iff the zones share a (d-1)-dimensional face on the
        torus: touching along exactly one axis (including the wrap) and
        strictly overlapping along every other axis."""
        touching_axes = 0
        for axis in range(self.dimensions):
            a_lo, a_hi = self.lo[axis], self.hi[axis]
            b_lo, b_hi = other.lo[axis], other.hi[axis]
            if min(a_hi, b_hi) - max(a_lo, b_lo) > 0:
                continue  # strictly overlapping along this axis
            touches = (
                a_hi == b_lo
                or b_hi == a_lo
                or (a_lo == 0 and b_hi == modulus)
                or (b_lo == 0 and a_hi == modulus)
            )
            if not touches:
                return False  # a gap along this axis
            touching_axes += 1
        return touching_axes == 1


class CanNode(Node):
    """A CAN participant: one or (transiently) more zones."""

    __slots__ = ("zones", "neighbors")

    def __init__(self, name: object, zone: Zone) -> None:
        super().__init__(name)
        self.zones: List[Zone] = [zone]
        #: nodes owning abutting zones (recomputed on membership change)
        self.neighbors: List["CanNode"] = []

    @property
    def node_id(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(zone.lo for zone in self.zones)

    def owns(self, point: Tuple[int, ...]) -> bool:
        return any(zone.contains(point) for zone in self.zones)

    def total_volume(self) -> int:
        return sum(zone.volume() for zone in self.zones)

    @property
    def degree(self) -> int:
        return len(self.neighbors)
