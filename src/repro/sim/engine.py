"""A small deterministic discrete-event engine.

The churn experiment needs exactly three event kinds (join, leave,
lookup) plus per-node stabilisation timers, so a heap-based callback
scheduler is the right size of tool — no process coroutines needed.

Determinism: ties in event time are broken by insertion sequence, so a
run is a pure function of the seed and configuration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")


class EventQueue:
    """A min-heap of :class:`Event` with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        event = Event(time, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None


class Simulator:
    """Runs events in time order up to a horizon."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self.queue.push(time, action)

    def run_until(self, horizon: float) -> int:
        """Process events with ``time <= horizon``; returns the count.

        Events an action schedules within the horizon are processed in
        the same call.  Time never moves backwards.
        """
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            event = self.queue.pop()
            self.now = max(self.now, event.time)
            event.action()
            processed += 1
        self.now = max(self.now, horizon)
        self.processed += processed
        return processed
