"""Deterministic shard-based parallel experiment execution.

Every figure in the paper is a Monte-Carlo sweep: thousands of seeded
lookups per (overlay, n, d, p) cell.  The runners used to thread one
RNG through the whole sweep, which made the workload inherently serial.
This module restructures a cell's workload into **shards**:

* :func:`plan_shards` splits ``count`` lookups into contiguous,
  non-overlapping index ranges.  The shard plan is a pure function of
  ``(count, shard_size)`` — never of the worker count — so the same
  cell always produces the same shards no matter how it is executed.
* Each shard draws its workload from its own RNG stream, derived from
  ``(seed, shard_index)`` via :func:`repro.util.rng.shard_rng`, builds
  its network locally from a picklable zero-argument ``setup``
  callable, and returns a picklable :class:`ShardResult` (records plus
  query-load / repair / fault aggregates).
* :func:`merge_shards` folds shard results **by shard index**, so the
  merged run is invariant under any completion order, and cross-checks
  the invariants that make the merge meaningful (every shard saw the
  same population and crash set).

:func:`run_sharded_lookups` is the cell driver: it executes the shard
plan either in-process (``workers=1`` — the serial fallback, which
runs the *exact same* per-shard computation and merge path) or fanned
out over a :class:`concurrent.futures.ProcessPoolExecutor`.  Because a
shard's result is a pure function of ``(setup, seed, spec)``, the two
paths are bit-identical — the property `tests/sim/test_parallel_parity`
pins for every overlay, with and without an enabled
:class:`~repro.sim.faults.FaultPlan`.

Determinism model (DESIGN.md §S20/§S21)
---------------------------------------
Every shard routes on a **fresh network instance**.  That is what makes
fault-mode runs order-independent: lazy route repair
(``Network.on_dead_entry``) mutates routing tables, so two shards
sharing one network instance would leak state from whichever ran first.
How the fresh instance is obtained is the ``distribution`` choice:

* ``"snapshot"`` (the default, §S21) builds the prepared network from
  the setup callable **exactly once**, captures it — as an immutable
  :class:`~repro.dht.snapshot.NetworkSnapshot` for pool workers, or via
  the in-process :meth:`~repro.dht.base.Network.clone` fast path when
  running serially — and hands every shard a restored copy in O(state).
  Fault injectors are never serialised: the post-setup injector is a
  pure function of ``(plan, flaky set, crash count)``
  (:class:`~repro.sim.faults.FaultState`) and reattaches bit-exactly.
* ``"rebuild"`` (§S20, kept as the referee) re-runs the setup callable
  in every shard — one full join protocol per shard.

Both distributions produce bit-identical merged digests at every worker
count; the parity suite pins snapshot == rebuild for every overlay,
with and without an enabled :class:`~repro.sim.faults.FaultPlan`.

Trace observers hold open file handles and are not picklable, so an
``observer`` forces in-process execution; the shard plan (and therefore
the output) is unchanged, only the fan-out is.
"""

from __future__ import annotations

import math
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.dht.kernel import DEFAULT_BACKEND, check_backend
from repro.dht.metrics import LookupRecord, LookupStats
from repro.dht.snapshot import NetworkSnapshot, pack_network, unpack_network
from repro.sim.faults import FaultState
from repro.sim.latency import LatencyModel
from repro.sim.workload import lookup_workload
from repro.util.rng import shard_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.dht.base import Network
    from repro.dht.routing import TraceObserver
    from repro.sim.faults import FaultInjector

__all__ = [
    "DISTRIBUTIONS",
    "DEFAULT_SHARD_SIZE",
    "ShardSpec",
    "ShardTask",
    "ShardResult",
    "MergedRun",
    "plan_shards",
    "plain_setup",
    "execute_shard",
    "merge_shards",
    "run_sharded_lookups",
    "run_cells",
    "available_workers",
]

T = TypeVar("T")

#: A network/injector factory: zero-argument, picklable (build it with
#: ``functools.partial`` over module-level functions), returning the
#: freshly built + prepared network and the injector whose topology
#: faults (crashes, flaky marks) have already been applied — or ``None``
#: for fault-free cells.
Setup = Callable[[], Tuple["Network", Optional["FaultInjector"]]]

#: Default lookups per shard.  Chosen so a paper-scale cell (2000
#: lookups) splits into 4 shards — enough fan-out to keep 4 workers
#: busy — while a test-scale cell (a few hundred lookups) stays a
#: single shard and pays no extra network build.
DEFAULT_SHARD_SIZE = 500

#: How shards obtain their fresh network instance (module docstring):
#: ``"snapshot"`` builds once and restores copies; ``"rebuild"``
#: re-runs the setup callable per shard.
DISTRIBUTIONS: Tuple[str, ...] = ("snapshot", "rebuild")


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


#: One-shot latch for the oversubscription warning: a sweep runs
#: hundreds of cells through the same misconfigured ``workers`` value,
#: and one diagnosis is signal where hundreds are noise.
_oversubscribed_warned = False


def _warn_if_oversubscribed(workers: int) -> None:
    """Warn (once per process) when ``workers`` exceeds the usable CPUs.

    Oversubscribed pools are pure overhead here — shards are CPU-bound,
    so extra workers just add pickling and context-switch cost (the
    committed BENCH_parallel.json shows 0.52-0.90x "speedups" on 1-cpu
    hosts).  The run stays correct either way (results are
    worker-count-invariant), hence a warning, not an error.
    """
    global _oversubscribed_warned
    if _oversubscribed_warned or workers <= 1:
        return
    cpus = available_workers()
    if workers > cpus:
        _oversubscribed_warned = True
        warnings.warn(
            f"workers={workers} exceeds the {cpus} usable CPU(s); "
            "CPU-bound shards gain nothing from oversubscription and "
            "pay pool overhead — consider workers="
            f"{cpus} (repro.sim.parallel.available_workers())",
            stacklevel=3,
        )


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a cell's lookup workload.

    ``index`` doubles as the RNG stream selector
    (:func:`repro.util.rng.shard_rng` and
    :meth:`repro.sim.faults.FaultInjector.for_shard`); ``offset`` is the
    global index of the shard's first lookup, so ``[offset, offset +
    count)`` ranges tile the whole workload without gap or overlap.
    """

    index: int
    offset: int
    count: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.offset < 0 or self.count < 0:
            raise ValueError("shard fields must be non-negative")


def plan_shards(count: int, shard_size: int = DEFAULT_SHARD_SIZE) -> List[ShardSpec]:
    """Split ``count`` lookups into balanced contiguous shards.

    The plan depends only on ``(count, shard_size)`` — crucially *not*
    on the worker count — so serial and parallel runs execute identical
    shards.  Shard sizes differ by at most one, every shard is
    non-empty, and the union of ``[offset, offset + count)`` ranges is
    exactly ``[0, count)``: a (source, key) pair, identified by its
    global lookup index, lands in exactly one shard.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    if count == 0:
        return []
    shards = math.ceil(count / shard_size)
    base, extra = divmod(count, shards)
    specs: List[ShardSpec] = []
    offset = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        specs.append(ShardSpec(index=index, offset=offset, count=size))
        offset += size
    return specs


def plain_setup(builder: Callable[..., "Network"], *args, **kwargs):
    """Adapt a bare network builder into a fault-free :data:`Setup`.

    ``functools.partial(plain_setup, build_complete_network, "chord",
    8, seed=42)`` is picklable as long as ``builder`` is a module-level
    callable with picklable arguments.
    """
    return builder(*args, **kwargs), None


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker process needs to execute one shard.

    Exactly one network source must be set: ``snapshot`` (the build-once
    distribution — ``faults`` reattaches the injector from the plan
    seed) or ``setup`` (the per-shard rebuild distribution).  A cell's
    snapshot bytes are captured once and shared by reference across all
    of its tasks, so the pool pickles them once per worker, not once
    per shard.
    """

    spec: ShardSpec
    seed: int
    setup: Optional[Setup] = None
    keys: Tuple[object, ...] = ()
    retry_budget: int = 0
    snapshot: Optional[NetworkSnapshot] = None
    faults: Optional[FaultState] = None
    backend: str = DEFAULT_BACKEND
    #: optional link delay model; frozen and picklable, so it ships to
    #: pool workers as-is, and ``for_shard`` keeps every shard on the
    #: identical pure-function model.
    latency: Optional[LatencyModel] = None

    def __post_init__(self) -> None:
        if (self.setup is None) == (self.snapshot is None):
            raise ValueError(
                "exactly one of setup/snapshot must be provided"
            )


@dataclass
class ShardResult:
    """Picklable outcome of one shard.

    ``population`` and ``crashed`` describe the *prepared* network the
    shard routed on; every shard of a cell must agree on them (the
    crash/flaky streams are derived from the plan seed alone), which
    :func:`merge_shards` asserts.
    """

    index: int
    records: List[LookupRecord]
    query_counts: Dict[object, int]
    route_repairs: int = 0
    dropped_messages: int = 0
    crashed: int = 0
    population: int = 0


@dataclass
class MergedRun:
    """Order-independent merge of a cell's shard results."""

    stats: LookupStats = field(default_factory=LookupStats)
    query_counts: Dict[object, int] = field(default_factory=dict)
    route_repairs: int = 0
    dropped_messages: int = 0
    crashed: int = 0
    population: int = 0
    shards: int = 0


def execute_shard(
    task: ShardTask,
    observer: Optional["TraceObserver"] = None,
    prepared: Optional[
        Tuple["Network", Optional["FaultInjector"]]
    ] = None,
) -> ShardResult:
    """Run one shard: obtain a fresh network, route, aggregate.

    This is the single execution path for every worker count — the
    serial fallback calls it in-process, the parallel path ships the
    (picklable) task to a pool worker.  The network comes from, in
    order of precedence: ``prepared`` (an in-process clone handed over
    by the serial snapshot path), the task's ``snapshot`` (restored
    bytes, injector reattached from ``task.faults``), or the task's
    ``setup`` callable (full per-shard rebuild).  ``observer`` only
    exists on the in-process path; it never affects routing.
    """
    spec = task.spec
    if prepared is not None:
        network, injector = prepared
    elif task.snapshot is not None:
        network = task.snapshot.restore()
        injector = (
            task.faults.rebuild() if task.faults is not None else None
        )
    else:
        network, injector = task.setup()
    shard_injector = (
        injector.for_shard(spec.index) if injector is not None else None
    )
    shard_latency = (
        task.latency.for_shard(spec.index)
        if task.latency is not None
        else None
    )
    network.reset_query_counts()
    records = network.lookup_many(
        lookup_workload(
            network,
            spec.count,
            shard_rng(task.seed, spec.index),
            task.keys,
            start=spec.offset,
        ),
        observer=observer,
        injector=shard_injector,
        retry_budget=task.retry_budget,
        backend=task.backend,
        latency=shard_latency,
    )
    live = network.live_nodes()
    return ShardResult(
        index=spec.index,
        records=records,
        query_counts={
            node.name: count
            for node, count in zip(live, network.query_counts())
        },
        route_repairs=network.route_repairs,
        dropped_messages=(
            shard_injector.dropped if shard_injector is not None else 0
        ),
        crashed=injector.crashed if injector is not None else 0,
        population=len(live),
    )


def merge_shards(results: Sequence[ShardResult]) -> MergedRun:
    """Fold shard results into one run, independent of arrival order.

    Records concatenate in shard-index order (the canonical workload
    order); query counts, repairs and drops sum; population and crash
    counts must agree across shards — disagreement means the shards did
    not route on identical networks, which would invalidate the merge.
    """
    merged = MergedRun()
    ordered = sorted(results, key=lambda r: r.index)
    indices = [r.index for r in ordered]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices in merge: {indices}")
    for result in ordered:
        merged.stats.extend(result.records)
        for name, count in result.query_counts.items():
            merged.query_counts[name] = (
                merged.query_counts.get(name, 0) + count
            )
        merged.route_repairs += result.route_repairs
        merged.dropped_messages += result.dropped_messages
    if ordered:
        first = ordered[0]
        for result in ordered[1:]:
            if result.population != first.population:
                raise ValueError(
                    "shards disagree on population: "
                    f"{result.population} != {first.population}"
                )
            if result.crashed != first.crashed:
                raise ValueError(
                    "shards disagree on crash count: "
                    f"{result.crashed} != {first.crashed}"
                )
            if set(result.query_counts) != set(first.query_counts):
                raise ValueError("shards disagree on the live node set")
        merged.crashed = first.crashed
        merged.population = first.population
    merged.shards = len(ordered)
    return merged


def run_sharded_lookups(
    setup: Setup,
    count: int,
    seed: int,
    *,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    keys: Sequence[object] = (),
    retry_budget: int = 0,
    observer: Optional["TraceObserver"] = None,
    distribution: str = "snapshot",
    backend: str = DEFAULT_BACKEND,
    latency: Optional[LatencyModel] = None,
) -> MergedRun:
    """Execute one cell's lookup workload as deterministic shards.

    The result is a pure function of ``(setup, count, seed, shard_size,
    keys, retry_budget, latency)`` — ``workers`` only chooses the
    fan-out, ``distribution`` only chooses how each shard obtains its
    fresh network, and ``backend`` only chooses each shard's lookup
    execution strategy (``"object"`` or the bit-identical ``"columnar"``
    kernel, DESIGN §S23).  ``"snapshot"`` builds once and hands every
    shard a restored copy (clones in-process, pickled bytes across the
    pool); ``"rebuild"`` re-runs ``setup`` per shard.  Both are
    bit-identical.  ``workers=1`` (or a non-picklable ``observer``, or a
    single-shard plan) runs every shard in-process through the identical
    shard/merge path.  An attached :class:`~repro.sim.latency.LatencyModel`
    is a pure function of its seed, so records carry identical modeled
    milliseconds at every worker count (DESIGN §S25).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {DISTRIBUTIONS}"
        )
    check_backend(backend)
    _warn_if_oversubscribed(workers)
    specs = plan_shards(count, shard_size)
    serial = workers == 1 or observer is not None or len(specs) <= 1
    if distribution == "rebuild":
        tasks = [
            ShardTask(
                setup=setup,
                spec=spec,
                seed=seed,
                keys=tuple(keys),
                retry_budget=retry_budget,
                backend=backend,
                latency=latency,
            )
            for spec in specs
        ]
        if serial:
            results = [execute_shard(task, observer) for task in tasks]
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(tasks))
            ) as pool:
                results = list(pool.map(execute_shard, tasks))
        return merge_shards(results)
    if not specs:
        return merge_shards([])
    # Build-once snapshot distribution: one setup() for the whole cell.
    network, injector = setup()
    if serial:
        # Shards before the last route on copies unpacked from one
        # packed capture of the still-pristine original (only copies
        # are mutated); the final shard consumes the original itself,
        # so a single-shard plan packs nothing at all.
        packed = pack_network(network) if len(specs) > 1 else None
        results = []
        for task in _snapshot_tasks(
            specs, seed, keys, retry_budget, backend, latency
        ):
            prepared = (
                (network, injector)
                if task.spec is specs[-1]
                else (unpack_network(packed), injector)
            )
            results.append(execute_shard(task, observer, prepared))
        return merge_shards(results)
    snapshot = network.snapshot()
    faults = FaultState.capture(injector) if injector is not None else None
    tasks = [
        ShardTask(
            spec=spec,
            seed=seed,
            keys=tuple(keys),
            retry_budget=retry_budget,
            snapshot=snapshot,
            faults=faults,
            backend=backend,
            latency=latency,
        )
        for spec in specs
    ]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        results = list(pool.map(execute_shard, tasks))
    return merge_shards(results)


def _snapshot_tasks(
    specs: Sequence[ShardSpec],
    seed: int,
    keys: Sequence[object],
    retry_budget: int,
    backend: str = DEFAULT_BACKEND,
    latency: Optional[LatencyModel] = None,
) -> List[ShardTask]:
    """Placeholder tasks for the in-process snapshot path.

    The network arrives via ``execute_shard``'s ``prepared`` argument;
    the dummy setup satisfies the one-source-only task invariant and is
    never called.
    """
    return [
        ShardTask(
            setup=_prepared_network_expected,
            spec=spec,
            seed=seed,
            keys=tuple(keys),
            retry_budget=retry_budget,
            backend=backend,
            latency=latency,
        )
        for spec in specs
    ]


def _prepared_network_expected():  # pragma: no cover - never called
    raise RuntimeError(
        "in-process snapshot tasks must be run with prepared=(network, "
        "injector)"
    )


def _call_cell(task: Callable[[], T]) -> T:
    """Module-level trampoline so cell callables cross the pool."""
    return task()


def run_cells(
    tasks: Sequence[Callable[[], T]], workers: int = 1
) -> List[T]:
    """Execute independent experiment cells, preserving input order.

    The coarse-grained counterpart of :func:`run_sharded_lookups` for
    runners whose unit of work is a whole simulation rather than a
    lookup batch (churn runs, maintenance sweeps, key-distribution
    cells).  Each task must be a zero-argument picklable callable
    (``functools.partial`` over a module-level function) returning a
    picklable result; each cell seeds itself, so the output does not
    depend on ``workers``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_call_cell, tasks))
