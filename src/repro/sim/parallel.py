"""Deterministic shard-based parallel experiment execution.

Every figure in the paper is a Monte-Carlo sweep: thousands of seeded
lookups per (overlay, n, d, p) cell.  The runners used to thread one
RNG through the whole sweep, which made the workload inherently serial.
This module restructures a cell's workload into **shards**:

* :func:`plan_shards` splits ``count`` lookups into contiguous,
  non-overlapping index ranges.  The shard plan is a pure function of
  ``(count, shard_size)`` — never of the worker count — so the same
  cell always produces the same shards no matter how it is executed.
* Each shard draws its workload from its own RNG stream, derived from
  ``(seed, shard_index)`` via :func:`repro.util.rng.shard_rng`, builds
  its network locally from a picklable zero-argument ``setup``
  callable, and returns a picklable :class:`ShardResult` (records plus
  query-load / repair / fault aggregates).
* :func:`merge_shards` folds shard results **by shard index**, so the
  merged run is invariant under any completion order, and cross-checks
  the invariants that make the merge meaningful (every shard saw the
  same population and crash set).

:func:`run_sharded_lookups` is the cell driver: it executes the shard
plan either in-process (``workers=1`` — the serial fallback, which
runs the *exact same* per-shard computation and merge path) or fanned
out over a :class:`concurrent.futures.ProcessPoolExecutor`.  Because a
shard's result is a pure function of ``(setup, seed, spec)``, the two
paths are bit-identical — the property `tests/sim/test_parallel_parity`
pins for every overlay, with and without an enabled
:class:`~repro.sim.faults.FaultPlan`.

Determinism model (DESIGN.md §S20)
----------------------------------
A shard **rebuilds its network from the setup callable** even when run
serially.  That is what makes fault-mode runs order-independent: lazy
route repair (``Network.on_dead_entry``) mutates routing tables, so two
shards sharing one network instance would leak state from whichever ran
first.  Fresh per-shard networks cost one extra build per shard and buy
bit-exactness at any worker count.

Trace observers hold open file handles and are not picklable, so an
``observer`` forces in-process execution; the shard plan (and therefore
the output) is unchanged, only the fan-out is.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.dht.metrics import LookupRecord, LookupStats
from repro.sim.workload import lookup_workload
from repro.util.rng import shard_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.dht.base import Network
    from repro.dht.routing import TraceObserver
    from repro.sim.faults import FaultInjector

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ShardSpec",
    "ShardTask",
    "ShardResult",
    "MergedRun",
    "plan_shards",
    "plain_setup",
    "execute_shard",
    "merge_shards",
    "run_sharded_lookups",
    "run_cells",
    "available_workers",
]

T = TypeVar("T")

#: A network/injector factory: zero-argument, picklable (build it with
#: ``functools.partial`` over module-level functions), returning the
#: freshly built + prepared network and the injector whose topology
#: faults (crashes, flaky marks) have already been applied — or ``None``
#: for fault-free cells.
Setup = Callable[[], Tuple["Network", Optional["FaultInjector"]]]

#: Default lookups per shard.  Chosen so a paper-scale cell (2000
#: lookups) splits into 4 shards — enough fan-out to keep 4 workers
#: busy — while a test-scale cell (a few hundred lookups) stays a
#: single shard and pays no extra network build.
DEFAULT_SHARD_SIZE = 500


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a cell's lookup workload.

    ``index`` doubles as the RNG stream selector
    (:func:`repro.util.rng.shard_rng` and
    :meth:`repro.sim.faults.FaultInjector.for_shard`); ``offset`` is the
    global index of the shard's first lookup, so ``[offset, offset +
    count)`` ranges tile the whole workload without gap or overlap.
    """

    index: int
    offset: int
    count: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.offset < 0 or self.count < 0:
            raise ValueError("shard fields must be non-negative")


def plan_shards(count: int, shard_size: int = DEFAULT_SHARD_SIZE) -> List[ShardSpec]:
    """Split ``count`` lookups into balanced contiguous shards.

    The plan depends only on ``(count, shard_size)`` — crucially *not*
    on the worker count — so serial and parallel runs execute identical
    shards.  Shard sizes differ by at most one, every shard is
    non-empty, and the union of ``[offset, offset + count)`` ranges is
    exactly ``[0, count)``: a (source, key) pair, identified by its
    global lookup index, lands in exactly one shard.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    if count == 0:
        return []
    shards = math.ceil(count / shard_size)
    base, extra = divmod(count, shards)
    specs: List[ShardSpec] = []
    offset = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        specs.append(ShardSpec(index=index, offset=offset, count=size))
        offset += size
    return specs


def plain_setup(builder: Callable[..., "Network"], *args, **kwargs):
    """Adapt a bare network builder into a fault-free :data:`Setup`.

    ``functools.partial(plain_setup, build_complete_network, "chord",
    8, seed=42)`` is picklable as long as ``builder`` is a module-level
    callable with picklable arguments.
    """
    return builder(*args, **kwargs), None


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker process needs to execute one shard."""

    setup: Setup
    spec: ShardSpec
    seed: int
    keys: Tuple[object, ...] = ()
    retry_budget: int = 0


@dataclass
class ShardResult:
    """Picklable outcome of one shard.

    ``population`` and ``crashed`` describe the *prepared* network the
    shard routed on; every shard of a cell must agree on them (the
    crash/flaky streams are derived from the plan seed alone), which
    :func:`merge_shards` asserts.
    """

    index: int
    records: List[LookupRecord]
    query_counts: Dict[object, int]
    route_repairs: int = 0
    dropped_messages: int = 0
    crashed: int = 0
    population: int = 0


@dataclass
class MergedRun:
    """Order-independent merge of a cell's shard results."""

    stats: LookupStats = field(default_factory=LookupStats)
    query_counts: Dict[object, int] = field(default_factory=dict)
    route_repairs: int = 0
    dropped_messages: int = 0
    crashed: int = 0
    population: int = 0
    shards: int = 0


def execute_shard(
    task: ShardTask, observer: Optional["TraceObserver"] = None
) -> ShardResult:
    """Run one shard: build the network locally, route, aggregate.

    This is the single execution path for every worker count — the
    serial fallback calls it in-process, the parallel path ships the
    (picklable) task to a pool worker.  ``observer`` only exists on the
    in-process path; it never affects routing.
    """
    spec = task.spec
    network, injector = task.setup()
    shard_injector = (
        injector.for_shard(spec.index) if injector is not None else None
    )
    network.reset_query_counts()
    records = network.lookup_many(
        lookup_workload(
            network,
            spec.count,
            shard_rng(task.seed, spec.index),
            task.keys,
            start=spec.offset,
        ),
        observer=observer,
        injector=shard_injector,
        retry_budget=task.retry_budget,
    )
    live = network.live_nodes()
    return ShardResult(
        index=spec.index,
        records=records,
        query_counts={
            node.name: count
            for node, count in zip(live, network.query_counts())
        },
        route_repairs=network.route_repairs,
        dropped_messages=(
            shard_injector.dropped if shard_injector is not None else 0
        ),
        crashed=injector.crashed if injector is not None else 0,
        population=len(live),
    )


def merge_shards(results: Sequence[ShardResult]) -> MergedRun:
    """Fold shard results into one run, independent of arrival order.

    Records concatenate in shard-index order (the canonical workload
    order); query counts, repairs and drops sum; population and crash
    counts must agree across shards — disagreement means the shards did
    not route on identical networks, which would invalidate the merge.
    """
    merged = MergedRun()
    ordered = sorted(results, key=lambda r: r.index)
    indices = [r.index for r in ordered]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices in merge: {indices}")
    for result in ordered:
        merged.stats.extend(result.records)
        for name, count in result.query_counts.items():
            merged.query_counts[name] = (
                merged.query_counts.get(name, 0) + count
            )
        merged.route_repairs += result.route_repairs
        merged.dropped_messages += result.dropped_messages
    if ordered:
        first = ordered[0]
        for result in ordered[1:]:
            if result.population != first.population:
                raise ValueError(
                    "shards disagree on population: "
                    f"{result.population} != {first.population}"
                )
            if result.crashed != first.crashed:
                raise ValueError(
                    "shards disagree on crash count: "
                    f"{result.crashed} != {first.crashed}"
                )
            if set(result.query_counts) != set(first.query_counts):
                raise ValueError("shards disagree on the live node set")
        merged.crashed = first.crashed
        merged.population = first.population
    merged.shards = len(ordered)
    return merged


def run_sharded_lookups(
    setup: Setup,
    count: int,
    seed: int,
    *,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    keys: Sequence[object] = (),
    retry_budget: int = 0,
    observer: Optional["TraceObserver"] = None,
) -> MergedRun:
    """Execute one cell's lookup workload as deterministic shards.

    The result is a pure function of ``(setup, count, seed, shard_size,
    keys, retry_budget)`` — ``workers`` only chooses the fan-out.
    ``workers=1`` (or a non-picklable ``observer``, or a single-shard
    plan) runs every shard in-process through the identical
    shard/merge path.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    specs = plan_shards(count, shard_size)
    tasks = [
        ShardTask(
            setup=setup,
            spec=spec,
            seed=seed,
            keys=tuple(keys),
            retry_budget=retry_budget,
        )
        for spec in specs
    ]
    if workers == 1 or observer is not None or len(tasks) <= 1:
        results = [execute_shard(task, observer) for task in tasks]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks))
        ) as pool:
            results = list(pool.map(execute_shard, tasks))
    return merge_shards(results)


def _call_cell(task: Callable[[], T]) -> T:
    """Module-level trampoline so cell callables cross the pool."""
    return task()


def run_cells(
    tasks: Sequence[Callable[[], T]], workers: int = 1
) -> List[T]:
    """Execute independent experiment cells, preserving input order.

    The coarse-grained counterpart of :func:`run_sharded_lookups` for
    runners whose unit of work is a whole simulation rather than a
    lookup batch (churn runs, maintenance sweeps, key-distribution
    cells).  Each task must be a zero-argument picklable callable
    (``functools.partial`` over a module-level function) returning a
    picklable result; each cell seeds itself, so the output does not
    depend on ``workers``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_call_cell, tasks))
