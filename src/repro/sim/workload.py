"""Workload generators for the experiments.

The paper's workloads are simple and uniform: random (source, key)
lookup pairs, and key corpora of 10^4..10^5 keys hashed onto each DHT's
space (Figs 8-9).  Generators are seeded for reproducibility.

:class:`ZipfSampler` is the skewed counterpart (DESIGN §S27): a seeded
Zipf(``s``) popularity distribution over a fixed key corpus, shared by
the engine-tier hotspot experiments and the live open-loop load
generator (:mod:`repro.net.loadgen`) so both tiers draw from one
implementation — the parity test pins identical draws.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from repro.dht.base import Network, Node

__all__ = [
    "random_keys",
    "uniform_key_corpus",
    "zipf_weights",
    "ZipfSampler",
    "lookup_workload",
]


def random_keys(count: int, rng: random.Random, prefix: str = "key") -> List[str]:
    """``count`` distinct application keys with random suffixes."""
    if count < 0:
        raise ValueError(
            f"random_keys count must be non-negative, got {count}"
        )
    return [f"{prefix}-{rng.getrandbits(64):016x}-{i}" for i in range(count)]


def uniform_key_corpus(count: int, seed: int) -> List[str]:
    """A deterministic corpus of ``count`` keys (Figs 8-9 workloads)."""
    return random_keys(count, random.Random(seed))


def zipf_weights(count: int, s: float) -> List[float]:
    """Unnormalised Zipf(``s``) popularity weights for ``count`` ranks.

    Rank ``r`` (0-based) gets weight ``1 / (r + 1)**s`` — the head keys
    take most of the traffic, as real caches see.  Kept as a standalone
    function so tests can pin the sampler against the raw weights.
    """
    if count < 1:
        raise ValueError("weight count must be >= 1")
    if s < 0.0:
        raise ValueError("zipf exponent must be non-negative")
    return [1.0 / (rank + 1) ** s for rank in range(count)]


class ZipfSampler:
    """Zipf-skewed key popularity over a fixed corpus.

    The corpus order *is* the popularity rank: ``keys[0]`` is the
    hottest key.  :meth:`draw` consumes exactly one
    ``random.Random.choices`` call from the caller's RNG — the same
    stream position the previously-inline implementation in
    :func:`repro.net.loadgen.make_open_operations` used, which keeps
    existing seeded workloads bit-identical after the extraction.
    """

    __slots__ = ("keys", "weights", "s")

    def __init__(self, keys: Sequence[str], s: float = 1.1) -> None:
        if not keys:
            raise ValueError("sampler needs a non-empty key corpus")
        self.keys = list(keys)
        self.s = s
        self.weights = zipf_weights(len(self.keys), s)

    @classmethod
    def from_universe(
        cls,
        count: int,
        rng: random.Random,
        s: float = 1.1,
        prefix: str = "zipf",
    ) -> "ZipfSampler":
        """A sampler over ``count`` fresh seeded keys (hot key first)."""
        return cls(random_keys(count, rng, prefix=prefix), s)

    def draw(self, rng: random.Random) -> str:
        """One key, Zipf-weighted; consumes one ``choices`` call."""
        return rng.choices(self.keys, weights=self.weights, k=1)[0]

    def sample(self, count: int, rng: random.Random) -> List[str]:
        """``count`` independent Zipf-weighted draws."""
        return [self.draw(rng) for _ in range(count)]


def lookup_workload(
    network: Network,
    count: int,
    rng: random.Random,
    keys: Sequence[object] = (),
    start: int = 0,
) -> Iterator[Tuple[Node, object]]:
    """Yield ``count`` (source node, key) lookup pairs.

    Sources are uniform over live nodes.  Keys come from ``keys`` when
    provided, otherwise fresh uniform random keys are drawn — the
    paper's "lookup requests to random destinations".

    ``start`` offsets the index baked into generated key names: shard
    ``k`` of a sharded workload (:mod:`repro.sim.parallel`) passes its
    global offset so every lookup across all shards carries a distinct
    global index and no (source, key) pair can straddle a shard
    boundary.
    """
    nodes = network.live_nodes()
    if not nodes:
        raise ValueError("network has no live nodes")
    for index in range(start, start + count):
        source = nodes[rng.randrange(len(nodes))]
        if keys:
            key = keys[rng.randrange(len(keys))]
        else:
            key = f"lookup-{rng.getrandbits(64):016x}-{index}"
        yield source, key
