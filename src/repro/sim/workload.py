"""Workload generators for the experiments.

The paper's workloads are simple and uniform: random (source, key)
lookup pairs, and key corpora of 10^4..10^5 keys hashed onto each DHT's
space (Figs 8-9).  Generators are seeded for reproducibility.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from repro.dht.base import Network, Node

__all__ = ["random_keys", "uniform_key_corpus", "lookup_workload"]


def random_keys(count: int, rng: random.Random, prefix: str = "key") -> List[str]:
    """``count`` distinct application keys with random suffixes."""
    if count < 0:
        raise ValueError(
            f"random_keys count must be non-negative, got {count}"
        )
    return [f"{prefix}-{rng.getrandbits(64):016x}-{i}" for i in range(count)]


def uniform_key_corpus(count: int, seed: int) -> List[str]:
    """A deterministic corpus of ``count`` keys (Figs 8-9 workloads)."""
    return random_keys(count, random.Random(seed))


def lookup_workload(
    network: Network,
    count: int,
    rng: random.Random,
    keys: Sequence[object] = (),
    start: int = 0,
) -> Iterator[Tuple[Node, object]]:
    """Yield ``count`` (source node, key) lookup pairs.

    Sources are uniform over live nodes.  Keys come from ``keys`` when
    provided, otherwise fresh uniform random keys are drawn — the
    paper's "lookup requests to random destinations".

    ``start`` offsets the index baked into generated key names: shard
    ``k`` of a sharded workload (:mod:`repro.sim.parallel`) passes its
    global offset so every lookup across all shards carries a distinct
    global index and no (source, key) pair can straddle a shard
    boundary.
    """
    nodes = network.live_nodes()
    if not nodes:
        raise ValueError("network has no live nodes")
    for index in range(start, start + count):
        source = nodes[rng.randrange(len(nodes))]
        if keys:
            key = keys[rng.randrange(len(keys))]
        else:
            key = f"lookup-{rng.getrandbits(64):016x}-{index}"
        yield source, key
