"""Seeded, deterministic per-link network latency model.

The paper's figures count hops; the ROADMAP asks for the wall-clock
version of the same claim.  This module supplies the missing physical
layer: a :class:`LatencyModel` assigns every node to one of ``regions``
geographic regions and derives a one-way link delay for every node pair
from

* a symmetric **region delay table** (an intra-region floor plus a
  per-region-pair inter-region base), and
* a bounded **per-link jitter** term that makes individual links inside
  the same region pair distinguishable.

Every quantity is a pure function of ``(seed, node_id_a, node_id_b)``:
no state, no RNG objects, no iteration-order dependence.  Hashing goes
through :func:`hashlib.blake2b` rather than ``hash()`` so delays do not
depend on ``PYTHONHASHSEED`` and are identical across worker processes,
snapshot/clone restores, and machines.  That is what lets the sharded
runner (:mod:`repro.sim.parallel`) and the live cluster
(:mod:`repro.net`) consult the *same* model object — or independently
constructed copies — and agree bit-for-bit.

Like :class:`repro.sim.faults.FaultPlan`, the model is a frozen
dataclass with a mandatory ``seed`` and no unseeded fallback: a latency
schedule must be reproducible or it is useless for parity testing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["LatencyModel", "stable_unit"]


def stable_unit(seed: int, *parts: object) -> float:
    """A stable float in ``[0, 1)`` derived from ``(seed, *parts)``.

    blake2b over the ``repr`` of the key tuple: process-stable (unlike
    ``hash()``, which varies with ``PYTHONHASHSEED``), cheap (8-byte
    digest), and stateless.  Shared by the latency model and by
    deterministic tie-breaking that must not consume any RNG stream
    (e.g. the ``"random"`` leaf-selection baseline in
    :mod:`repro.core.network`).
    """
    blob = repr((seed,) + parts).encode("utf-8")
    digest = hashlib.blake2b(blob, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


_unit = stable_unit


@dataclass(frozen=True)
class LatencyModel:
    """A seeded region-based link delay model.

    ``delay_ms(a, b)`` is the modeled one-way delay between nodes named
    ``a`` and ``b``:

    * ``0.0`` when ``a`` and ``b`` are the same node (local handoff);
    * ``intra_ms`` plus jitter when both map to the same region;
    * a region-pair base drawn once per (unordered) region pair from
      ``[inter_min_ms, inter_max_ms)``, plus jitter, otherwise.

    Jitter is per unordered *link* — at most ``jitter_ms`` — so two
    distinct links between the same region pair still differ, which is
    what gives proximity neighbour selection something to optimise
    inside a region pair.  All terms are keyed on sorted stringified
    node names, making the model exactly symmetric:
    ``delay_ms(a, b) == delay_ms(b, a)``.
    """

    seed: int
    #: number of geographic regions nodes are hashed into.
    regions: int = 4
    #: one-way delay floor between two distinct nodes in one region.
    intra_ms: float = 5.0
    #: inter-region base delay range; each unordered region pair gets
    #: one base drawn deterministically from ``[inter_min_ms, inter_max_ms)``.
    inter_min_ms: float = 40.0
    inter_max_ms: float = 160.0
    #: per-link jitter bound (added on top of the regional base).
    jitter_ms: float = 10.0
    #: fraction of nodes that are *slow* — heterogeneous capacities
    #: (DESIGN §S27): overloaded or under-provisioned peers whose links
    #: are stretched rather than dropped (the binary-flaky counterpart
    #: lives in :class:`repro.sim.faults.FaultPlan`).  Membership is a
    #: pure stable-hash function of ``(seed, name)``, like regions.
    slow_fraction: float = 0.0
    #: delay multiplier applied to every link touching a slow node.
    slow_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise TypeError("LatencyModel.seed must be an int")
        if self.regions < 1:
            raise ValueError("regions must be >= 1")
        if self.intra_ms < 0.0:
            raise ValueError("intra_ms must be non-negative")
        if self.jitter_ms < 0.0:
            raise ValueError("jitter_ms must be non-negative")
        if not 0.0 <= self.inter_min_ms <= self.inter_max_ms:
            raise ValueError(
                "need 0 <= inter_min_ms <= inter_max_ms, got "
                f"[{self.inter_min_ms!r}, {self.inter_max_ms!r}]"
            )
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ValueError(
                f"slow_fraction must be within [0, 1], got "
                f"{self.slow_fraction!r}"
            )
        if self.slow_multiplier < 1.0:
            raise ValueError(
                f"slow_multiplier must be >= 1, got {self.slow_multiplier!r}"
            )

    def region_of(self, name: object) -> int:
        """The region index of the node named ``name`` (stable hash)."""
        return int(_unit(self.seed, "region", str(name)) * self.regions)

    def base_ms(self, region_a: int, region_b: int) -> float:
        """The region-pair base delay (no jitter), symmetric in its
        arguments."""
        if region_a == region_b:
            return self.intra_ms
        low, high = sorted((region_a, region_b))
        span = self.inter_max_ms - self.inter_min_ms
        return self.inter_min_ms + span * _unit(self.seed, "table", low, high)

    def is_slow(self, name: object) -> bool:
        """Whether the node named ``name`` is one of the seeded slow
        nodes (stable hash, like :meth:`region_of`)."""
        if self.slow_fraction <= 0.0:
            return False
        return _unit(self.seed, "slow", str(name)) < self.slow_fraction

    def slowdown(self, name: object) -> float:
        """Per-node delay multiplier: ``slow_multiplier`` for slow
        nodes, ``1.0`` otherwise."""
        return self.slow_multiplier if self.is_slow(name) else 1.0

    def delay_ms(self, a: object, b: object) -> float:
        """Modeled one-way delay in milliseconds between nodes ``a``
        and ``b``.  Symmetric, non-negative, and zero iff ``a == b``
        (by stringified name).  A link touching a slow node is
        stretched by ``slow_multiplier`` (the slower endpoint wins);
        with ``slow_fraction == 0`` no multiplication happens at all,
        keeping delays bit-identical to the homogeneous model."""
        name_a, name_b = str(a), str(b)
        if name_a == name_b:
            return 0.0
        if name_b < name_a:
            name_a, name_b = name_b, name_a
        base = self.base_ms(self.region_of(name_a), self.region_of(name_b))
        delay = base + self.jitter_ms * _unit(
            self.seed, "link", name_a, name_b
        )
        if self.slow_fraction > 0.0:
            delay *= max(self.slowdown(name_a), self.slowdown(name_b))
        return delay

    def to_config(self) -> dict:
        """The model as a plain JSON-serialisable dict.

        Round-trips through :meth:`from_config`; embedded in cluster
        specs so an attached load generator reconstructs the *same*
        model the servers sleep by.
        """
        return {
            "seed": self.seed,
            "regions": self.regions,
            "intra_ms": self.intra_ms,
            "inter_min_ms": self.inter_min_ms,
            "inter_max_ms": self.inter_max_ms,
            "jitter_ms": self.jitter_ms,
            "slow_fraction": self.slow_fraction,
            "slow_multiplier": self.slow_multiplier,
        }

    @classmethod
    def from_config(cls, config: dict) -> "LatencyModel":
        """Rebuild a model from :meth:`to_config` output.

        ``slow_fraction``/``slow_multiplier`` default when absent, so
        configs written before the heterogeneous-capacity fields (S27)
        still round-trip to the bit-identical homogeneous model.
        """
        return cls(
            seed=int(config["seed"]),
            regions=int(config.get("regions", 4)),
            intra_ms=float(config.get("intra_ms", 5.0)),
            inter_min_ms=float(config.get("inter_min_ms", 40.0)),
            inter_max_ms=float(config.get("inter_max_ms", 160.0)),
            jitter_ms=float(config.get("jitter_ms", 10.0)),
            slow_fraction=float(config.get("slow_fraction", 0.0)),
            slow_multiplier=float(config.get("slow_multiplier", 4.0)),
        )

    def for_shard(self, index: int) -> "LatencyModel":
        """The model as seen by shard ``index`` of a sharded run.

        The model is stateless — every delay is a pure function of the
        seed and the endpoint names — so every shard sees the identical
        model and the method simply returns ``self``.  It exists so the
        sharded runner can treat latency like
        :meth:`repro.sim.faults.FaultInjector.for_shard` without a
        special case, and so the property suite can pin the invariant.
        """
        if index < 0:
            raise ValueError("shard index must be non-negative")
        return self
