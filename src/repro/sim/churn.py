"""The §4.4 continuous churn experiment driver.

Reproduces the Chord paper's setting that this paper reuses verbatim:
key lookups arrive as a Poisson process at one per second; joins and
voluntary leaves are each Poisson with mean rate R per second (R = 0.05
corresponds to one join and one leave every 20 s); each node invokes
stabilisation every 30 s at a phase uniformly distributed within the
interval.  Viceroy does not stabilise — its join/leave protocol repairs
eagerly — which its network object encodes as a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dht.base import Network, Node
from repro.dht.metrics import LookupStats
from repro.dht.routing import LookupEngine, TraceObserver
from repro.sim.engine import Simulator
from repro.util.rng import derive_rng, make_rng

__all__ = ["ChurnConfig", "ChurnResult", "run_churn_simulation"]


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of one churn run (defaults are the paper's)."""

    join_leave_rate: float  # R: joins/s and leaves/s, each
    duration: float = 1000.0  # simulated seconds
    lookup_rate: float = 1.0  # lookups/s
    stabilization_interval: float = 30.0  # seconds
    seed: int = 0
    warmup: float = 0.0  # seconds to discard from lookup statistics

    def __post_init__(self) -> None:
        if self.join_leave_rate < 0:
            raise ValueError("join_leave_rate must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.lookup_rate <= 0:
            raise ValueError("lookup_rate must be positive")
        if self.stabilization_interval <= 0:
            raise ValueError("stabilization_interval must be positive")


@dataclass
class ChurnResult:
    """Outcome of a churn run."""

    stats: LookupStats = field(default_factory=LookupStats)
    joins: int = 0
    leaves: int = 0
    final_size: int = 0

    @property
    def failures(self) -> int:
        return self.stats.failures


def run_churn_simulation(
    network: Network,
    config: ChurnConfig,
    observer: Optional[TraceObserver] = None,
) -> ChurnResult:
    """Run joins, leaves, lookups and stabilisation against ``network``.

    The network is mutated in place and should arrive freshly built and
    stabilised (the paper starts each run from a stable 2048-node
    system).  All lookups run through one shared
    :class:`~repro.dht.routing.LookupEngine`, so ``observer`` (e.g. a
    :class:`~repro.dht.routing.JsonlTraceSink`) sees every hop with
    lookup ids numbered from 0.
    """
    root = make_rng(config.seed)
    lookup_timing = derive_rng(root, 1)
    join_timing = derive_rng(root, 2)
    leave_timing = derive_rng(root, 3)
    selection = derive_rng(root, 4)
    phases = derive_rng(root, 5)

    simulator = Simulator()
    result = ChurnResult()
    engine = LookupEngine(network, observer)
    join_counter = [0]

    def schedule_stabilizer(node: Node, first_delay: float) -> None:
        def fire() -> None:
            if not node.alive:
                return  # departed; timer dies with the node
            network.stabilize_node(node)
            simulator.schedule(config.stabilization_interval, fire)

        simulator.schedule(first_delay, fire)

    def do_lookup() -> None:
        nodes = network.live_nodes()
        if nodes:
            source = nodes[selection.randrange(len(nodes))]
            key = f"churn-key-{selection.getrandbits(64):016x}"
            record = engine.run(source, network.key_id(key))
            if simulator.now >= config.warmup:
                result.stats.add(record)
        simulator.schedule(
            lookup_timing.expovariate(config.lookup_rate), do_lookup
        )

    def do_join() -> None:
        join_counter[0] += 1
        node = network.join(f"churn-join-{join_counter[0]}")
        result.joins += 1
        schedule_stabilizer(
            node, phases.uniform(0.0, config.stabilization_interval)
        )
        simulator.schedule(
            join_timing.expovariate(config.join_leave_rate), do_join
        )

    def do_leave() -> None:
        nodes = network.live_nodes()
        if len(nodes) > 1:
            network.leave(nodes[selection.randrange(len(nodes))])
            result.leaves += 1
        simulator.schedule(
            leave_timing.expovariate(config.join_leave_rate), do_leave
        )

    for node in network.live_nodes():
        schedule_stabilizer(
            node, phases.uniform(0.0, config.stabilization_interval)
        )
    simulator.schedule(lookup_timing.expovariate(config.lookup_rate), do_lookup)
    if config.join_leave_rate > 0:
        simulator.schedule(
            join_timing.expovariate(config.join_leave_rate), do_join
        )
        simulator.schedule(
            leave_timing.expovariate(config.join_leave_rate), do_leave
        )

    simulator.run_until(config.duration)
    result.final_size = network.size
    return result
