"""Deterministic adversarial membership: sybil clustering + eclipse
poisoning (DESIGN §S27).

Every workload elsewhere in the reproduction is honest; this module
injects the two classic structured-overlay attacks in a seeded,
reproducible way, mirroring the :class:`repro.sim.faults.FaultPlan`
design:

* **sybil ID clustering** — the adversary inserts ``sybils`` virtual
  nodes whose identifiers are *crafted*, not hashed: they surround the
  target key's identifier (consecutive ring ids clockwise from the key
  for Chord/Koorde; the nearest free slots of the key's Cycloid cycle,
  spilling into adjacent cycles).  The attackers join politely and wait
  for a full stabilisation round, so the honest overlay wires them in
  exactly as it would any member — the attack is in the *placement*,
  which consistent hashing is supposed to forbid.
* **eclipse routing-table poisoning** — after infiltration, a seeded
  fraction of honest nodes have their repairable routing entries (the
  same entries :meth:`~repro.dht.base.Network.on_dead_entry` mutates:
  cubical/cyclic neighbours and outside leaf sets for Cycloid, fingers
  for Chord, de Bruijn pointers for Koorde) rewired toward attacker
  nodes.  Ground-truth structures — inside leaf sets, successor lists,
  predecessors — are left intact, so the overlay still *owns* keys
  correctly; it just can no longer route honestly.

An :class:`AdversaryPlan` is pure configuration with a mandatory
``seed``; an :class:`Adversary` executes it.  Every decision (victim
selection, per-entry attacker choice) is a pure stable-hash function of
``(seed, name, slot)`` via :func:`repro.sim.latency.stable_unit` — no
RNG streams, no iteration-order dependence — so two applications of one
plan to identically-built networks produce bit-identical poisoned
topologies, in any process.  A *disabled* plan (no sybils, zero eclipse
fraction) leaves the network untouched — not even a stabilisation round
runs — which the golden parity tests pin bit-exactly.

Attack metrics are overlay-generic:

* :func:`capture_fraction` — the fraction of the keyspace whose
  ground-truth owner is an attacker, estimated by seeded key probes
  against :meth:`~repro.dht.base.Network.owner_of_id`;
* :func:`interception_rate` — the fraction of routed lookups whose path
  crosses an attacker node, computed from the engine's recorded paths
  (or live via :class:`InterceptionTracer`, a
  :class:`~repro.dht.routing.TraceObserver` — the two agree exactly,
  and because the columnar kernel reproduces paths bit-identically,
  both backends report the same numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.sim.latency import stable_unit

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.dht.base import Network, Node
    from repro.dht.metrics import LookupRecord

from repro.dht.routing import TraceEvent, TraceObserver

__all__ = [
    "AdversaryPlan",
    "Adversary",
    "attacker_name",
    "capture_fraction",
    "interception_rate",
    "InterceptionTracer",
]

#: Name prefix of adversary-controlled virtual nodes.
ATTACKER_PREFIX = "evil-"


def attacker_name(index: int) -> str:
    """The (deterministic) name of the ``index``-th sybil node."""
    return f"{ATTACKER_PREFIX}{index}"


@dataclass(frozen=True)
class AdversaryPlan:
    """Configuration of one adversarial-membership scenario.

    Like :class:`~repro.sim.faults.FaultPlan`, the ``seed`` is mandatory
    by construction — an attack schedule must be reproducible or it is
    useless for parity testing.  The plan is pure data: it pickles, it
    round-trips through :meth:`to_config`/:meth:`from_config` (for JSON
    reports and cluster specs), and :meth:`for_shard` lets the sharded
    runner treat it like every other plan object.
    """

    seed: int
    #: number of attacker virtual nodes inserted with crafted ids.
    sybils: int = 0
    #: the application key the sybil cluster surrounds.
    target_key: str = "target"
    #: fraction of honest nodes whose routing entries are poisoned.
    eclipse_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise TypeError("AdversaryPlan.seed must be an int")
        if self.sybils < 0:
            raise ValueError("sybils must be >= 0")
        if not 0.0 <= self.eclipse_fraction <= 1.0:
            raise ValueError(
                "eclipse_fraction must be within [0, 1], got "
                f"{self.eclipse_fraction!r}"
            )

    @property
    def active(self) -> bool:
        """Whether this plan mutates the network at all.  An inactive
        plan leaves every overlay bit-exact (the golden parity bar)."""
        return self.sybils > 0 or self.eclipse_fraction > 0.0

    def attacker_names(self) -> FrozenSet[str]:
        """The names of every sybil this plan would insert."""
        return frozenset(attacker_name(i) for i in range(self.sybils))

    def to_config(self) -> dict:
        """The plan as a plain JSON-serialisable dict."""
        return {
            "seed": self.seed,
            "sybils": self.sybils,
            "target_key": self.target_key,
            "eclipse_fraction": self.eclipse_fraction,
        }

    @classmethod
    def from_config(cls, config: dict) -> "AdversaryPlan":
        """Rebuild a plan from :meth:`to_config` output."""
        return cls(
            seed=int(config["seed"]),
            sybils=int(config.get("sybils", 0)),
            target_key=str(config.get("target_key", "target")),
            eclipse_fraction=float(config.get("eclipse_fraction", 0.0)),
        )

    def for_shard(self, index: int) -> "AdversaryPlan":
        """The plan as seen by shard ``index`` of a sharded run.

        Adversarial mutations are applied at *setup time* — before any
        lookup routes — and every decision is a pure stable-hash
        function of the seed, so every shard must see the identical
        poisoned topology and the method returns ``self`` (exactly like
        :meth:`repro.sim.latency.LatencyModel.for_shard`).  The
        hypothesis suite pins the resulting worker-count invariance.
        """
        if index < 0:
            raise ValueError("shard index must be non-negative")
        return self


class Adversary:
    """Executes an :class:`AdversaryPlan` against a built network.

    Usage: build the honest overlay, then ``Adversary(plan).apply(net)``.
    After :meth:`apply`, :attr:`attacker_names` holds the inserted sybil
    names (in insertion order) and the counters describe what happened.
    The executor is deliberately stateless between networks — applying
    one adversary to two identically-built networks yields bit-identical
    results, which is what lets the sharded runner's snapshot and
    rebuild distributions agree.
    """

    __slots__ = (
        "plan",
        "attacker_names",
        "inserted",
        "victims",
        "poisoned_entries",
    )

    def __init__(self, plan: AdversaryPlan) -> None:
        self.plan = plan
        #: sybil names actually inserted, in insertion order.
        self.attacker_names: List[str] = []
        self.inserted = 0
        self.victims = 0
        self.poisoned_entries = 0

    @property
    def active(self) -> bool:
        return self.plan.active

    def apply(self, network: "Network") -> None:
        """Infiltrate then poison.  A no-op for an inactive plan — the
        network is left bit-exact, stabilisation included."""
        if not self.plan.active:
            return
        self.infiltrate(network)
        self.poison(network)

    # ------------------------------------------------------------------
    # sybil ID clustering
    # ------------------------------------------------------------------

    def infiltrate(self, network: "Network") -> int:
        """Insert the plan's sybils at crafted identifiers.

        The attackers are added directly to the membership structure
        (modelling joins whose node-id the adversary chose), then one
        full stabilisation round wires everyone — attacker and honest
        node alike — from the new membership, exactly as the overlay's
        periodic stabilisation would.  Returns how many sybils were
        inserted (fewer than planned only when the crafted region of
        the id space runs out of free slots).
        """
        count = self.plan.sybils
        if count == 0:
            return 0
        from repro.chord.network import ChordNetwork
        from repro.core.network import CycloidNetwork
        from repro.koorde.network import KoordeNetwork

        if isinstance(network, CycloidNetwork):
            added = self._infiltrate_cycloid(network, count)
        elif isinstance(network, (ChordNetwork, KoordeNetwork)):
            added = self._infiltrate_ring(network, count)
        else:
            raise ValueError(
                f"{type(network).__name__} does not support sybil "
                "infiltration; supported overlays: Cycloid, Chord, Koorde"
            )
        if added:
            network.stabilize()
            network.invalidate_owner_cache()
        self.inserted += added
        return added

    def _infiltrate_cycloid(self, network, count: int) -> int:
        """Fill the target key's local cycle first, then spiral outward
        through the nearest cycles on the large cycle — the id-space
        clustering that saturates the owner's neighbourhood."""
        from repro.core.node import CycloidNode
        from repro.dht.identifiers import CycloidId
        from repro.util.bitops import circular_distance

        target = network.key_id(self.plan.target_key)
        dimension = network.dimension
        modulus = 1 << dimension
        topology = network.topology
        slots: List[CycloidId] = []
        seen_cubicals: Set[int] = set()
        for distance in range(modulus):
            for cubical in (
                (target.cubical + distance) % modulus,
                (target.cubical - distance) % modulus,
            ):
                if cubical in seen_cubicals:
                    continue
                seen_cubicals.add(cubical)
                cyclics = sorted(
                    range(dimension),
                    key=lambda k: (
                        circular_distance(k, target.cyclic, dimension),
                        k,
                    ),
                )
                for cyclic in cyclics:
                    node_id = CycloidId(cyclic, cubical, dimension)
                    if node_id not in topology:
                        slots.append(node_id)
                        if len(slots) == count:
                            break
                if len(slots) == count:
                    break
            if len(slots) == count:
                break
        for node_id in slots:
            name = attacker_name(len(self.attacker_names))
            topology.add(node_id, CycloidNode(name, node_id))
            self.attacker_names.append(name)
        return len(slots)

    def _infiltrate_ring(self, network, count: int) -> int:
        """Consecutive free ring ids clockwise from the target key: the
        first sybil becomes the key's successor (its owner), the rest
        wall off the arc behind it."""
        target = network.key_id(self.plan.target_key)
        space = 1 << network.bits
        ring = network.ring
        ids: List[int] = []
        candidate = target
        for _ in range(space):
            if candidate not in ring:
                ids.append(candidate)
                if len(ids) == count:
                    break
            candidate = (candidate + 1) % space
        node_class = type(network.live_nodes()[0]) if network.size else None
        for node_id in ids:
            name = attacker_name(len(self.attacker_names))
            ring.add(node_id, node_class(name, node_id, network.bits))
            self.attacker_names.append(name)
        return len(ids)

    # ------------------------------------------------------------------
    # eclipse routing-table poisoning
    # ------------------------------------------------------------------

    def poison(self, network: "Network") -> int:
        """Rewire a seeded fraction of honest nodes' routing entries
        toward attacker nodes.

        Victim selection and the per-entry attacker choice are pure
        stable-hash functions of ``(seed, victim name, slot label)``;
        only the entries lazy repair already mutates are touched, and
        the ground-truth membership structures stay honest, so the
        poisoned network still *owns* keys correctly — it just routes
        through the adversary.  (Strict pointer-consistency checks like
        Chord's finger audit will of course flag poisoned entries as
        stale: that is the attack.)  Returns the number of entries
        rewired.  No-op without attackers or with a zero eclipse
        fraction.
        """
        fraction = self.plan.eclipse_fraction
        if fraction <= 0.0 or not self.attacker_names:
            return 0
        from repro.chord.network import ChordNetwork
        from repro.core.network import CycloidNetwork
        from repro.koorde.network import KoordeNetwork

        attacker_set = set(self.attacker_names)
        attackers = [
            node
            for node in network.live_nodes()
            if str(node.name) in attacker_set
        ]
        attackers.sort(key=lambda node: str(node.name))
        seed = self.plan.seed
        poisoned = 0
        victims = 0
        for node in network.live_nodes():
            name = str(node.name)
            if name in attacker_set:
                continue
            if stable_unit(seed, "victim", name) >= fraction:
                continue
            victims += 1
            if isinstance(network, CycloidNetwork):
                poisoned += self._poison_cycloid(node, name, attackers)
            elif isinstance(network, ChordNetwork):
                poisoned += self._poison_chord(node, name, attackers)
            elif isinstance(network, KoordeNetwork):
                poisoned += self._poison_koorde(node, name, attackers)
            else:
                raise ValueError(
                    f"{type(network).__name__} does not support eclipse "
                    "poisoning; supported overlays: Cycloid, Chord, Koorde"
                )
        self.victims += victims
        self.poisoned_entries += poisoned
        return poisoned

    def _pick(self, victim: str, slot: str, attackers: Sequence["Node"]):
        """The seeded attacker this victim's ``slot`` is rewired to."""
        index = int(
            stable_unit(self.plan.seed, "poison", victim, slot)
            * len(attackers)
        )
        return attackers[index]

    def _poison_cycloid(self, node, name: str, attackers) -> int:
        """Cubical/cyclic neighbours and outside leaf entries — the
        slots :meth:`CycloidNetwork.on_dead_entry` repairs.  Inside
        leaf sets (the cycle ground truth) stay honest."""
        poisoned = 0
        if node.cubical_neighbor is not None:
            node.cubical_neighbor = self._pick(name, "cubical", attackers)
            poisoned += 1
        if node.cyclic_larger is not None:
            node.cyclic_larger = self._pick(name, "cyclic+", attackers)
            poisoned += 1
        if node.cyclic_smaller is not None:
            node.cyclic_smaller = self._pick(name, "cyclic-", attackers)
            poisoned += 1
        for side, leaves in (
            ("ol", node.outside_left),
            ("or", node.outside_right),
        ):
            for index in range(len(leaves)):
                leaves[index] = self._pick(name, f"{side}{index}", attackers)
                poisoned += 1
        return poisoned

    def _poison_chord(self, node, name: str, attackers) -> int:
        """Fingers only — successor lists and the predecessor are the
        ring's ground truth and stay honest."""
        poisoned = 0
        for index in range(len(node.fingers)):
            if node.fingers[index] is not None:
                node.fingers[index] = self._pick(
                    name, f"finger{index}", attackers
                )
                poisoned += 1
        return poisoned

    def _poison_koorde(self, node, name: str, attackers) -> int:
        """The de Bruijn pointer and its backups — successors stay
        honest."""
        poisoned = 0
        if node.debruijn is not None:
            node.debruijn = self._pick(name, "debruijn", attackers)
            poisoned += 1
        for index in range(len(node.debruijn_backups)):
            node.debruijn_backups[index] = self._pick(
                name, f"db{index}", attackers
            )
            poisoned += 1
        return poisoned

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Adversary seed={self.plan.seed} sybils={self.inserted} "
            f"victims={self.victims} poisoned={self.poisoned_entries}>"
        )


# ----------------------------------------------------------------------
# attack metrics
# ----------------------------------------------------------------------

def capture_fraction(
    network: "Network",
    attacker_names: Iterable[object],
    probes: int = 512,
    salt: int = 0,
) -> float:
    """Estimated fraction of the keyspace owned by attacker nodes.

    ``probes`` seeded application keys are hashed into the overlay's id
    space and resolved against the ground-truth
    :meth:`~repro.dht.base.Network.owner_of_id` — no routing involved,
    so the estimate is identical for every backend and worker count.
    ``salt`` decouples the probe corpus from other workloads.
    """
    if probes < 1:
        raise ValueError("probes must be >= 1")
    names = {str(name) for name in attacker_names}
    if not names:
        return 0.0
    hits = 0
    for index in range(probes):
        key_id = network.key_id(f"capture-probe-{salt}-{index}")
        if str(network.owner_of_id(key_id).name) in names:
            hits += 1
    return hits / probes


def interception_rate(
    records: Sequence["LookupRecord"],
    attacker_names: Iterable[object],
) -> float:
    """Fraction of lookups whose path crossed an attacker node.

    A lookup is *intercepted* when any hop target (``path[1:]`` — every
    node that received the message, the final owner included, the
    source excluded) is adversary-controlled.  Paths are part of the
    engine's canonical records, reproduced bit-identically by the
    columnar kernel and at every worker count, so this rate is too.
    """
    names = {str(name) for name in attacker_names}
    if not records or not names:
        return 0.0
    intercepted = sum(
        1
        for record in records
        if any(str(name) in names for name in record.path[1:])
    )
    return intercepted / len(records)


class InterceptionTracer(TraceObserver):
    """Streaming interception accounting via engine trace callbacks.

    Counts exactly what :func:`interception_rate` counts — the per-hop
    ``on_hop`` targets are the records' ``path[1:]`` — but without
    retaining records, so it can ride along live runs and JSONL traces.
    The equivalence is pinned by a test.
    """

    def __init__(self, attacker_names: Iterable[object]) -> None:
        self.attacker_names = {str(name) for name in attacker_names}
        self.lookups = 0
        self.intercepted = 0
        self._hit = False

    def on_lookup_start(self, lookup_id, source, key_id) -> None:
        self.lookups += 1
        self._hit = False

    def on_hop(self, event: TraceEvent) -> None:
        if event.kind != "hop":
            return  # failed probes never count as hops
        if str(event.node) in self.attacker_names:
            self._hit = True

    def on_lookup_end(self, lookup_id, record) -> None:
        if self._hit:
            self.intercepted += 1
        self._hit = False

    @property
    def rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.intercepted / self.lookups
