"""Deterministic fault injection: crashes, message loss, flaky nodes.

The paper scopes ungraceful failures out of the routing design ("nodes
must notify others before leaving", §3.4) and lists handling them as
future work (§5).  This module injects exactly that scenario in a
reproducible way:

* **ungraceful crashes** — a node vanishes via :meth:`Network.fail`
  without notifying anyone, so every pointer to it anywhere goes stale
  (unlike :func:`repro.experiments.common.fail_nodes`, whose departures
  are graceful and keep leaf sets / successor lists fresh);
* **message loss** — any routed message is dropped with a seeded
  probability, indistinguishable to the sender from a dead target;
* **flaky nodes** — a seeded subset of nodes drops inbound messages at
  a (much higher) per-node rate, modelling overloaded or half-dead
  peers.

A :class:`FaultPlan` is pure configuration; a :class:`FaultInjector`
carries the seeded random streams and the drop/crash decisions.  Every
stream is derived from the plan's single mandatory ``seed``, so a fault
schedule is a pure function of the plan — two injectors built from the
same plan crash the same nodes and drop the same messages.

When the plan is *disabled* (all probabilities zero) the injector is
inert: :class:`repro.dht.routing.LookupEngine` then routes exactly as
it does with no injector at all, which the golden parity tests pin
bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, List, Sequence, Set, Tuple

from repro.util.rng import derive_rng, make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.dht.base import Network, Node

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultState",
    "RetryPolicy",
    "ChurnEvent",
    "ChurnPlan",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """Configuration of one fault schedule.

    ``seed`` is mandatory by construction: every failure experiment
    must be reproducible, so there is no unseeded fallback anywhere in
    the fault path.
    """

    seed: int
    #: per-node probability of an ungraceful crash (no notifications).
    crash_probability: float = 0.0
    #: per-message drop probability on every link.
    message_loss: float = 0.0
    #: fraction of nodes marked flaky by :meth:`FaultInjector.mark_flaky`.
    flaky_fraction: float = 0.0
    #: inbound drop probability at a flaky node (replaces, not stacks
    #: with, ``message_loss`` for messages to that node).
    flaky_loss: float = 0.5

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise TypeError("FaultPlan.seed must be an int")
        _check_probability("crash_probability", self.crash_probability)
        _check_probability("message_loss", self.message_loss)
        _check_probability("flaky_fraction", self.flaky_fraction)
        _check_probability("flaky_loss", self.flaky_loss)

    @property
    def active(self) -> bool:
        """Whether this plan injects any fault at all.  An inactive plan
        makes the lookup engine behave exactly as if no injector were
        attached (the bit-exact fault-free path)."""
        return (
            self.crash_probability > 0.0
            or self.message_loss > 0.0
            or self.flaky_fraction > 0.0
        )


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change of a live churn run (S24)."""

    #: seconds after the run's start at which the event fires.
    time: float
    #: ``"crash"`` (ungraceful kill) or ``"join"`` (rejoin of a victim).
    action: str
    #: the virtual node the event targets.
    node: str


@dataclass(frozen=True)
class ChurnPlan:
    """A seeded kill/rejoin schedule for the live churn harness (S24).

    Like :class:`FaultPlan`, the plan is pure configuration with a
    mandatory ``seed``: :meth:`schedule` is a pure function of
    ``(plan, names, duration)``, so two churn runs over the same
    cluster replay byte-identical membership timelines — which is what
    makes the zero-acknowledged-write-loss acceptance test
    deterministic.
    """

    seed: int
    #: how many distinct victims are ungracefully crashed.
    kills: int = 3
    #: whether each victim rejoins (same name, fresh join protocol)
    #: midway between its kill and the next one.
    rejoin: bool = True
    #: fraction of the run duration where the first kill fires.
    start: float = 0.2
    #: fraction of the run duration where churn ends.
    end: float = 0.8

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise TypeError("ChurnPlan.seed must be an int")
        if self.kills < 0:
            raise ValueError("kills must be >= 0")
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ValueError(
                "churn window must satisfy 0 <= start < end <= 1, got "
                f"[{self.start}, {self.end}]"
            )

    def schedule(
        self, names: Sequence[str], duration: float
    ) -> List[ChurnEvent]:
        """The deterministic event timeline for one run.

        Victims are a seeded sample of ``names`` (at most
        ``len(names) - 1`` — someone must survive); kills are spread
        evenly across the ``[start, end]`` window with seeded jitter,
        and each rejoin fires halfway to the next kill so the
        population recovers between blows.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        pool = sorted(str(name) for name in names)
        kills = min(self.kills, max(0, len(pool) - 1))
        if not kills:
            return []
        rng = make_rng(self.seed)
        victims = rng.sample(pool, kills)
        window = (self.end - self.start) * duration
        spacing = window / kills
        events: List[ChurnEvent] = []
        for index, victim in enumerate(victims):
            jitter = (rng.random() - 0.5) * 0.2 * spacing
            at = self.start * duration + index * spacing + jitter
            at = min(max(at, 0.0), duration)
            events.append(ChurnEvent(at, "crash", victim))
            if self.rejoin:
                events.append(
                    ChurnEvent(
                        min(at + 0.5 * spacing, duration), "join", victim
                    )
                )
        events.sort(key=lambda event: (event.time, event.action, event.node))
        return events


@dataclass(frozen=True)
class RetryPolicy:
    """The shared retry semantics of the fault harness (S19/S22).

    ``budget`` has exactly the meaning of the lookup engine's
    ``retry_budget``: the number of *continuations after a failed
    attempt* a single operation may spend — an exhausted budget fails
    the operation on the spot, so a budget of ``b`` allows at most
    ``b + 1`` attempts in total.  The simulated engine
    (:class:`repro.dht.routing.LookupEngine`) charges the budget per
    failed probe with zero delay (simulated time); the live
    :class:`repro.net.client.ClusterClient` charges it per timed-out or
    failed RPC and sleeps :meth:`delay` in between — capped exponential
    backoff, the wall-clock counterpart of the engine's probe loop.
    """

    budget: int = 8
    #: sleep before the first re-attempt (seconds).
    base_delay: float = 0.02
    #: backoff growth factor per consecutive failure.
    multiplier: float = 2.0
    #: upper bound on any single sleep (seconds).
    max_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("retry budget must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("retry multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt ``attempt`` (0-based): capped
        ``base_delay * multiplier**attempt``."""
        if attempt < 0:
            raise ValueError("attempt index must be >= 0")
        return min(
            self.base_delay * self.multiplier**attempt, self.max_delay
        )

    def delays(self) -> Tuple[float, ...]:
        """The full backoff schedule, one entry per budget unit."""
        return tuple(self.delay(i) for i in range(self.budget))


class FaultInjector:
    """Executes a :class:`FaultPlan` with independent seeded streams.

    Crash selection, message loss and flaky-node selection each draw
    from their own derived stream, so e.g. raising the lookup count
    never changes which nodes crash.
    """

    __slots__ = (
        "plan",
        "_crash_rng",
        "_loss_rng",
        "_flaky_rng",
        "flaky_nodes",
        "crashed",
        "dropped",
    )

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        root = make_rng(plan.seed)
        self._crash_rng = derive_rng(root, 1)
        self._loss_rng = derive_rng(root, 2)
        self._flaky_rng = derive_rng(root, 3)
        #: names of nodes marked flaky by :meth:`mark_flaky`.
        self.flaky_nodes: Set[object] = set()
        #: nodes crashed so far (for experiment reporting).
        self.crashed = 0
        #: messages dropped so far (loss + flaky).
        self.dropped = 0

    @property
    def active(self) -> bool:
        return self.plan.active

    def for_shard(self, shard: int) -> "FaultInjector":
        """An injector for one shard of a sharded lookup workload.

        The child shares this injector's *decisions* — same plan, same
        crash/flaky streams, and a copy of the flaky set — but draws
        message-loss verdicts from a stream derived from ``(plan.seed,
        shard)``, so each shard's drops are a pure function of the plan
        and the shard index, independent of how many lookups other
        shards routed first.  Shard 0 is bit-identical to the parent,
        so a single-shard workload matches a direct (unsharded) run.
        """
        if shard < 0:
            raise ValueError("shard index must be non-negative")
        child = FaultInjector(self.plan)
        if shard:
            child._loss_rng = derive_rng(child._loss_rng, shard)
        child.flaky_nodes = set(self.flaky_nodes)
        return child

    # ------------------------------------------------------------------
    # topology-level faults (applied before or between lookups)
    # ------------------------------------------------------------------

    def crash_nodes(self, network: "Network") -> int:
        """Ungracefully crash each live node with the plan's probability.

        Crashes go through :meth:`Network.fail` — no relatives are
        notified, so routing state all over the overlay goes stale.  At
        least one node is always left alive.  Returns the crash count.
        """
        probability = self.plan.crash_probability
        rng = self._crash_rng
        victims = [
            node for node in network.live_nodes() if rng.random() < probability
        ]
        crashed = 0
        for node in victims:
            if network.size <= 1:
                break
            network.fail(node)
            crashed += 1
        self.crashed += crashed
        return crashed

    def mark_flaky(self, network: "Network") -> int:
        """Mark a seeded ``flaky_fraction`` of live nodes flaky.

        Flaky nodes stay in the overlay but drop inbound messages with
        ``flaky_loss`` probability.  Returns how many were marked.
        """
        fraction = self.plan.flaky_fraction
        rng = self._flaky_rng
        marked = 0
        for node in network.live_nodes():
            if rng.random() < fraction:
                self.flaky_nodes.add(node.name)
                marked += 1
        return marked

    # ------------------------------------------------------------------
    # message-level faults (probed per attempted hop by the engine)
    # ------------------------------------------------------------------

    def delivered(self, sender: "Node", receiver: "Node") -> bool:
        """Whether one message from ``sender`` reaches ``receiver``.

        Draws from the loss stream only when a drop is possible, so an
        all-zero plan consumes no randomness.
        """
        probability = self.plan.message_loss
        if receiver.name in self.flaky_nodes:
            probability = self.plan.flaky_loss
        if probability <= 0.0:
            return True
        if self._loss_rng.random() < probability:
            self.dropped += 1
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector seed={self.plan.seed} "
            f"crash={self.plan.crash_probability} "
            f"loss={self.plan.message_loss} crashed={self.crashed} "
            f"dropped={self.dropped}>"
        )


@dataclass(frozen=True)
class FaultState:
    """Post-setup injector state, reattachable after a snapshot restore.

    An injector is never serialised with a network snapshot (DESIGN
    §S21): ``random.Random`` stream positions consumed during setup are
    irrelevant once crashes and flaky marks are baked into the network,
    and :meth:`FaultInjector.for_shard` derives every per-shard loss
    stream fresh from ``plan.seed`` alone.  So the whole post-setup
    injector is a pure function of ``(plan, flaky_nodes, crashed)`` —
    which is exactly what this dataclass carries.  :meth:`rebuild`
    therefore yields an injector whose shard children are bit-identical
    to the original's, making the snapshot path's fault schedule
    indistinguishable from the rebuild path's.
    """

    plan: FaultPlan
    flaky_nodes: FrozenSet[object] = field(default_factory=frozenset)
    crashed: int = 0

    @classmethod
    def capture(cls, injector: FaultInjector) -> "FaultState":
        return cls(
            plan=injector.plan,
            flaky_nodes=frozenset(injector.flaky_nodes),
            crashed=injector.crashed,
        )

    def rebuild(self) -> FaultInjector:
        injector = FaultInjector(self.plan)
        injector.flaky_nodes = set(self.flaky_nodes)
        injector.crashed = self.crashed
        return injector
