"""Discrete-event simulation substrate.

Drives the paper's §4.4 churn experiment: Poisson node arrivals and
departures at rate R, Poisson lookups at one per second, and periodic
per-node stabilisation every 30 simulated seconds with uniformly
distributed phases.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.adversary import (
    Adversary,
    AdversaryPlan,
    InterceptionTracer,
    capture_fraction,
    interception_rate,
)
from repro.sim.churn import ChurnConfig, ChurnResult, run_churn_simulation
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.latency import LatencyModel
from repro.sim.parallel import (
    DEFAULT_SHARD_SIZE,
    MergedRun,
    ShardResult,
    ShardSpec,
    ShardTask,
    merge_shards,
    plan_shards,
    run_cells,
    run_sharded_lookups,
)
from repro.sim.workload import (
    ZipfSampler,
    lookup_workload,
    random_keys,
    uniform_key_corpus,
    zipf_weights,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "ChurnConfig",
    "ChurnResult",
    "run_churn_simulation",
    "AdversaryPlan",
    "Adversary",
    "InterceptionTracer",
    "capture_fraction",
    "interception_rate",
    "FaultPlan",
    "FaultInjector",
    "LatencyModel",
    "DEFAULT_SHARD_SIZE",
    "ShardSpec",
    "ShardTask",
    "ShardResult",
    "MergedRun",
    "plan_shards",
    "merge_shards",
    "run_sharded_lookups",
    "run_cells",
    "lookup_workload",
    "random_keys",
    "uniform_key_corpus",
    "zipf_weights",
    "ZipfSampler",
]
