"""Koorde DHT (Kaashoek & Karger, IPTPS 2003).

A constant-degree DHT that embeds a degree-2 de Bruijn graph on the
Chord identifier circle.  Configured exactly as in the paper's §4
comparison: seven neighbours — one de Bruijn pointer, three successors,
and the three immediate predecessors of the de Bruijn pointer as
backups.
"""

from repro.koorde.network import KoordeNetwork
from repro.koorde.node import KoordeNode

__all__ = ["KoordeNetwork", "KoordeNode"]
