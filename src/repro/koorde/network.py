"""Koorde overlay network simulator.

Routing follows Kaashoek & Karger's imaginary-node walk: the current
node ``m`` maintains the invariant that it is the immediate real
predecessor of the imaginary de Bruijn node ``i``.  While the invariant
holds it takes a *de Bruijn hop* to ``pred(2m)``, shifting the next bit
of the key into ``i``; otherwise it takes *successor hops* until the
invariant is re-established.  The per-hop classification
(``de_bruijn`` vs ``successor``) is exactly what the paper's Figs 7(c)
and 14 break down.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.dht.base import Network
from repro.dht.hashing import hash_to_ring
from repro.dht.ring import SortedRing, in_interval
from repro.dht.routing import RoutingDecision
from repro.koorde.node import KoordeNode
from repro.util.rng import make_rng

__all__ = ["KoordeNetwork"]

PHASE_DEBRUIJN = "de_bruijn"
PHASE_SUCCESSOR = "successor"

#: Paper §4: three successors and three de Bruijn backups -> 7 neighbours.
SUCCESSOR_LIST_SIZE = 3
DEBRUIJN_BACKUPS = 3


class _ImaginaryWalk:
    """Per-lookup state of Kaashoek & Karger's imaginary-node walk."""

    __slots__ = ("imaginary", "kshift", "bits_left")

    def __init__(self, imaginary: int, kshift: int, bits_left: int) -> None:
        self.imaginary = imaginary
        self.kshift = kshift
        self.bits_left = bits_left


class KoordeNetwork(Network):
    """A Koorde ring over the ``2^bits`` identifier space."""

    protocol_name = "koorde"
    ROUTING_PHASES = (PHASE_DEBRUIJN, PHASE_SUCCESSOR)

    def __init__(self, bits: int, seed: Optional[int] = None) -> None:
        super().__init__()
        self.bits = bits
        self.ring: SortedRing[KoordeNode] = SortedRing(bits)
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def with_ids(
        cls, node_ids: Iterable[int], bits: int, seed: Optional[int] = None
    ) -> "KoordeNetwork":
        network = cls(bits, seed)
        for node_id in node_ids:
            network.ring.add(node_id, KoordeNode(f"n{node_id}", node_id, bits))
        network.stabilize()
        return network

    @classmethod
    def with_random_ids(
        cls, count: int, bits: int, seed: Optional[int] = None
    ) -> "KoordeNetwork":
        space = 1 << bits
        if count > space:
            raise ValueError(f"{count} nodes exceed the 2^{bits} ID space")
        rng = make_rng(seed)
        return cls.with_ids(rng.sample(range(space), count), bits, seed)

    @classmethod
    def complete(cls, bits: int) -> "KoordeNetwork":
        return cls.with_ids(range(1 << bits), bits)

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def live_nodes(self) -> Sequence[KoordeNode]:
        return self.ring.nodes()

    @property
    def size(self) -> int:
        return len(self.ring)

    def key_id(self, key: object) -> int:
        return hash_to_ring(key, self.bits)

    def owner_of_id(self, key_id: int) -> KoordeNode:
        """A key is stored at its successor, as in Chord."""
        return self.ring.successor(key_id)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def begin_route(
        self, source: KoordeNode, key_id: int
    ) -> _ImaginaryWalk:
        # Imaginary de Bruijn node: starts at the source itself, so the
        # host invariant i in [current, successor) holds immediately; all
        # `bits` bits of the key are then shifted in, after which
        # i == key_id.
        return _ImaginaryWalk(source.id, key_id, self.bits)

    def pack_route_state(self, state: _ImaginaryWalk) -> object:
        """Wire form of the imaginary-node walk (repro.net, DESIGN S22)."""
        return {
            "imaginary": state.imaginary,
            "kshift": state.kshift,
            "bits_left": state.bits_left,
        }

    def unpack_route_state(self, blob: object, key_id: int) -> _ImaginaryWalk:
        return _ImaginaryWalk(
            blob["imaginary"], blob["kshift"], blob["bits_left"]
        )

    def next_hop(
        self, current: KoordeNode, key_id: int, walk: _ImaginaryWalk
    ) -> RoutingDecision:
        modulus = self.ring.modulus
        if current.id == key_id:
            return RoutingDecision.terminate()
        if not current.successors:
            return RoutingDecision.terminate()  # singleton owns everything
        predecessor = current.predecessor
        if predecessor is not None and in_interval(
            key_id, predecessor.id, current.id, modulus
        ):
            # current's local state says it stores the key
            return RoutingDecision.terminate()
        believed = current.successors[0]
        fault_mode = self.fault_detection

        if in_interval(key_id, current.id, believed.id, modulus):
            # Delivery step: forward to the believed successor,
            # walking the backup list on timeouts.
            if fault_mode:
                return RoutingDecision.deliver(
                    believed,
                    PHASE_SUCCESSOR,
                    alternates=self._backup_alternates(
                        current.successors[1:], current, PHASE_SUCCESSOR
                    ),
                )
            node, timeouts = self._first_live(current.successors)
            if node is None:
                return RoutingDecision.dead_end(timeouts)
            return RoutingDecision.deliver(node, PHASE_SUCCESSOR, timeouts)

        # Host invariant: imaginary in [current, successor).
        hosts_imaginary = (
            (walk.imaginary - current.id) % modulus
            < (believed.id - current.id) % modulus
        )
        if walk.bits_left > 0 and hosts_imaginary:
            # Invariant holds: de Bruijn hop, shift in the next bit.
            # The walk state is consumed *before* the message leaves, so
            # in fault mode the engine must resolve this decision's
            # candidates without re-asking (it never re-asks; probe
            # exhaustion fails the lookup).
            chain = current.debruijn_chain()
            if fault_mode:
                node, timeouts = chain[0], 0
            else:
                node, timeouts = self._first_live(chain)
                if node is None:
                    # De Bruijn pointer and every backup dead: the lookup
                    # fails (paper §4.3).
                    return RoutingDecision.dead_end(timeouts)
            top_bit = (walk.kshift >> (self.bits - 1)) & 1
            walk.imaginary = ((walk.imaginary << 1) | top_bit) % modulus
            walk.kshift = (walk.kshift << 1) % modulus
            walk.bits_left -= 1
            if node is current:
                # A de Bruijn pointer can be the node itself (e.g.
                # node 0 in a dense ring); shifting then costs no
                # message.
                return RoutingDecision.advance(timeouts)
            if fault_mode:
                return RoutingDecision.forward(
                    node,
                    PHASE_DEBRUIJN,
                    alternates=self._backup_alternates(
                        chain[1:], current, PHASE_DEBRUIJN
                    ),
                )
            return RoutingDecision.forward(node, PHASE_DEBRUIJN, timeouts)

        # Correction step: walk successors toward pred(imaginary)
        # (or toward the key once all bits are consumed).
        if fault_mode:
            return RoutingDecision.forward(
                believed,
                PHASE_SUCCESSOR,
                alternates=self._backup_alternates(
                    current.successors[1:], current, PHASE_SUCCESSOR
                ),
            )
        node, timeouts = self._first_live(current.successors)
        if node is None:
            return RoutingDecision.dead_end(timeouts)
        return RoutingDecision.forward(node, PHASE_SUCCESSOR, timeouts)

    @staticmethod
    def _backup_alternates(
        backups: List[KoordeNode], current: KoordeNode, phase: str
    ) -> Tuple[Tuple[KoordeNode, str], ...]:
        """Fault-mode alternates: the backup chain, unfiltered, minus
        the current node (hopping to oneself is never a fallback)."""
        return tuple(
            (backup, phase) for backup in backups[:4] if backup is not current
        )

    @staticmethod
    def _first_live(
        chain: List[KoordeNode],
    ) -> Tuple[Optional[KoordeNode], int]:
        """First live node in ``chain``; one timeout per dead node tried."""
        timeouts = 0
        seen: Set[int] = set()
        for candidate in chain:
            if candidate.alive:
                return candidate, timeouts
            if candidate.id not in seen:
                seen.add(candidate.id)
                timeouts += 1
        return None, timeouts

    # ------------------------------------------------------------------
    # membership changes
    # ------------------------------------------------------------------

    def join(self, name: object) -> KoordeNode:
        """Join: wire the joiner, notify its ring neighbours (as Chord)."""
        node_id = self._free_id_for(name)
        self.invalidate_owner_cache()
        node = KoordeNode(name, node_id, self.bits)
        had_peers = len(self.ring) > 0
        self.ring.add(node_id, node)
        self._wire(node)
        if had_peers:
            successor = node.successor
            if successor is not None:
                successor.predecessor = node
                self.maintenance_updates += 1
            predecessor = node.predecessor
            if predecessor is not None:
                predecessor.successors = self.ring.successor_run(
                    predecessor.id, SUCCESSOR_LIST_SIZE
                )
                self.maintenance_updates += 1
        return node

    def _free_id_for(self, name: object) -> int:
        node_id = hash_to_ring(name, self.bits)
        space = 1 << self.bits
        if len(self.ring) >= space:
            raise RuntimeError("identifier space exhausted")
        while node_id in self.ring:
            node_id = (node_id + 1) % space
        return node_id

    def leave(self, node: KoordeNode) -> None:
        """Graceful departure: notify successors and predecessor only.

        Nodes holding ``node`` as their de Bruijn pointer or backup are
        *not* notified (they have no incoming-pointer knowledge); those
        entries stay stale until stabilisation — the root cause of the
        lookup failures the paper reports for p >= 0.3.
        """
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.ring.remove(node.id)
        predecessor = node.predecessor
        successor = next((s for s in node.successors if s.alive), None)
        if successor is not None and successor.predecessor is node:
            successor.predecessor = (
                predecessor
                if predecessor is not None and predecessor.alive
                else None
            )
            self.maintenance_updates += 1
        if predecessor is not None and predecessor.alive:
            merged = [s for s in predecessor.successors if s is not node]
            for candidate in node.successors:
                if candidate is not predecessor and candidate not in merged:
                    merged.append(candidate)
            predecessor.successors = merged[:SUCCESSOR_LIST_SIZE]
            self.maintenance_updates += 1

    def fail(self, node: KoordeNode) -> None:
        """Silent failure: the ring is not spliced; successor lists,
        predecessors and de Bruijn chains all stay stale."""
        if not node.alive:
            raise ValueError(f"{node!r} already departed")
        self.invalidate_owner_cache()
        node.alive = False
        self.ring.remove(node.id)

    def on_dead_entry(self, observer: KoordeNode, dead: KoordeNode) -> int:
        """Lazy repair after a timeout on ``dead``: splice it out of the
        successor list, clear a stale predecessor, and re-derive the de
        Bruijn pointer with its backups when the chain held the corpse
        (the targeted version of what :meth:`stabilize_node` does on its
        30 s timer)."""
        repaired = 0
        if any(s is dead for s in observer.successors):
            observer.successors = [
                s for s in observer.successors if s is not dead
            ]
            repaired += 1
        if observer.predecessor is dead:
            observer.predecessor = None
            repaired += 1
        if observer.debruijn is dead or any(
            backup is dead for backup in observer.debruijn_backups
        ):
            self._wire_debruijn(observer)
            repaired += 1
        return repaired

    def stabilize(self) -> None:
        """Restore all pointers — successor lists, de Bruijn chain — from
        the live membership (§4.4: stabilisation updates the first de
        Bruijn node and its predecessors in time)."""
        for node in self.ring.nodes():
            self._wire(node)

    def stabilize_node(self, node: KoordeNode) -> None:
        """One node's stabilisation: refresh the successor list and the
        de Bruijn pointer with its backups (§4.4)."""
        if node.alive:
            self._wire(node)

    def _wire(self, node: KoordeNode) -> None:
        node.successors = self.ring.successor_run(node.id, SUCCESSOR_LIST_SIZE)
        node.predecessor = (
            self.ring.predecessor(node.id) if len(self.ring) > 1 else None
        )
        self._wire_debruijn(node)

    def _wire_debruijn(self, node: KoordeNode) -> None:
        if len(self.ring) > 1:
            # "The first de Bruijn node of a node with ID m is the node
            # that immediately precedes 2m" — at-or-before, so that in a
            # complete network the pointer is node 2m itself (the paper
            # notes all de Bruijn pointers are even in a dense network).
            debruijn = self.ring.at_or_before((2 * node.id) % self.ring.modulus)
            node.debruijn = debruijn
            backups: List[KoordeNode] = []
            point = debruijn.id
            for _ in range(min(DEBRUIJN_BACKUPS, len(self.ring) - 1)):
                backup = self.ring.predecessor(point)
                backups.append(backup)
                point = backup.id
            node.debruijn_backups = backups
        else:
            node.debruijn = node
            node.debruijn_backups = []

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        nodes = self.ring.nodes()
        for node in nodes:
            if len(nodes) == 1:
                continue
            assert node.successors, f"{node!r} has an empty successor list"
            assert node.debruijn is not None
            expected = self.ring.at_or_before_id((2 * node.id) % self.ring.modulus)
            assert node.debruijn.id == expected, (
                f"{node!r} de Bruijn {node.debruijn.id}, expected {expected}"
            )
