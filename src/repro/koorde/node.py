"""Koorde node state.

Seven neighbours per node, matching the configuration the paper grants
Koorde for a fair constant-degree comparison (§4): the *first de Bruijn
node* ``pred(2m)``, its three immediate predecessors (the backups that
§4.3 says keep routing alive when the de Bruijn pointer fails), and
three successors.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dht.base import Node

__all__ = ["KoordeNode"]


class KoordeNode(Node):
    """A Koorde participant on the ``2^bits`` identifier ring."""

    __slots__ = ("id", "bits", "debruijn", "debruijn_backups", "successors", "predecessor")

    def __init__(self, name: object, node_id: int, bits: int) -> None:
        super().__init__(name)
        if not 0 <= node_id < (1 << bits):
            raise ValueError(f"id {node_id} outside [0, 2^{bits})")
        self.id = node_id
        self.bits = bits
        #: first de Bruijn node: the live predecessor of 2 * id.
        self.debruijn: Optional["KoordeNode"] = None
        #: three immediate predecessors of the de Bruijn node (backups).
        self.debruijn_backups: List["KoordeNode"] = []
        #: three successors (ring maintenance + final delivery).
        self.successors: List["KoordeNode"] = []
        self.predecessor: Optional["KoordeNode"] = None

    @property
    def node_id(self) -> int:
        return self.id

    @property
    def successor(self) -> Optional["KoordeNode"]:
        return self.successors[0] if self.successors else None

    @property
    def degree(self) -> int:
        unique = {s.id for s in self.successors}
        unique.update(b.id for b in self.debruijn_backups)
        if self.debruijn is not None:
            unique.add(self.debruijn.id)
        if self.predecessor is not None:
            unique.add(self.predecessor.id)
        unique.discard(self.id)
        return len(unique)

    def debruijn_chain(self) -> List["KoordeNode"]:
        """The de Bruijn pointer followed by its backups, closest first."""
        chain = [] if self.debruijn is None else [self.debruijn]
        chain.extend(self.debruijn_backups)
        return chain
