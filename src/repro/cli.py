"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro.cli fig5  [--lookups N] [--dimensions 3 4 5]
    python -m repro.cli fig7
    python -m repro.cli fig8  [--nodes 2000] [--keys 10000 ...]
    python -m repro.cli fig10
    python -m repro.cli fig11 [--lookups N]
    python -m repro.cli fig12 [--rates 0.05 0.4] [--duration SECONDS]
    python -m repro.cli fig13
    python -m repro.cli fig14
    python -m repro.cli fig-crash [--crash-prob 0.1 0.3] [--msg-loss P]
    python -m repro.cli maint [--lookups N]
    python -m repro.cli table1
    python -m repro.cli bench [--workers N] [--output BENCH_parallel.json]

Each command prints the reproduced table; the heavier sweeps accept
size knobs so a laptop run can be scaled down.

Every figure command accepts ``--workers N`` to fan its experiment out
over N processes through :mod:`repro.sim.parallel`; the output is
bit-identical at any worker count (``bench`` measures and checks
exactly that).  The shard-driven commands additionally accept
``--distribution {snapshot,rebuild}``: ``snapshot`` (default) builds
each cell's network once and hands every shard a restored copy,
``rebuild`` re-runs the join protocol per shard — the digests are
bit-identical either way (DESIGN §S21).

``--trace PATH`` (on the lookup-driven commands: fig5/6/7, fig10,
fig11, fig12, fig13, fig14, fig-crash, maint) streams every routing
hop as one JSON line to ``PATH`` — see
:class:`repro.dht.routing.JsonlTraceSink`.  Tracing forces in-process
execution (the sink holds a file handle), overriding ``--workers``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    format_bench_table,
    format_clone_bench_table,
    format_table,
)
from repro.dht.routing import JsonlTraceSink, TraceObserver
from repro.experiments import (
    architecture_table,
    bench_report,
    run_churn_experiment,
    run_crash_experiment,
    run_key_distribution_experiment,
    run_koorde_sparsity_breakdown,
    run_maintenance_experiment,
    run_mass_departure_experiment,
    run_clone_bench,
    run_parallel_bench,
    run_path_length_experiment,
    run_phase_breakdown_experiment,
    run_query_load_experiment,
    run_sparsity_experiment,
    write_bench_report,
)
from repro.experiments.bench import DEFAULT_BENCH_PROTOCOLS
from repro.sim.parallel import DEFAULT_SHARD_SIZE, DISTRIBUTIONS

__all__ = ["main", "build_parser"]


def _add_workers(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the experiment out over N processes; the output is "
        "bit-identical at any worker count (default: 1)",
    )


def _add_distribution(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--distribution",
        choices=DISTRIBUTIONS,
        default="snapshot",
        help="how each shard obtains its network: 'snapshot' builds the "
        "cell once and restores copies (default), 'rebuild' re-runs the "
        "full join protocol per shard; both are bit-identical",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Cycloid paper's tables and figures.",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL per-hop trace of every lookup to PATH "
        "(lookup-driven commands only; forces in-process execution)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig5 = sub.add_parser("fig5", help="path length vs network size")
    fig5.add_argument("--lookups", type=int, default=3000)
    fig5.add_argument(
        "--dimensions", type=int, nargs="+", default=[3, 4, 5, 6, 7, 8]
    )
    fig6 = sub.add_parser("fig6", help="path length vs dimension")
    fig6.add_argument("--lookups", type=int, default=3000)
    fig6.add_argument(
        "--dimensions", type=int, nargs="+", default=[3, 4, 5, 6, 7, 8]
    )

    fig7 = sub.add_parser("fig7", help="phase breakdown")
    fig7.add_argument("--lookups", type=int, default=3000)
    fig7.add_argument(
        "--dimensions", type=int, nargs="+", default=[4, 6, 8]
    )

    for name, nodes in (("fig8", 2000), ("fig9", 1000)):
        p = sub.add_parser(name, help=f"key distribution, {nodes} nodes")
        p.add_argument("--nodes", type=int, default=nodes)
        p.add_argument(
            "--keys", type=int, nargs="+",
            default=[10_000, 50_000, 100_000],
        )
        _add_workers(p)

    fig10 = sub.add_parser("fig10", help="query load balance")
    fig10.add_argument("--lookups-per-node", type=int, default=8)

    fig11 = sub.add_parser("fig11", help="massive departures + Table 4")
    fig11.add_argument("--lookups", type=int, default=10_000)
    fig11.add_argument(
        "--probabilities", type=float, nargs="+",
        default=[0.1, 0.2, 0.3, 0.4, 0.5],
    )

    fig12 = sub.add_parser("fig12", help="churn + Table 5")
    fig12.add_argument(
        "--rates", type=float, nargs="+", default=[0.05, 0.2, 0.4]
    )
    fig12.add_argument("--duration", type=float, default=1000.0)
    fig12.add_argument("--population", type=int, default=2048)

    fig13 = sub.add_parser("fig13", help="sparsity sweep")
    fig13.add_argument("--lookups", type=int, default=5000)

    fig14 = sub.add_parser("fig14", help="Koorde sparsity breakdown")
    fig14.add_argument("--lookups", type=int, default=5000)

    crash = sub.add_parser(
        "fig-crash",
        help="graceful departures vs ungraceful crashes, with retries",
    )
    crash.add_argument("--lookups", type=int, default=2000)
    crash.add_argument(
        "--crash-prob", type=float, nargs="+", default=[0.1, 0.3, 0.5]
    )
    crash.add_argument("--msg-loss", type=float, default=0.05)
    crash.add_argument("--retry-budget", type=int, default=8)
    crash.add_argument("--dimension", type=int, default=8)

    maint = sub.add_parser(
        "maint", help="maintenance fan-out + post-departure lookup probe"
    )
    maint.add_argument("--population", type=int, default=1024)
    maint.add_argument("--events", type=int, default=200)
    maint.add_argument("--lookups", type=int, default=1000)

    for figure in (
        fig5, fig6, fig7, fig10, fig11, fig12, fig13, fig14, crash, maint
    ):
        _add_workers(figure)
    # The run_sharded_lookups-driven commands also choose a shard
    # network distribution; fig12/maint run whole cells, fig8/9 assign
    # keys without routing, so the knob does not apply to them.
    for figure in (fig5, fig6, fig7, fig10, fig11, fig13, fig14, crash):
        _add_distribution(figure)

    bench = sub.add_parser(
        "bench",
        help="time serial vs parallel execution and verify bit-exactness",
    )
    bench.add_argument("--dimension", type=int, default=8)
    bench.add_argument("--lookups", type=int, default=2000)
    bench.add_argument("--workers", type=int, default=4, metavar="N")
    bench.add_argument(
        "--shard-size", type=int, default=DEFAULT_SHARD_SIZE
    )
    bench.add_argument(
        "--protocols",
        nargs="+",
        default=list(DEFAULT_BENCH_PROTOCOLS),
    )
    bench.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_parallel.json",
        help="where to write the JSON bench report "
        "(default: BENCH_parallel.json)",
    )

    sub.add_parser("table1", help="architecture comparison")
    return parser


def _print(text: str) -> None:
    print(text)
    print()


#: Commands whose lookups can stream to ``--trace`` (everything that
#: runs through the routing engine; fig8/9 and table1 do not issue
#: lookups at all).
TRACEABLE_COMMANDS = (
    "fig5",
    "fig6",
    "fig7",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig-crash",
    "maint",
)


def _run_fig5_or_6(
    args: argparse.Namespace,
    by_dimension: bool,
    observer: Optional[TraceObserver] = None,
) -> None:
    points = run_path_length_experiment(
        dimensions=tuple(args.dimensions),
        lookups=args.lookups,
        seed=args.seed,
        observer=observer,
        workers=args.workers,
    distribution=args.distribution,
    )
    x_header = "d" if by_dimension else "n"
    rows = [
        [
            p.dimension if by_dimension else p.size,
            p.protocol,
            f"{p.mean_path_length:.2f}",
        ]
        for p in sorted(points, key=lambda p: (p.size, p.protocol))
    ]
    title = (
        "Fig. 6 — path length vs dimension"
        if by_dimension
        else "Fig. 5 — path length vs network size"
    )
    _print(format_table([x_header, "protocol", "mean path"], rows, title))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    sink: Optional[JsonlTraceSink] = None
    trace_file = None
    if args.trace is not None:
        if args.command not in TRACEABLE_COMMANDS:
            print(
                f"error: --trace is not supported for {args.command} "
                f"(traceable: {', '.join(TRACEABLE_COMMANDS)})",
                file=sys.stderr,
            )
            return 2
        try:
            trace_file = open(args.trace, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            return 2
        sink = JsonlTraceSink(trace_file)

    try:
        return _dispatch(args, sink)
    finally:
        if trace_file is not None:
            trace_file.close()
            print(
                f"trace: {sink.events_written} hop events -> {args.trace}",
                file=sys.stderr,
            )


def _dispatch(
    args: argparse.Namespace, sink: Optional[JsonlTraceSink]
) -> int:
    if args.command == "fig5":
        _run_fig5_or_6(args, by_dimension=False, observer=sink)
    elif args.command == "fig6":
        _run_fig5_or_6(args, by_dimension=True, observer=sink)
    elif args.command == "fig7":
        points = run_phase_breakdown_experiment(
            dimensions=tuple(args.dimensions),
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                p.size,
                phase,
                f"{p.mean_hops_by_phase[phase]:.2f}",
                f"{p.fraction_by_phase[phase] * 100:.0f}%",
            ]
            for p in points
            for phase in sorted(p.fraction_by_phase)
        ]
        _print(
            format_table(
                ["protocol", "n", "phase", "mean hops", "share"],
                rows,
                "Fig. 7 — phase breakdown",
            )
        )
    elif args.command in ("fig8", "fig9"):
        points = run_key_distribution_experiment(
            node_count=args.nodes,
            key_counts=tuple(args.keys),
            seed=args.seed,
            workers=args.workers,
        )
        rows = [
            [
                p.protocol,
                p.keys,
                f"{p.summary.mean:.1f}",
                f"{p.summary.p1:.0f}",
                f"{p.summary.p99:.0f}",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "keys", "mean/node", "p1", "p99"],
                rows,
                f"{args.command} — key distribution ({args.nodes} nodes)",
            )
        )
    elif args.command == "fig10":
        points = run_query_load_experiment(
            lookups_per_node=args.lookups_per_node,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                p.size,
                f"{p.summary.mean:.1f}",
                f"{p.summary.p1:.0f}",
                f"{p.summary.p99:.0f}",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "n", "mean load", "p1", "p99"],
                rows,
                "Fig. 10 — query load",
            )
        )
    elif args.command == "fig11":
        points = run_mass_departure_experiment(
            probabilities=tuple(args.probabilities),
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                f"{p.probability:.1f}",
                f"{p.mean_path_length:.2f}",
                p.timeout_row(),
                p.lookup_failures,
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "p", "mean path", "timeouts", "failures"],
                rows,
                "Fig. 11 + Table 4 — massive departures",
            )
        )
    elif args.command == "fig12":
        points = run_churn_experiment(
            rates=tuple(args.rates),
            population=args.population,
            duration=args.duration,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        )
        rows = [
            [
                p.protocol,
                f"{p.rate:.2f}",
                f"{p.mean_path_length:.2f}",
                p.timeout_row(),
                p.lookup_failures,
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "R", "mean path", "timeouts", "failures"],
                rows,
                "Fig. 12 + Table 5 — churn",
            )
        )
    elif args.command == "fig13":
        points = run_sparsity_experiment(
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                f"{p.sparsity:.1f}",
                p.population,
                f"{p.mean_path_length:.2f}",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["protocol", "sparsity", "nodes", "mean path"],
                rows,
                "Fig. 13 — sparsity",
            )
        )
    elif args.command == "fig14":
        points = run_koorde_sparsity_breakdown(
            lookups=args.lookups,
            seed=args.seed,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                f"{1 - p.size / 2048:.1f}",
                p.size,
                f"{p.fraction_by_phase['successor'] * 100:.0f}%",
            ]
            for p in points
        ]
        _print(
            format_table(
                ["sparsity", "nodes", "successor share"],
                rows,
                "Fig. 14 — Koorde breakdown vs sparsity",
            )
        )
    elif args.command == "fig-crash":
        points = run_crash_experiment(
            probabilities=tuple(args.crash_prob),
            lookups=args.lookups,
            seed=args.seed,
            message_loss=args.msg_loss,
            retry_budget=args.retry_budget,
            dimension=args.dimension,
            observer=sink,
            workers=args.workers,
        distribution=args.distribution,
        )
        rows = [
            [
                p.protocol,
                f"{p.probability:.1f}",
                p.mode,
                f"{p.success_rate * 100:.1f}%",
                f"{p.mean_path_length:.2f}",
                p.timeout_row(),
                f"{p.mean_retries:.2f}",
                p.route_repairs,
            ]
            for p in points
        ]
        _print(
            format_table(
                [
                    "protocol",
                    "p",
                    "mode",
                    "success",
                    "mean path",
                    "timeouts",
                    "retries",
                    "repairs",
                ],
                rows,
                "Crash resilience — graceful vs ungraceful failures",
            )
        )
    elif args.command == "maint":
        points = run_maintenance_experiment(
            population=args.population,
            events=args.events,
            seed=args.seed,
            lookups=args.lookups,
            observer=sink,
            workers=args.workers,
        )
        rows = [
            [
                p.protocol,
                f"{p.updates_per_join:.1f}",
                f"{p.updates_per_leave:.1f}",
                f"{p.updates_per_departure:.1f}",
                f"{p.probe_mean_path:.2f}",
                p.probe_failures,
            ]
            for p in points
        ]
        _print(
            format_table(
                [
                    "protocol",
                    "per join",
                    "per leave",
                    "per departure",
                    "probe path",
                    "probe failures",
                ],
                rows,
                "Maintenance fan-out + post-departure probe",
            )
        )
    elif args.command == "bench":
        cells = run_parallel_bench(
            protocols=tuple(args.protocols),
            dimension=args.dimension,
            lookups=args.lookups,
            workers=args.workers,
            shard_size=args.shard_size,
            seed=args.seed,
        )
        clone_cells = run_clone_bench(
            protocols=tuple(args.protocols),
            dimension=args.dimension,
            shard_size=args.shard_size,
            seed=args.seed,
        )
        report = bench_report(
            cells,
            dimension=args.dimension,
            lookups=args.lookups,
            workers=args.workers,
            shard_size=args.shard_size,
            seed=args.seed,
            clone_cells=clone_cells,
        )
        write_bench_report(args.output, report)
        _print(format_bench_table(report["cells"], args.workers))
        _print(format_clone_bench_table(report["build_vs_clone"]))
        print(f"bench report -> {args.output}", file=sys.stderr)
        if not report["all_match"]:
            print(
                "error: parallel digest mismatch — serial and parallel "
                "runs disagree",
                file=sys.stderr,
            )
            return 1
    elif args.command == "table1":
        rows = [
            [
                r.label,
                r.base_network,
                r.lookup_complexity,
                r.routing_state,
                r.max_observed_state,
            ]
            for r in architecture_table(seed=args.seed)
        ]
        _print(
            format_table(
                ["system", "base", "lookup", "state", "measured max"],
                rows,
                "Table 1 — architecture",
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
